//! Umbrella crate for the StratRec system.
//!
//! StratRec is a reproduction of *"Recommending Deployment Strategies for
//! Collaborative Tasks"* (SIGMOD 2020). It recommends crowdsourcing
//! deployment strategies — combinations of *Structure* (sequential vs
//! simultaneous), *Organization* (independent vs collaborative) and *Style*
//! (crowd-only vs hybrid) — that satisfy a requester's quality, cost and
//! latency thresholds given the platform's worker availability.
//!
//! This crate simply re-exports the workspace members under stable paths so
//! downstream users can depend on a single crate:
//!
//! * [`core`] — data model, `BatchStrat`, `ADPaR-Exact` and all baselines.
//! * [`geometry`] — 3-D points, boxes, sweep-line events, an R-tree.
//! * [`optim`] — knapsack solvers, top-k selection, regression, statistics.
//! * [`platform`] — a crowdsourcing-platform simulator standing in for AMT.
//! * [`workload`] — synthetic workload generators used by the experiments.
//! * [`durable`] — write-ahead-logged catalog tier: crash recovery and
//!   deployment-decision provenance.
//! * [`serve`] — streaming front-end: admission windows, deadline shedding
//!   and graceful degradation under overload.
//!
//! # Quick example
//!
//! ```
//! use stratrec::core::prelude::*;
//!
//! // The paper's running example (Table 1): three requests, four strategies.
//! let strategies = stratrec::core::examples_data::running_example_strategies();
//! let requests = stratrec::core::examples_data::running_example_requests();
//!
//! let engine = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Max);
//! let outcome = engine.recommend(&requests, &strategies, 3, WorkerAvailability::new(0.8).unwrap());
//! assert_eq!(outcome.satisfied.len() + outcome.unsatisfied.len(), requests.len());
//! ```

pub use stratrec_core as core;
pub use stratrec_durable as durable;
pub use stratrec_geometry as geometry;
pub use stratrec_optim as optim;
pub use stratrec_platform as platform;
pub use stratrec_serve as serve;
pub use stratrec_workload as workload;
