//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace derives the serde traits for API fidelity but never
//! serializes anything at runtime, so the derives expand to nothing. The
//! `serde` helper attribute is accepted (and ignored) for compatibility.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
