//! Minimal re-implementation of the `rand` 0.8 API surface used by this
//! workspace: `StdRng` (xoshiro256++ seeded through SplitMix64),
//! `SeedableRng::seed_from_u64` and the `Rng` convenience methods
//! `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is fully deterministic per seed, which the workspace's
//! reproducible experiments rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped into `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_unit_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable with a standard uniform distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_unit_f64()
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {
        $(impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let value = self.start + (self.end - self.start) * rng.next_unit_f64();
        // Guard against the end being reachable through rounding.
        if value >= self.end {
            self.start
        } else {
            value
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // 53-bit uniform in [0, 1] (both endpoints reachable).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * unit
    }
}

/// Uniform integer in `[0, n)` by rejection sampling (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + uniform_below(rng, span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + uniform_below(rng, span + 1) as $t
                }
            }
        )+
    };
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded by expanding
    /// a `u64` through SplitMix64 (the construction recommended by the
    /// xoshiro authors). Statistically strong and fully deterministic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = rng.gen_range(0.5..1.0);
            assert!((0.5..1.0).contains(&v));
            let v = rng.gen_range(0.5..=1.0);
            assert!((0.5..=1.0).contains(&v));
            let v = rng.gen_range(3_usize..10);
            assert!((3..10).contains(&v));
            let v = rng.gen_range(0_u32..=4);
            assert!(v <= 4);
        }
        assert_eq!(rng.gen_range(7_usize..=7), 7);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
