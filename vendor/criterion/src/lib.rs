//! A small wall-clock benchmarking harness exposing the subset of the
//! `criterion` 0.5 API this workspace uses: [`criterion_group!`] /
//! [`criterion_main!`], [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`] and `Bencher::iter`.
//!
//! Each benchmark runs a short warm-up followed by `sample_size` timed
//! samples (batching very fast closures so a sample is long enough to
//! measure) and prints the minimum, mean and maximum sample time. There is
//! no statistical analysis or HTML report — the goal is honest comparative
//! numbers in environments where the real criterion crate is unavailable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` too.
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Benchmarks a closure under `{group}/{id}`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmarks a closure that receives an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (a no-op in this harness; kept for API fidelity).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name plus a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; records the timed routine.
pub struct Bencher {
    batch: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `routine`, running it `batch` times per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / self.batch as u32);
    }
}

/// Whether `STRATREC_BENCH_SMOKE` requests smoke mode: each benchmark runs
/// its routine exactly once, with no calibration and no timed samples. CI
/// uses this to execute every bench binary end to end on a tiny budget, so
/// a perf-path that stops compiling or panics fails the build instead of
/// rotting silently.
fn smoke_mode() -> bool {
    std::env::var_os("STRATREC_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    if smoke_mode() {
        let mut bencher = Bencher {
            batch: 1,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let elapsed = bencher.samples.first().copied().unwrap_or_default();
        println!("bench {label:<48} smoke ok ({})", fmt_duration(elapsed));
        return;
    }
    // Calibration: find a batch size so one sample takes ≥ ~1 ms, capping
    // total time for slow routines.
    let mut bencher = Bencher {
        batch: 1,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let probe = *bencher.samples.first().expect("routine ran once");
    let batch = if probe < Duration::from_millis(1) {
        (Duration::from_millis(1).as_nanos() / probe.as_nanos().max(1)).clamp(1, 1 << 16) as u64
    } else {
        1
    };

    let mut bencher = Bencher {
        batch,
        samples: Vec::with_capacity(sample_size),
    };
    let budget = Duration::from_secs(5);
    let started = Instant::now();
    for _ in 0..sample_size {
        f(&mut bencher);
        if started.elapsed() > budget {
            break;
        }
    }

    let samples = &bencher.samples;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
    println!(
        "bench {label:<48} [{} .. {} .. {}] ({} samples x {batch} iters)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10_u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(42)));
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
