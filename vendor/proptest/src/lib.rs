//! A deterministic mini property-testing harness exposing the subset of the
//! `proptest` 1.x API this workspace uses:
//!
//! * the [`proptest!`] macro wrapping `#[test] fn name(x in strategy, ...)`
//!   bodies;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`];
//! * strategies: numeric `Range` / `RangeInclusive`, tuples of strategies,
//!   [`collection::vec`] and [`bool::ANY`].
//!
//! Each test runs a fixed number of cases (default 64, override with the
//! `PROPTEST_CASES` environment variable) with inputs drawn from an RNG
//! seeded deterministically from the test name, so failures are always
//! reproducible. Unlike the real proptest there is no shrinking: the failing
//! input is printed as-is.

use std::ops::{Range, RangeInclusive};

pub use rand::{Rng, SeedableRng, StdRng};

/// Strategy abstraction: something that can generate values from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+
    };
}
impl_range_strategy!(f64, u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            use rand::Rng as _;
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{StdRng, Strategy};

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            use rand::Rng as _;
            rng.gen_bool(0.5)
        }
    }
}

/// Test-case control flow used by the macros.
pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// `prop_assert!` / `prop_assert_eq!` failed with a message.
        Fail(String),
    }

    /// Number of cases to run per property (env `PROPTEST_CASES`, default 64).
    #[must_use]
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Deterministic per-test seed derived from the test's name (FNV-1a).
    #[must_use]
    pub fn seed_for(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325_u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// The common glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// Wraps property functions into `#[test]`s running many deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::SeedableRng as _;
                let cases = $crate::test_runner::cases();
                let mut rng = $crate::StdRng::seed_from_u64(
                    $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..cases {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(message)) => panic!(
                            "property {} failed at case {case}/{cases}: {message}\n  inputs: {inputs}",
                            stringify!($name),
                        ),
                    }
                }
            }
        )+
    };
}

/// Fails the current property case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current property case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{:?} != {:?}: {}", left, right, format!($($fmt)+)),
            ));
        }
    }};
}

/// Skips the current property case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    // Macro-namespace imports; rustc cannot see the uses inside `proptest!`.
    #[allow(unused_imports)]
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_compose(
            xs in crate::collection::vec(0.0_f64..1.0, 1..16),
            k in 1_usize..4,
            flag in crate::bool::ANY,
        ) {
            prop_assume!(!xs.is_empty());
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert!((1..4).contains(&k));
            let negated = !flag;
            prop_assert_eq!(flag, !negated);
        }

        #[test]
        fn tuples_generate_componentwise(
            point in (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
        ) {
            prop_assert!(point.0 < 1.0 && point.1 < 1.0 && point.2 < 1.0);
        }
    }

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(
            crate::test_runner::seed_for("a"),
            crate::test_runner::seed_for("b")
        );
    }
}
