//! Marker `Serialize` / `Deserialize` traits plus the no-op derive macros.
//!
//! The workspace only uses serde for trait derives on its data types; nothing
//! is serialized at runtime, so marker traits are sufficient. `use
//! serde::{Serialize, Deserialize}` imports both the trait (type namespace)
//! and the derive macro (macro namespace), exactly like the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
