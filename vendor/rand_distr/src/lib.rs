//! Minimal `rand_distr` 0.4 surface: the [`Distribution`] trait plus
//! [`Normal`] (polar Box–Muller, stateless) and [`Exp`] (inverse CDF).

use rand::RngCore;

/// A distribution samplable with any [`rand::Rng`].
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Normal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

impl Normal<f64> {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] for non-finite parameters or a negative
    /// standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method without pair caching (the distribution is
        // sampled through `&self`, so no state can be kept).
        loop {
            let u = 2.0 * rng.next_unit_f64() - 1.0;
            let v = 2.0 * rng.next_unit_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }
}

/// Error constructing an [`Exp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpError;

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rate must be finite and positive")
    }
}

impl std::error::Error for ExpError {}

/// The exponential distribution with rate `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp<T> {
    lambda: T,
}

impl Exp<f64> {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError`] when `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ExpError);
        }
        Ok(Self { lambda })
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1 - u stays in (0, 1] so the logarithm is finite.
        -(1.0 - rng.next_unit_f64()).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng, StdRng};

    #[test]
    fn normal_moments() {
        let normal = Normal::new(0.75, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 0.75).abs() < 0.005, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.005, "std {}", var.sqrt());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn exponential_mean() {
        let exp = Exp::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let mean = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(Exp::new(0.0).is_err());
        let mut rng2 = StdRng::seed_from_u64(3);
        assert!((0..1_000).all(|_| exp.sample(&mut rng2) >= 0.0));
        let _ = rng.gen::<f64>();
    }
}
