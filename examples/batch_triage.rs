//! Platform-side view: a crowdsourcing platform receives a batch of
//! deployment requests and must decide which ones to serve with its limited
//! worker pool, maximizing pay-off (the paper's Problem 1).
//!
//! ```bash
//! cargo run --example batch_triage
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use stratrec::core::batch::{BatchAlgorithm, BatchObjective, BatchStrat};
use stratrec::core::prelude::*;
use stratrec::workload::scenario::ParameterDistribution;
use stratrec::workload::{generate_models, generate_requests, generate_strategies};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    // The platform advertises 500 strategies (think: workflow templates) and
    // receives 25 deployment requests while only 60 % of the suitable
    // workforce is expected to be online.
    let strategies = generate_strategies(500, ParameterDistribution::Normal, &mut rng);
    let models = generate_models(&strategies, &mut rng);
    let requests = generate_requests(25, &mut rng);
    let availability = WorkerAvailability::new(0.6).expect("in range");
    let k = 5;

    // Normalize and index the strategy set once; every triage below shares
    // the same catalog.
    let catalog = StrategyCatalog::from_slice(&strategies);

    for (label, algorithm) in [
        ("BatchStrat (1/2-approx)", BatchAlgorithm::BatchStrat),
        ("BaselineG (plain greedy)", BatchAlgorithm::BaselineG),
    ] {
        let engine =
            BatchStrat::new(BatchObjective::Payoff, AggregationMode::Sum).with_algorithm(algorithm);
        let outcome = engine
            .recommend_with_catalog(&requests, &catalog, &models, k, availability)
            .expect("models cover every strategy");
        println!(
            "{label}: satisfied {}/{} requests, pay-off {:.2}, workforce used {:.2}/{:.2}",
            outcome.satisfied.len(),
            requests.len(),
            outcome.objective_value,
            outcome.workforce_used,
            availability.value()
        );
    }

    // Show what the unsatisfied requesters are told.
    let engine = BatchStrat::new(BatchObjective::Payoff, AggregationMode::Sum);
    let outcome = engine
        .recommend_with_catalog(&requests, &catalog, &models, k, availability)
        .expect("models cover every strategy");
    let adpar = AdparExact;
    println!("\nAlternative parameters for the first three unsatisfied requests:");
    for &idx in outcome.unsatisfied.iter().take(3) {
        let problem = AdparProblem::with_catalog(&requests[idx], &catalog, k);
        match adpar.solve(&problem) {
            Ok(solution) => println!(
                "  d{}: relax to quality >= {:.2}, cost <= {:.2}, latency <= {:.2} (distance {:.3})",
                requests[idx].id.0,
                solution.alternative.quality,
                solution.alternative.cost,
                solution.alternative.latency,
                solution.distance
            ),
            Err(err) => println!("  d{}: {err}", requests[idx].id.0),
        }
    }
}
