//! A realistic end-to-end scenario: a requester wants English→Hindi nursery
//! rhymes translated by the crowd.
//!
//! The example (1) estimates worker availability from simulated historical
//! deployments across the three weekly windows, (2) fits the per-strategy
//! linear models from calibration deployments (the paper's Table 6 step), and
//! (3) asks StratRec for deployment strategies meeting the requester's
//! quality / cost / latency thresholds.
//!
//! ```bash
//! cargo run --example translation_campaign
//! ```

use stratrec::core::batch::BatchObjective;
use stratrec::core::model::{
    all_dimension_combinations, DeploymentParameters, DeploymentRequest, Strategy, TaskType,
};
use stratrec::core::modeling::ModelLibrary;
use stratrec::core::prelude::*;
use stratrec::core::stratrec::StratRecConfig;
use stratrec::platform::execution::StrategyExecutor;
use stratrec::platform::experiment::CalibrationExperiment;

fn main() {
    let task = TaskType::SentenceTranslation;
    let calibration = CalibrationExperiment::with_seed(7);

    // Step 1 — estimate worker availability from the three deployment windows.
    let study = calibration.availability_study(task);
    let observations: Vec<f64> = study
        .iter()
        .flat_map(|(_, _, est)| est.observations.clone())
        .collect();
    let availability = AvailabilityPdf::from_observations(&observations).expect("observations");
    println!(
        "Estimated worker availability for {}: {:.2} (from {} simulated HITs)",
        task.label(),
        availability.expectation().value(),
        observations.len()
    );

    // Step 2 — build the candidate strategy set (all eight Structure ×
    // Organization × Style combinations) with models fitted from calibration
    // deployments.
    let expected = availability.expectation();
    let mut strategies = Vec::new();
    let mut models = ModelLibrary::new();
    for (idx, (structure, organization, style)) in all_dimension_combinations().iter().enumerate() {
        let probe = Strategy::new(
            idx as u64,
            *structure,
            *organization,
            *style,
            DeploymentParameters::clamped(0.5, 0.5, 0.5),
        );
        let fitted = calibration
            .fit_strategy(task, &probe)
            .map(|report| report.to_strategy_model())
            .unwrap_or_else(|| {
                StrategyExecutor::ground_truth_model(task, *structure, *organization, *style)
            });
        let params = fitted.estimate_parameters(expected);
        strategies.push(Strategy::new(
            idx as u64,
            *structure,
            *organization,
            *style,
            params,
        ));
        models.insert(strategies[idx].id, fitted);
    }

    // Step 3 — the requester's thresholds: at least 75 % of expert quality,
    // at most 80 % of the budget, finished within 70 % of the horizon.
    let request = DeploymentRequest::new(1, task, DeploymentParameters::clamped(0.75, 0.8, 0.7));
    let layer = StratRec::new(StratRecConfig {
        k: 3,
        objective: BatchObjective::Throughput,
        aggregation: AggregationMode::Max,
    });
    // Index the candidate strategies once; subsequent campaigns over the
    // same platform would reuse this catalog.
    let catalog = StrategyCatalog::from_slice(&strategies);
    let report = layer
        .process_batch_with_catalog(
            std::slice::from_ref(&request),
            &catalog,
            &models,
            &availability,
        )
        .expect("models cover every strategy");

    if let Some(rec) = report.batch.satisfied.first() {
        println!("StratRec recommends deploying the translation campaign with:");
        for &idx in &rec.strategy_indices {
            // Recommendation indices are catalog slots; resolve them through
            // the catalog rather than a parallel vector.
            let s = catalog.strategy(idx);
            println!(
                "  {}  (estimated quality {:.2}, cost {:.2}, latency {:.2})",
                s.name(),
                s.params.quality,
                s.params.cost,
                s.params.latency
            );
        }
        println!("  required workforce fraction: {:.2}", rec.workforce);
    } else if let Some(alt) = report.alternatives.first() {
        match &alt.solution {
            Ok(solution) => println!(
                "No strategy meets the thresholds; closest feasible parameters: \
                 quality >= {:.2}, cost <= {:.2}, latency <= {:.2}",
                solution.alternative.quality,
                solution.alternative.cost,
                solution.alternative.latency
            ),
            Err(err) => println!("No recommendation possible: {err}"),
        }
    }
}
