//! Quickstart: run the paper's running example (Table 1) through the full
//! StratRec middle layer.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use stratrec::core::availability::AvailabilityPdf;
use stratrec::core::batch::BatchObjective;
use stratrec::core::prelude::*;
use stratrec::core::stratrec::StratRecConfig;

fn main() {
    // Three deployment requests and four strategies, straight from the paper.
    let strategies = stratrec::core::examples_data::running_example_strategies();
    let requests = stratrec::core::examples_data::running_example_requests();
    let models = stratrec::core::examples_data::running_example_models();

    // Historical data says: 50% chance of 70% availability, 50% chance of 90%.
    let availability = AvailabilityPdf::new(&[(0.7, 0.5), (0.9, 0.5)]).expect("valid pdf");

    let layer = StratRec::new(StratRecConfig {
        k: 3,
        objective: BatchObjective::Throughput,
        aggregation: AggregationMode::Max,
    });
    let report = layer
        .process_batch(&requests, &strategies, &models, &availability)
        .expect("every strategy has a model");

    println!(
        "Expected worker availability: {:.2}",
        report.availability.value()
    );
    for rec in &report.batch.satisfied {
        let names: Vec<String> = rec
            .strategy_indices
            .iter()
            .map(|&i| strategies[i].name())
            .collect();
        println!(
            "request d{} satisfied with k={} strategies: {}",
            requests[rec.request_index].id.0,
            rec.strategy_indices.len(),
            names.join(", ")
        );
    }
    for alternative in &report.alternatives {
        let request = &requests[alternative.request_index];
        match &alternative.solution {
            Ok(solution) => println!(
                "request d{} cannot be satisfied; closest alternative parameters: \
                 quality >= {:.2}, cost <= {:.2}, latency <= {:.2} (distance {:.3})",
                request.id.0,
                solution.alternative.quality,
                solution.alternative.cost,
                solution.alternative.latency,
                solution.distance
            ),
            Err(err) => println!("request d{}: {err}", request.id.0),
        }
    }
}
