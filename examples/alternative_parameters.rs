//! ADPaR in isolation: when a requester's thresholds are too tight, compare
//! the alternative deployment parameters suggested by the exact sweep-line
//! solver and by the paper's two baselines.
//!
//! ```bash
//! cargo run --example alternative_parameters
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use stratrec::core::adpar::{AdparBaseline2, AdparBaseline3, AdparBruteForce};
use stratrec::core::model::{DeploymentParameters, DeploymentRequest, TaskType};
use stratrec::core::prelude::*;
use stratrec::workload::generate_strategies;
use stratrec::workload::scenario::ParameterDistribution;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let strategies = generate_strategies(30, ParameterDistribution::Uniform, &mut rng);
    // The four solvers share one indexed catalog (Baseline3 reuses its
    // R-tree instead of building one per solve).
    let catalog = StrategyCatalog::from_slice(&strategies);

    // An over-ambitious request: near-expert quality at almost no cost.
    let request = DeploymentRequest::new(
        1,
        TaskType::TextSummarization,
        DeploymentParameters::clamped(0.95, 0.1, 0.2),
    );
    let k = 4;
    let problem = AdparProblem::with_catalog(&request, &catalog, k);

    println!(
        "Original request: quality >= {:.2}, cost <= {:.2}, latency <= {:.2} (satisfied by {} of {} strategies; k = {k})",
        request.params.quality,
        request.params.cost,
        request.params.latency,
        request.eligible_strategies(&strategies).len(),
        strategies.len(),
    );

    let solvers: Vec<(&str, Result<AdparSolution, StratRecError>)> = vec![
        ("ADPaR-Exact", AdparExact.solve(&problem)),
        ("ADPaRB (brute force)", AdparBruteForce.solve(&problem)),
        ("Baseline2", AdparBaseline2.solve(&problem)),
        ("Baseline3", AdparBaseline3::default().solve(&problem)),
    ];
    for (name, result) in solvers {
        match result {
            Ok(solution) => println!(
                "{name:<22} quality >= {:.3}, cost <= {:.3}, latency <= {:.3}  distance {:.4}  ({} strategies admitted)",
                solution.alternative.quality,
                solution.alternative.cost,
                solution.alternative.latency,
                solution.distance,
                solution.strategy_indices.len()
            ),
            Err(err) => println!("{name:<22} failed: {err}"),
        }
    }
}
