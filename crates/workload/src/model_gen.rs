//! Synthetic worker-availability models (paper §5.2.2).
//!
//! "For a strategy, we generate α uniformly from an interval `[0.5, 1]`.
//! Then, we set `β = 1 − α` to make sure that the estimated worker
//! availability W is within `[0, 1]`."

use rand::Rng;
use stratrec_core::model::Strategy;
use stratrec_core::modeling::{ModelLibrary, StrategyModel};

/// Generates one `(α, β = 1 − α)` model per strategy, with `α ∈ [0.5, 1]`.
pub fn generate_models(strategies: &[Strategy], rng: &mut impl Rng) -> ModelLibrary {
    let mut library = ModelLibrary::new();
    for strategy in strategies {
        let alpha = rng.gen_range(0.5..=1.0);
        library.insert(strategy.id, StrategyModel::uniform(alpha, 1.0 - alpha));
    }
    library
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ParameterDistribution;
    use crate::strategy_gen::generate_strategies;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stratrec_core::model::DeploymentParameters;

    #[test]
    fn every_strategy_gets_a_model_with_valid_coefficients() {
        let mut rng = StdRng::seed_from_u64(5);
        let strategies = generate_strategies(100, ParameterDistribution::Uniform, &mut rng);
        let models = generate_models(&strategies, &mut rng);
        assert_eq!(models.len(), strategies.len());
        for s in &strategies {
            let m = models.get(s.id).unwrap();
            assert!((0.5..=1.0).contains(&m.quality.alpha));
            assert!((m.quality.alpha + m.quality.beta - 1.0).abs() < 1e-12);
        }
    }

    proptest! {
        #[test]
        fn requirements_for_paper_range_requests_stay_in_unit_interval(
            seed in 0_u64..500,
            threshold in 0.625_f64..1.0,
        ) {
            // With α ∈ [0.5, 1], β = 1 − α and thresholds in [0.625, 1], the
            // workforce requirement (threshold − β) / α is always in [0, 1] —
            // the property the paper's construction is designed to guarantee.
            let mut rng = StdRng::seed_from_u64(seed);
            let strategies = generate_strategies(20, ParameterDistribution::Uniform, &mut rng);
            let models = generate_models(&strategies, &mut rng);
            let request = DeploymentParameters::clamped(threshold, 1.0, 1.0);
            for s in &strategies {
                let w = models.get(s.id).unwrap().required_workforce(&request);
                prop_assert!((0.0..=1.0).contains(&w), "requirement {w}");
            }
        }
    }
}
