//! Synthetic deployment-request generation (paper §5.2.2).
//!
//! "Once W is estimated, the quality, latency, and cost — i.e., the
//! deployment parameters — are generated in the interval `[0.625, 1]`. For
//! each experiment, 10 deployment parameters are generated, and an average of
//! 10 runs is presented in the results."

use rand::Rng;
use stratrec_core::model::{DeploymentParameters, DeploymentRequest, TaskType};

/// Generates `count` deployment requests with parameters drawn uniformly from
/// `[0.625, 1]` (the paper's synthetic range).
pub fn generate_requests(count: usize, rng: &mut impl Rng) -> Vec<DeploymentRequest> {
    generate_requests_in_range(count, 0.625, 1.0, rng)
}

/// Generates requests with parameters drawn uniformly from `[lo, hi]`,
/// clamped into `[0, 1]`.
pub fn generate_requests_in_range(
    count: usize,
    lo: f64,
    hi: f64,
    rng: &mut impl Rng,
) -> Vec<DeploymentRequest> {
    let lo = lo.clamp(0.0, 1.0);
    let hi = hi.clamp(lo, 1.0);
    (0..count)
        .map(|id| {
            let mut draw = || {
                if (hi - lo).abs() < f64::EPSILON {
                    lo
                } else {
                    rng.gen_range(lo..=hi)
                }
            };
            DeploymentRequest::new(
                id as u64,
                TaskType::SentenceTranslation,
                DeploymentParameters::clamped(draw(), draw(), draw()),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_range_matches_paper() {
        let mut rng = StdRng::seed_from_u64(6);
        let requests = generate_requests(200, &mut rng);
        assert_eq!(requests.len(), 200);
        for r in &requests {
            for v in [r.params.quality, r.params.cost, r.params.latency] {
                assert!((0.625..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn ids_are_sequential() {
        let mut rng = StdRng::seed_from_u64(7);
        let requests = generate_requests(5, &mut rng);
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(r.id.0, i as u64);
        }
    }

    #[test]
    fn degenerate_range_produces_constant_parameters() {
        let mut rng = StdRng::seed_from_u64(8);
        let requests = generate_requests_in_range(3, 0.7, 0.7, &mut rng);
        for r in &requests {
            assert_eq!(r.params.quality, 0.7);
            assert_eq!(r.params.cost, 0.7);
        }
    }

    proptest! {
        #[test]
        fn custom_ranges_are_respected_and_clamped(
            seed in 0_u64..200,
            lo in -0.5_f64..1.5,
            hi in -0.5_f64..1.5,
            count in 0_usize..50,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let requests = generate_requests_in_range(count, lo, hi, &mut rng);
            prop_assert_eq!(requests.len(), count);
            for r in &requests {
                prop_assert!((0.0..=1.0).contains(&r.params.quality));
                prop_assert!((0.0..=1.0).contains(&r.params.cost));
                prop_assert!((0.0..=1.0).contains(&r.params.latency));
            }
        }
    }
}
