//! Experiment scenarios: the parameter grids behind Figures 14–18.
//!
//! Each scenario bundles the knobs of one synthetic experiment (batch size
//! `m`, strategy-set size `|S|`, cardinality `k`, worker availability `W`,
//! parameter distribution and seed) together with generators that materialize
//! a concrete instance. The defaults are the paper's: `|S| = 10 000`,
//! `m = 10`, `k = 10`, `W = 0.5` for the satisfaction experiments, and the
//! reduced `|S| = 30`, `m = 5` grid wherever brute force participates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use stratrec_core::availability::WorkerAvailability;
use stratrec_core::catalog::StrategyCatalog;
use stratrec_core::engine::BatchEngine;
use stratrec_core::model::{DeploymentRequest, Strategy};
use stratrec_core::modeling::ModelLibrary;
use stratrec_core::workforce::{EligibilityRule, WorkforceMatrix};

use crate::model_gen::generate_models;
use crate::request_gen::generate_requests;
use crate::strategy_gen::generate_strategies;

/// Distribution of the synthetic strategy parameters (paper §5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ParameterDistribution {
    /// Uniform over `[0.5, 1]`.
    #[default]
    Uniform,
    /// Normal with mean 0.75 and standard deviation 0.1, clamped to `[0, 1]`.
    Normal,
}

impl ParameterDistribution {
    /// Both distributions, in the order the paper plots them.
    pub const ALL: [ParameterDistribution; 2] = [
        ParameterDistribution::Uniform,
        ParameterDistribution::Normal,
    ];

    /// Label used in experiment output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Uniform => "Uniform",
            Self::Normal => "Normal",
        }
    }
}

/// A materialized batch-recommendation instance.
#[derive(Debug, Clone)]
pub struct BatchInstance {
    /// The deployment requests of the batch.
    pub requests: Vec<DeploymentRequest>,
    /// The strategy set.
    pub strategies: Vec<Strategy>,
    /// Per-strategy availability models.
    pub models: ModelLibrary,
    /// Expected worker availability.
    pub availability: WorkerAvailability,
}

impl BatchInstance {
    /// Builds the shared indexed catalog over this instance's strategies,
    /// for the catalog-backed pipeline (`recommend_with_catalog`,
    /// `process_batch_with_catalog`).
    #[must_use]
    pub fn catalog(&self) -> StrategyCatalog {
        StrategyCatalog::from_slice(&self.strategies)
    }

    /// Cold-fills the workforce matrix for this instance through `engine`,
    /// honouring the engine's thread cap and [`Precision`] — the shared entry
    /// point for the kernel benchmarks and the precision-parity drivers.
    ///
    /// # Panics
    /// Panics if the engine reports a solver error (the synthetic instances
    /// are always well-formed).
    #[must_use]
    pub fn cold_matrix(
        &self,
        catalog: &StrategyCatalog,
        engine: &BatchEngine,
        rule: EligibilityRule,
    ) -> WorkforceMatrix {
        engine
            .workforce_matrix(&self.requests, catalog, &self.models, rule)
            .expect("synthetic batch instances cold-fill cleanly")
    }

    /// [`Self::cold_matrix`] into an existing matrix
    /// ([`BatchEngine::refill_workforce_matrix`]): the same full recompute,
    /// reusing the cell allocation — the steady-state rebuild shape.
    ///
    /// # Panics
    /// As [`Self::cold_matrix`].
    pub fn refill_cold_matrix(
        &self,
        catalog: &StrategyCatalog,
        engine: &BatchEngine,
        rule: EligibilityRule,
        matrix: &mut WorkforceMatrix,
    ) {
        engine
            .refill_workforce_matrix(&self.requests, catalog, &self.models, rule, matrix)
            .expect("synthetic batch instances cold-fill cleanly");
    }
}

/// Scenario for the batch-deployment experiments (Figures 14–16, 18a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchScenario {
    /// Number of deployment requests `m`.
    pub batch_size: usize,
    /// Number of strategies `|S|`.
    pub strategy_count: usize,
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Expected worker availability `W`.
    pub availability: f64,
    /// Distribution of the strategy parameters.
    pub distribution: ParameterDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BatchScenario {
    /// The defaults of Figure 14: `|S| = 10 000`, `m = 10`, `k = 10`,
    /// `W = 0.5`.
    fn default() -> Self {
        Self {
            batch_size: 10,
            strategy_count: 10_000,
            k: 10,
            availability: 0.5,
            distribution: ParameterDistribution::Uniform,
            seed: 2020,
        }
    }
}

impl BatchScenario {
    /// The reduced grid used whenever brute force participates
    /// (Figures 15–16): `k = 10`, `m = 5`, `|S| = 30`, `W = 0.5`.
    #[must_use]
    pub fn brute_force_defaults() -> Self {
        Self {
            batch_size: 5,
            strategy_count: 30,
            k: 10,
            availability: 0.5,
            ..Self::default()
        }
    }

    /// Materializes the scenario into concrete requests, strategies and
    /// models.
    #[must_use]
    pub fn materialize(&self) -> BatchInstance {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let strategies = generate_strategies(self.strategy_count, self.distribution, &mut rng);
        let models = generate_models(&strategies, &mut rng);
        let requests = generate_requests(self.batch_size, &mut rng);
        BatchInstance {
            requests,
            strategies,
            models,
            availability: WorkerAvailability::clamped(self.availability),
        }
    }
}

/// A materialized ADPaR instance: one request and the strategy set.
#[derive(Debug, Clone)]
pub struct AdparInstance {
    /// The unsatisfied deployment request.
    pub request: DeploymentRequest,
    /// The strategy set.
    pub strategies: Vec<Strategy>,
    /// Cardinality constraint.
    pub k: usize,
}

impl AdparInstance {
    /// Builds the shared indexed catalog over this instance's strategies,
    /// for catalog-backed ADPaR problems (`AdparProblem::with_catalog`).
    #[must_use]
    pub fn catalog(&self) -> StrategyCatalog {
        StrategyCatalog::from_slice(&self.strategies)
    }
}

/// Scenario for the ADPaR experiments (Figures 17, 18b–c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdparScenario {
    /// Number of strategies `|S|`.
    pub strategy_count: usize,
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Distribution of the strategy parameters.
    pub distribution: ParameterDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AdparScenario {
    /// The quality-experiment defaults: `|S| = 200`, `k = 5`.
    fn default() -> Self {
        Self {
            strategy_count: 200,
            k: 5,
            distribution: ParameterDistribution::Uniform,
            seed: 2020,
        }
    }
}

impl AdparScenario {
    /// The reduced grid used when comparing against `ADPaRB`
    /// (`|S| = 20`, `k = 5`).
    #[must_use]
    pub fn brute_force_defaults() -> Self {
        Self {
            strategy_count: 20,
            k: 5,
            ..Self::default()
        }
    }

    /// Materializes the scenario. The request is drawn *demanding* — high
    /// quality, low cost and latency budgets (outside the strategy cloud) —
    /// so that it is genuinely unsatisfiable and ADPaR has work to do.
    #[must_use]
    pub fn materialize(&self) -> AdparInstance {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let strategies = generate_strategies(self.strategy_count, self.distribution, &mut rng);
        let request = crate::request_gen::generate_requests_in_range(1, 0.9, 1.0, &mut rng)
            .pop()
            .map(|mut r| {
                // Tighten cost and latency below the generated strategy range
                // so no strategy satisfies the request outright.
                r.params.cost = 1.0 - r.params.cost;
                r.params.latency = 1.0 - r.params.latency;
                r
            })
            .expect("one request was generated");
        AdparInstance {
            request,
            strategies,
            k: self.k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_batch_scenario_matches_paper_defaults() {
        let scenario = BatchScenario::default();
        assert_eq!(scenario.strategy_count, 10_000);
        assert_eq!(scenario.batch_size, 10);
        assert_eq!(scenario.k, 10);
        assert!((scenario.availability - 0.5).abs() < 1e-12);
        let brute = BatchScenario::brute_force_defaults();
        assert_eq!(brute.strategy_count, 30);
        assert_eq!(brute.batch_size, 5);
    }

    #[test]
    fn batch_materialization_is_consistent_and_reproducible() {
        let scenario = BatchScenario {
            strategy_count: 100,
            batch_size: 7,
            ..BatchScenario::default()
        };
        let a = scenario.materialize();
        let b = scenario.materialize();
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.strategies, b.strategies);
        assert_eq!(a.requests.len(), 7);
        assert_eq!(a.strategies.len(), 100);
        assert_eq!(a.models.len(), 100);
        assert!((a.availability.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn adpar_materialization_produces_an_unsatisfiable_request() {
        let scenario = AdparScenario {
            strategy_count: 50,
            ..AdparScenario::default()
        };
        let instance = scenario.materialize();
        assert_eq!(instance.strategies.len(), 50);
        assert_eq!(instance.k, 5);
        let eligible = instance.request.eligible_strategies(&instance.strategies);
        assert!(
            eligible.len() < instance.k,
            "the request should need ADPaR ({} eligible)",
            eligible.len()
        );
    }

    #[test]
    fn catalogs_index_the_materialized_strategies() {
        let batch = BatchScenario {
            strategy_count: 40,
            ..BatchScenario::default()
        }
        .materialize();
        assert_eq!(batch.catalog().strategies(), &batch.strategies[..]);
        let adpar = AdparScenario {
            strategy_count: 25,
            ..AdparScenario::default()
        }
        .materialize();
        let catalog = adpar.catalog();
        assert_eq!(catalog.len(), 25);
        assert_eq!(
            catalog.eligible_for_request(&adpar.request),
            adpar.request.eligible_strategies(&adpar.strategies)
        );
    }

    #[test]
    fn distribution_labels_are_stable() {
        assert_eq!(ParameterDistribution::Uniform.label(), "Uniform");
        assert_eq!(ParameterDistribution::Normal.label(), "Normal");
        assert_eq!(ParameterDistribution::ALL.len(), 2);
    }

    #[test]
    fn different_seeds_give_different_instances() {
        let a = BatchScenario {
            seed: 1,
            strategy_count: 50,
            ..BatchScenario::default()
        }
        .materialize();
        let b = BatchScenario {
            seed: 2,
            strategy_count: 50,
            ..BatchScenario::default()
        }
        .materialize();
        assert_ne!(a.strategies, b.strategies);
    }
}
