//! Zipf-skewed multi-tenant request mixes for the sharded serving tier.
//!
//! Real multi-tenant queues are heavy-tailed: a few tenants issue most of
//! the traffic. This module generates that shape deterministically — tenant
//! `i` receives requests in proportion to the Zipf weight `1 / (i + 1)^s`,
//! optionally with one designated **heavy tenant** whose weight is
//! multiplied by a flooding factor (the "10× volume" adversary of the
//! fairness regression suite). Alongside the per-tenant batches the
//! scenario builds the matching [`FairnessPolicy`]: an equal per-tenant
//! floor plus uniform residual weights, so the generated workload and the
//! budget-division rule it is served under stay one artifact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use stratrec_core::fairness::{FairnessPolicy, TenantShare};
use stratrec_core::model::DeploymentRequest;

use crate::request_gen::generate_requests_in_range;

/// A reproducible multi-tenant workload mix: Zipf-skewed tenant volumes
/// over the paper's synthetic request distribution, plus the fairness
/// floors the mix is served under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantMixScenario {
    /// Number of tenants sharing the platform.
    pub tenants: usize,
    /// Zipf skew exponent `s` (`0` = uniform traffic, `1` = classic Zipf).
    pub zipf_s: f64,
    /// Total number of requests across all tenants.
    pub total_requests: usize,
    /// A tenant whose traffic is multiplied by [`Self::heavy_factor`] —
    /// the flooding adversary of the fairness regression tests.
    pub heavy_tenant: Option<usize>,
    /// Volume multiplier for the heavy tenant.
    pub heavy_factor: f64,
    /// Guaranteed budget floor per tenant, as a fraction of the global
    /// budget. Clamped to `1 / tenants` at materialization so the floors
    /// always remain jointly satisfiable.
    pub floor: f64,
    /// RNG seed; equal seeds produce identical mixes.
    pub seed: u64,
}

impl Default for TenantMixScenario {
    fn default() -> Self {
        Self {
            tenants: 4,
            zipf_s: 1.0,
            total_requests: 64,
            heavy_tenant: None,
            heavy_factor: 10.0,
            floor: 0.1,
            seed: 42,
        }
    }
}

/// A materialized [`TenantMixScenario`]: one request batch per tenant and
/// the fairness policy dividing the shared budget among them.
#[derive(Debug, Clone)]
pub struct TenantMix {
    /// Per-tenant request batches, in tenant order.
    pub batches: Vec<Vec<DeploymentRequest>>,
    /// The floors-plus-uniform-weights policy matching the scenario.
    pub policy: FairnessPolicy,
}

impl TenantMixScenario {
    /// The normalized tenant sampling weights: Zipf `1 / (i + 1)^s`, the
    /// heavy tenant (if any) multiplied by [`Self::heavy_factor`].
    #[must_use]
    pub fn weights(&self) -> Vec<f64> {
        #[allow(clippy::cast_precision_loss)]
        let mut weights: Vec<f64> = (0..self.tenants)
            .map(|i| 1.0 / ((i + 1) as f64).powf(self.zipf_s.max(0.0)))
            .collect();
        if let Some(heavy) = self.heavy_tenant {
            if let Some(weight) = weights.get_mut(heavy) {
                *weight *= self.heavy_factor.max(1.0);
            }
        }
        let total: f64 = weights.iter().sum();
        for weight in &mut weights {
            *weight /= total;
        }
        weights
    }

    /// Generates the per-tenant batches and the matching fairness policy.
    /// Deterministic in the scenario (same fields → bit-identical mix).
    ///
    /// # Panics
    ///
    /// Panics when the scenario names zero tenants or the heavy tenant
    /// index is out of range.
    #[must_use]
    pub fn materialize(&self) -> TenantMix {
        assert!(self.tenants > 0, "a mix needs at least one tenant");
        assert!(
            self.heavy_tenant.is_none_or(|heavy| heavy < self.tenants),
            "the heavy tenant must be one of the scenario's tenants"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let requests = generate_requests_in_range(self.total_requests, 0.625, 1.0, &mut rng);
        // Inverse-CDF tenant draw per request, in request order, so the
        // assignment stream is one deterministic pass.
        let weights = self.weights();
        let mut batches: Vec<Vec<DeploymentRequest>> = vec![Vec::new(); self.tenants];
        for request in requests {
            let draw: f64 = rng.gen_range(0.0..1.0);
            let mut cumulative = 0.0;
            let mut tenant = self.tenants - 1;
            for (i, weight) in weights.iter().enumerate() {
                cumulative += weight;
                if draw < cumulative {
                    tenant = i;
                    break;
                }
            }
            batches[tenant].push(request);
        }
        #[allow(clippy::cast_precision_loss)]
        let floor = self.floor.clamp(0.0, 1.0 / self.tenants as f64);
        let policy = FairnessPolicy::new(vec![TenantShare::new(floor, 1.0); self.tenants])
            .expect("clamped floors are always jointly satisfiable");
        TenantMix { batches, policy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_normalize_and_follow_the_zipf_skew() {
        let scenario = TenantMixScenario {
            tenants: 5,
            zipf_s: 1.0,
            ..TenantMixScenario::default()
        };
        let weights = scenario.weights();
        assert_eq!(weights.len(), 5);
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for pair in weights.windows(2) {
            assert!(pair[0] > pair[1], "Zipf weights decrease with rank");
        }
        // Classic Zipf: tenant 0 has twice the weight of tenant 1.
        assert!((weights[0] / weights[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn the_heavy_tenant_dominates_the_mix() {
        let scenario = TenantMixScenario {
            tenants: 4,
            zipf_s: 0.0,
            total_requests: 400,
            heavy_tenant: Some(2),
            heavy_factor: 10.0,
            ..TenantMixScenario::default()
        };
        let weights = scenario.weights();
        assert!((weights[2] / weights[0] - 10.0).abs() < 1e-9);
        let mix = scenario.materialize();
        assert_eq!(mix.batches.len(), 4);
        let sizes: Vec<usize> = mix.batches.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 400);
        // With 10× weight over 400 draws, the heavy tenant's batch dwarfs
        // every light one (deterministic for the fixed seed).
        for (i, &size) in sizes.iter().enumerate() {
            if i != 2 {
                assert!(
                    sizes[2] > 3 * size,
                    "heavy tenant {} vs light tenant {i} at {size}",
                    sizes[2]
                );
            }
        }
    }

    #[test]
    fn materialization_is_deterministic_in_the_seed() {
        let scenario = TenantMixScenario {
            tenants: 3,
            total_requests: 50,
            ..TenantMixScenario::default()
        };
        let a = scenario.materialize();
        let b = scenario.materialize();
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.policy, b.policy);
        let other = TenantMixScenario {
            seed: 43,
            ..scenario
        }
        .materialize();
        assert_ne!(a.batches, other.batches, "a new seed reshuffles the mix");
    }

    #[test]
    fn floors_are_clamped_to_stay_jointly_satisfiable() {
        let scenario = TenantMixScenario {
            tenants: 4,
            floor: 0.9, // 4 × 0.9 would oversubscribe the budget
            total_requests: 8,
            ..TenantMixScenario::default()
        };
        let mix = scenario.materialize();
        for share in mix.policy.shares() {
            assert!((share.floor - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenants_are_rejected() {
        let _ = TenantMixScenario {
            tenants: 0,
            ..TenantMixScenario::default()
        }
        .materialize();
    }
}
