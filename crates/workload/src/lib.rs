//! # Synthetic workload generators
//!
//! Reproduces the synthetic-data setup of the paper's §5.2:
//!
//! * **Strategy generation** — strategy parameter triples drawn either
//!   uniformly from `[0.5, 1]` or from a normal distribution with mean 0.75
//!   and standard deviation 0.1 ([`strategy_gen`]).
//! * **Worker-availability models** — one `(α, β)` pair per strategy with
//!   `α ∈ [0.5, 1]` uniform and `β = 1 − α`, so the estimated availability
//!   requirement stays within `[0, 1]` ([`model_gen`]).
//! * **Deployment requests** — parameter triples drawn from `[0.625, 1]`
//!   ([`request_gen`]).
//! * **Experiment scenarios** — the default parameter grids of Figures 14–18
//!   (`|S| = 10 000`, `m = 10`, `k = 10`, `W = 0.5`, and the reduced
//!   brute-force grids) ([`scenario`]).
//! * **Churn scenarios** — epoch streams interleaving deployment batches
//!   with strategy insert/retire, driving the mutable catalog's
//!   log-structured overlay against the rebuild-per-epoch baseline
//!   ([`churn`]).
//! * **Churn-vs-serve stress histories** — the same epoch streams driven
//!   through the concurrent snapshot catalog: one writer thread publishing
//!   epochs while reader threads serve lock-free, with every read recorded
//!   for after-the-fact snapshot-isolation checking ([`stress`]).
//! * **Multi-tenant mixes** — Zipf-skewed per-tenant request batches with
//!   an optional flooding heavy tenant, paired with the matching
//!   [`FairnessPolicy`](stratrec_core::fairness::FairnessPolicy) floors
//!   ([`tenants`]).
//! * **Open-loop streams** — seeded Poisson arrival schedules with burst
//!   phases and the same Zipf tenant mix, for driving the streaming
//!   front-end past saturation ([`openloop`]).

#![forbid(unsafe_code)]

pub mod churn;
pub mod model_gen;
pub mod openloop;
pub mod request_gen;
pub mod scenario;
pub mod strategy_gen;
pub mod stress;
pub mod tenants;

pub use churn::{ChurnEpoch, ChurnInstance, ChurnScenario};
pub use model_gen::generate_models;
pub use openloop::{schedule_fingerprint, Arrival, BurstPhase, OpenLoopScenario};
pub use request_gen::generate_requests;
pub use scenario::{AdparScenario, BatchScenario, ParameterDistribution};
pub use strategy_gen::generate_strategies;
pub use stress::{run_churn_stress, ReadRecord, StressHistory};
pub use tenants::{TenantMix, TenantMixScenario};
