//! Churn-vs-serve stress harness: one writer, many lock-free readers.
//!
//! The sequential churn loop ([`crate::churn`]) interleaves epochs and
//! serving on one thread. This module drives the same epoch stream through
//! the concurrent half of the catalog
//! ([`ConcurrentCatalog`](stratrec_core::catalog::ConcurrentCatalog)): a
//! **writer thread** folds each [`ChurnEpoch`](crate::ChurnEpoch) into the
//! next published [`EpochSnapshot`] while **reader threads** keep serving
//! the scenario's standing batch from whatever snapshot they have pinned,
//! migrating forward with
//! [`StratRec::process_batch_with_reader`]. Every serve is recorded as a
//! [`ReadRecord`] — which epoch the reader was pinned at and the exact
//! report it produced — and the writer records every snapshot it
//! publishes, so the resulting [`StressHistory`] can be checked for
//! **snapshot isolation** after the fact: each concurrent read must be
//! byte-identical to the sequential pipeline replayed over the snapshot of
//! its pinned epoch, and each reader's pinned epochs must be monotone
//! (`tests/snapshot_isolation.rs` runs exactly that check, racing ≥ 4
//! readers against the churn writer).
//!
//! The harness is deliberately schedule-independent: it asserts nothing
//! about *which* epoch a reader observes (that depends on the
//! interleaving), only records what was observed, because the isolation
//! property itself — "whatever you pinned, you saw exactly that committed
//! state" — holds for every schedule or for none.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use stratrec_core::availability::AvailabilityPdf;
use stratrec_core::catalog::{CatalogStats, ConcurrentCatalog, EpochSnapshot, RebuildPolicy};
use stratrec_core::error::StratRecError;
use stratrec_core::stratrec::{SnapshotSession, StratRec, StratRecReport};

use crate::churn::ChurnInstance;

/// One concurrent serve, as recorded by a reader thread: the epoch of the
/// snapshot the report was planned against, and the report itself.
#[derive(Debug, Clone)]
pub struct ReadRecord {
    /// Epoch of the pinned [`EpochSnapshot`] this serve ran against.
    pub epoch: u64,
    /// The report the reader produced — the isolation checker replays the
    /// sequential pipeline at [`Self::epoch`] and demands equality.
    pub report: StratRecReport,
    /// Aggregation rows the serve re-repaired (full row count on a
    /// re-prime, churn-proportional on the delta path).
    pub repaired_rows: usize,
}

/// Everything a churn-vs-serve run observed: the snapshots the writer
/// published (in publication order, the pre-churn snapshot first) and each
/// reader's serve records (in that reader's program order).
#[derive(Debug)]
pub struct StressHistory {
    /// Every snapshot the writer published, starting with the initial one.
    pub published: Vec<Arc<EpochSnapshot>>,
    /// Per-reader serve histories, indexed by reader.
    pub reads: Vec<Vec<ReadRecord>>,
    /// The epoch of the last published snapshot.
    pub final_epoch: u64,
    /// The catalog's lifecycle counters after the run — all readers
    /// dropped, all epochs published.
    pub stats: CatalogStats,
}

impl StressHistory {
    /// The published snapshot of `epoch`, if the writer published one at
    /// exactly that epoch. Readers can only ever pin published snapshots,
    /// so the isolation checker treats a miss as a torn read.
    #[must_use]
    pub fn snapshot_at(&self, epoch: u64) -> Option<&Arc<EpochSnapshot>> {
        self.published
            .iter()
            .find(|snapshot| snapshot.epoch() == epoch)
    }

    /// Total serves across all readers.
    #[must_use]
    pub fn total_reads(&self) -> usize {
        self.reads.iter().map(Vec::len).sum()
    }
}

/// Races `readers` serving threads against one churn writer over
/// `instance`'s epoch stream and returns the full observable history.
///
/// The writer applies one [`ChurnEpoch`](crate::ChurnEpoch) (plus the
/// scenario's boundary compaction) per
/// [`ConcurrentCatalog::update`] — one published snapshot per churn epoch —
/// and yields between epochs so readers interleave. Each reader owns a
/// [`SnapshotReader`](stratrec_core::catalog::SnapshotReader) and a
/// [`SnapshotSession`] and keeps serving the standing batch until it has
/// observed the final epoch; every reader is guaranteed at least one serve
/// of the initial snapshot *before* the writer starts, and one of the
/// final snapshot after it finishes, so the history always exercises the
/// full epoch range.
///
/// # Errors
///
/// Propagates the first [`StratRecError`] any reader hits (the scenario's
/// model library covers every strategy, so an error here is a bug in the
/// snapshot or delta machinery, not an expected outcome).
pub fn run_churn_stress(
    instance: &ChurnInstance,
    layer: &StratRec,
    policy: RebuildPolicy,
    readers: usize,
) -> Result<StressHistory, StratRecError> {
    assert!(readers > 0, "a stress run needs at least one reader");
    let concurrent = ConcurrentCatalog::new(instance.catalog(policy));
    let pdf = AvailabilityPdf::certain(instance.availability.value());
    let done = AtomicBool::new(false);
    let final_epoch = AtomicU64::new(u64::MAX);
    let primed = Barrier::new(readers + 1);
    let mut published = vec![concurrent.pin()];

    let mut histories: Vec<Result<Vec<ReadRecord>, StratRecError>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(readers);
        for _ in 0..readers {
            let mut reader = concurrent.reader();
            let (done, final_epoch, primed, pdf) = (&done, &final_epoch, &primed, &pdf);
            handles.push(scope.spawn(move || {
                let mut session = SnapshotSession::new();
                let mut records = Vec::new();
                let mut first = true;
                loop {
                    let result = layer.process_batch_with_reader(
                        &instance.standing,
                        &mut reader,
                        &instance.models,
                        pdf,
                        &mut session,
                    );
                    if first {
                        // The writer waits on the same barrier before its
                        // first publish: every reader's opening serve runs
                        // against the pre-churn snapshot.
                        primed.wait();
                        first = false;
                    }
                    let (report, snapshot) = result?;
                    records.push(ReadRecord {
                        epoch: snapshot.epoch(),
                        report,
                        repaired_rows: session.last_repaired_rows(),
                    });
                    if done.load(Ordering::Acquire)
                        && snapshot.epoch() >= final_epoch.load(Ordering::Acquire)
                    {
                        return Ok(records);
                    }
                    std::thread::yield_now();
                }
            }));
        }
        // The writer runs on this thread, starting only after every reader
        // finished its opening serve of the initial snapshot. At this point
        // every reader's delta subscription is registered and nothing has
        // been published yet — the stats accessor must agree.
        primed.wait();
        let opening = concurrent.stats();
        assert_eq!(
            opening.subscribers, readers,
            "every reader holds a live delta subscription during the run"
        );
        assert_eq!(
            opening.published_epochs, 0,
            "nothing published before churn"
        );
        for i in 0..instance.epochs.len() {
            let (_, snapshot) = concurrent.update(|catalog| instance.apply_epoch(i, catalog));
            published.push(snapshot);
            std::thread::yield_now();
        }
        final_epoch.store(concurrent.epoch(), Ordering::Release);
        done.store(true, Ordering::Release);
        histories = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });

    // Readers are joined and dropped: their subscriptions must be gone, and
    // the publish counter must show exactly one snapshot per churn epoch.
    let stats = concurrent.stats();
    assert_eq!(stats.subscribers, 0, "dropped readers unsubscribe");
    assert_eq!(
        stats.published_epochs,
        instance.epochs.len() as u64,
        "one published snapshot per churn epoch"
    );
    assert_eq!(stats.epoch, concurrent.epoch());

    let reads = histories.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(StressHistory {
        final_epoch: published.last().expect("initial snapshot").epoch(),
        published,
        reads,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnScenario;
    use stratrec_core::batch::BatchObjective;
    use stratrec_core::stratrec::StratRecConfig;
    use stratrec_core::workforce::AggregationMode;

    fn small_instance() -> ChurnInstance {
        ChurnScenario {
            initial_strategies: 80,
            epochs: 6,
            inserts_per_epoch: 8,
            retires_per_epoch: 6,
            batch_size: 5,
            k: 3,
            compact: crate::churn::CompactPolicy::EveryNEpochs(3),
            ..ChurnScenario::default()
        }
        .materialize()
    }

    #[test]
    fn stress_histories_cover_the_full_epoch_range() {
        let instance = small_instance();
        let layer = StratRec::new(StratRecConfig {
            k: instance.k,
            objective: BatchObjective::Throughput,
            aggregation: AggregationMode::Sum,
        });
        let history = run_churn_stress(&instance, &layer, RebuildPolicy::threshold(6), 2).unwrap();
        assert_eq!(history.published.len(), instance.epochs.len() + 1);
        assert_eq!(history.reads.len(), 2);
        assert_eq!(history.stats.epoch, history.final_epoch);
        assert_eq!(history.stats.published_epochs, instance.epochs.len() as u64);
        assert_eq!(history.stats.subscribers, 0);
        for records in &history.reads {
            assert!(!records.is_empty());
            // First serve is the pre-churn snapshot, last is the final one.
            assert_eq!(records.first().unwrap().epoch, 0);
            assert_eq!(records.last().unwrap().epoch, history.final_epoch);
            // Epochs are monotone and every pinned epoch was published.
            for pair in records.windows(2) {
                assert!(pair[0].epoch <= pair[1].epoch);
            }
            for record in records {
                assert!(history.snapshot_at(record.epoch).is_some());
            }
        }
    }
}
