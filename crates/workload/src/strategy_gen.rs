//! Synthetic deployment-strategy generation (paper §5.2.2).
//!
//! "The dimension values of a strategy are generated considering uniform and
//! normal distributions. For the normal distribution, the mean and standard
//! deviation are set to 0.75 and 0.1, respectively. We randomly pick the
//! value from 0.5 to 1 for the uniform distribution."

use rand::Rng;
use rand_distr::{Distribution, Normal};
use stratrec_core::model::{DeploymentParameters, Strategy};

use crate::scenario::ParameterDistribution;

/// Generates `count` strategies whose quality / cost / latency values are
/// drawn independently from `distribution`. All values are clamped into
/// `[0, 1]`.
pub fn generate_strategies(
    count: usize,
    distribution: ParameterDistribution,
    rng: &mut impl Rng,
) -> Vec<Strategy> {
    let normal = Normal::<f64>::new(0.75, 0.1).expect("valid normal parameters");
    (0..count)
        .map(|id| {
            let mut draw = || match distribution {
                ParameterDistribution::Uniform => rng.gen_range(0.5..1.0),
                ParameterDistribution::Normal => normal.sample(rng).clamp(0.0, 1.0),
            };
            let params = DeploymentParameters::clamped(draw(), draw(), draw());
            Strategy::from_params(id as u64, params)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stratrec_optim::stats::Summary;

    #[test]
    fn uniform_strategies_stay_in_half_open_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let strategies = generate_strategies(500, ParameterDistribution::Uniform, &mut rng);
        assert_eq!(strategies.len(), 500);
        for s in &strategies {
            for v in [s.params.quality, s.params.cost, s.params.latency] {
                assert!((0.5..1.0).contains(&v), "value {v} outside [0.5, 1)");
            }
        }
    }

    #[test]
    fn normal_strategies_concentrate_around_0_75() {
        let mut rng = StdRng::seed_from_u64(2);
        let strategies = generate_strategies(2000, ParameterDistribution::Normal, &mut rng);
        let qualities: Vec<f64> = strategies.iter().map(|s| s.params.quality).collect();
        let summary = Summary::of(&qualities);
        assert!((summary.mean - 0.75).abs() < 0.02);
        assert!((summary.std_dev - 0.1).abs() < 0.02);
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let mut rng = StdRng::seed_from_u64(3);
        let strategies = generate_strategies(10, ParameterDistribution::Uniform, &mut rng);
        for (i, s) in strategies.iter().enumerate() {
            assert_eq!(s.id.0, i as u64);
        }
    }

    #[test]
    fn zero_count_is_fine() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(generate_strategies(0, ParameterDistribution::Normal, &mut rng).is_empty());
    }

    proptest! {
        #[test]
        fn generated_parameters_are_always_normalized(
            seed in 0_u64..1000,
            count in 0_usize..200,
            normal in proptest::bool::ANY,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let dist = if normal {
                ParameterDistribution::Normal
            } else {
                ParameterDistribution::Uniform
            };
            for s in generate_strategies(count, dist, &mut rng) {
                prop_assert!((0.0..=1.0).contains(&s.params.quality));
                prop_assert!((0.0..=1.0).contains(&s.params.cost));
                prop_assert!((0.0..=1.0).contains(&s.params.latency));
            }
        }
    }
}
