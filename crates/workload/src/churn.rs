//! Churn scenarios: deployment batches interleaved with strategy add/retire.
//!
//! The paper's synthetic experiments (§5.2) assume a frozen strategy set,
//! but a live crowdsourcing platform deploys new strategies and retires
//! stale ones continuously. A [`ChurnScenario`] materializes an epoch stream
//! for that setting: each [`ChurnEpoch`] carries a batch of deployment
//! requests plus the strategies inserted and the retirement picks applied
//! before the batch is triaged. The same stream drives both catalog
//! maintenance disciplines compared in `bench_churn`:
//!
//! * **rebuild** — keep a plain `Vec<Strategy>` of live strategies
//!   ([`ChurnEpoch::apply_to_vec`]) and bulk-load a fresh
//!   [`StrategyCatalog`] every epoch;
//! * **overlay** — mutate one long-lived catalog in place
//!   ([`ChurnEpoch::apply`]), letting its log-structured overlay absorb the
//!   churn.
//!
//! Retirement picks are stored as *ranks* resolved against the live set at
//! application time, so the two disciplines retire exactly the same
//! strategies: the catalog's ascending live-slot order matches the plain
//! vector's insertion order position for position. Rank-based picks are
//! also compaction-proof: they survive the slot renumbering a
//! [`CompactPolicy`]-driven `compact()` applies at an epoch boundary
//! ([`ChurnEpoch::apply_with_compaction`]), so the same scenario drives the
//! full churn → compact → solve loop the compaction benches measure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use stratrec_core::availability::{AvailabilityPdf, WorkerAvailability};
use stratrec_core::catalog::{RebuildPolicy, SlotRemap, StrategyCatalog};
use stratrec_core::error::StratRecError;
use stratrec_core::model::{DeploymentRequest, Strategy};
use stratrec_core::modeling::ModelLibrary;
use stratrec_core::stratrec::{StratRec, StratRecReport, StratRecSession};

use crate::model_gen::generate_models;
use crate::request_gen::generate_requests;
use crate::scenario::ParameterDistribution;
use crate::strategy_gen::generate_strategies;

/// When a long-lived catalog compacts at epoch boundaries, reclaiming
/// tombstoned slots (see `StrategyCatalog::compact`).
///
/// Compaction renumbers slots — every retained slot reference must go
/// through the returned [`SlotRemap`] — so a service picks its boundary
/// deliberately: periodically ([`Self::EveryNEpochs`]) for predictable
/// memory ceilings, or adaptively once dead slots dominate
/// ([`Self::TombstoneRatio`], the LSM-style space-amplification trigger).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum CompactPolicy {
    /// Never compact: stable slots forever, `slot_count` grows monotonically
    /// with churn (the PR-2 behaviour).
    #[default]
    Never,
    /// Compact after every `n`-th epoch (`n ≥ 1`; `0` behaves like
    /// [`Self::Never`]).
    EveryNEpochs(usize),
    /// Compact at an epoch boundary once retired slots make up at least this
    /// fraction of all slots (`0.3` = compact when ≥ 30 % of the numbering
    /// is dead weight). Never fires while no slot is retired.
    TombstoneRatio(f64),
}

impl CompactPolicy {
    /// Whether `catalog` should compact at the boundary after
    /// `epochs_applied` epochs (1-based count of epochs applied so far).
    #[must_use]
    pub fn should_compact(self, epochs_applied: usize, catalog: &StrategyCatalog) -> bool {
        match self {
            Self::Never => false,
            Self::EveryNEpochs(n) => n > 0 && epochs_applied.is_multiple_of(n),
            Self::TombstoneRatio(ratio) => {
                let retired = catalog.retired_count();
                retired > 0 && retired as f64 >= ratio * catalog.slot_count() as f64
            }
        }
    }
}

/// Scenario knobs for a churn experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnScenario {
    /// Strategies in the catalog before the first epoch (`|S|`).
    pub initial_strategies: usize,
    /// Number of churn epochs.
    pub epochs: usize,
    /// Strategies inserted per epoch.
    pub inserts_per_epoch: usize,
    /// Strategies retired per epoch.
    pub retires_per_epoch: usize,
    /// Deployment requests per epoch batch.
    pub batch_size: usize,
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Expected worker availability `W`.
    pub availability: f64,
    /// Distribution of the strategy parameters.
    pub distribution: ParameterDistribution,
    /// Epoch-boundary compaction policy for the long-lived catalog.
    pub compact: CompactPolicy,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnScenario {
    /// Paper-scale defaults with 1 % churn: `|S| = 10 000`, 100 inserts and
    /// 100 retires per epoch, `m = 10`, `k = 10`, `W = 0.5`.
    fn default() -> Self {
        Self {
            initial_strategies: 10_000,
            epochs: 5,
            inserts_per_epoch: 100,
            retires_per_epoch: 100,
            batch_size: 10,
            k: 10,
            availability: 0.5,
            distribution: ParameterDistribution::Uniform,
            compact: CompactPolicy::Never,
            seed: 2020,
        }
    }
}

impl ChurnScenario {
    /// Sets inserts and retires per epoch to `rate` (e.g. `0.05` = 5 %) of
    /// the initial strategy count, at least 1 each.
    #[must_use]
    pub fn with_churn_rate(mut self, rate: f64) -> Self {
        let per_epoch = ((self.initial_strategies as f64 * rate).round() as usize).max(1);
        self.inserts_per_epoch = per_epoch;
        self.retires_per_epoch = per_epoch;
        self
    }

    /// Materializes the scenario: the initial strategy set, one
    /// [`ChurnEpoch`] per epoch, and a model library covering every strategy
    /// that will ever exist (initial + all inserts).
    #[must_use]
    pub fn materialize(&self) -> ChurnInstance {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let initial = generate_strategies(self.initial_strategies, self.distribution, &mut rng);
        let mut next_id = initial.len() as u64;
        let mut all_strategies = initial.clone();
        let mut epochs = Vec::with_capacity(self.epochs);
        for _ in 0..self.epochs {
            let mut inserts =
                generate_strategies(self.inserts_per_epoch, self.distribution, &mut rng);
            for strategy in &mut inserts {
                strategy.id = stratrec_core::model::StrategyId(next_id);
                next_id += 1;
            }
            all_strategies.extend(inserts.iter().cloned());
            let retire_ranks = (0..self.retires_per_epoch)
                .map(|_| rng.gen::<u64>())
                .collect();
            let requests = generate_requests(self.batch_size, &mut rng);
            epochs.push(ChurnEpoch {
                inserts,
                retire_ranks,
                requests,
            });
        }
        let models = generate_models(&all_strategies, &mut rng);
        // The standing batch of the incremental serving loop: the same `m`
        // requests served across every epoch while the strategy pool churns
        // underneath them (the delta-maintenance setting). Generated last so
        // the epoch streams of pre-existing scenarios are unchanged.
        let standing = generate_requests(self.batch_size, &mut rng);
        ChurnInstance {
            initial,
            epochs,
            standing,
            models,
            availability: WorkerAvailability::clamped(self.availability),
            k: self.k,
            compact: self.compact,
        }
    }
}

/// One epoch of churn: inserts and retirement picks applied before a batch
/// of deployment requests is triaged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnEpoch {
    /// Strategies deployed this epoch (globally unique ids).
    pub inserts: Vec<Strategy>,
    /// Retirement picks as ranks into the live set at application time
    /// (`rank % live_count` selects the victim), so any maintenance
    /// discipline retires the same strategies.
    pub retire_ranks: Vec<u64>,
    /// The deployment-request batch of this epoch.
    pub requests: Vec<DeploymentRequest>,
}

impl ChurnEpoch {
    /// Applies this epoch's churn to a mutable catalog (inserts first, then
    /// retirements), returning the retired slot indices.
    ///
    /// The ascending live-slot list is maintained incrementally across the
    /// retirement picks (one catalog scan per epoch, not per retire), so the
    /// selection overhead stays negligible next to the maintenance cost the
    /// churn benches measure.
    pub fn apply(&self, catalog: &mut StrategyCatalog) -> Vec<usize> {
        let mut live_slots = catalog.live_indices();
        for strategy in &self.inserts {
            // New slots are always larger than existing ones: the list stays
            // ascending, matching `apply_to_vec`'s position order.
            live_slots.push(catalog.insert(strategy.clone()));
        }
        let mut retired = Vec::with_capacity(self.retire_ranks.len());
        for &rank in &self.retire_ranks {
            if live_slots.is_empty() {
                break;
            }
            let position = (rank as usize) % live_slots.len();
            let slot = live_slots.remove(position);
            let ok = catalog.retire(slot);
            debug_assert!(ok, "the live-slot list tracked a dead slot");
            retired.push(slot);
        }
        retired
    }

    /// [`Self::apply`] followed by an epoch-boundary compaction when
    /// `policy` calls for one; `epochs_applied` is the 1-based count of
    /// epochs applied to `catalog` so far, this one included. Returns the
    /// retired slot indices (pre-compaction numbering) and, when the
    /// catalog compacted, the [`SlotRemap`] every retained slot reference
    /// must be renumbered through.
    pub fn apply_with_compaction(
        &self,
        catalog: &mut StrategyCatalog,
        policy: CompactPolicy,
        epochs_applied: usize,
    ) -> (Vec<usize>, Option<SlotRemap>) {
        let retired = self.apply(catalog);
        let remap = policy
            .should_compact(epochs_applied, catalog)
            .then(|| catalog.compact());
        (retired, remap)
    }

    /// Applies the same churn to a plain live-strategy vector — the
    /// rebuild-per-epoch discipline. Position-for-position this retires the
    /// same strategies as [`Self::apply`] does by slot.
    pub fn apply_to_vec(&self, live: &mut Vec<Strategy>) {
        live.extend(self.inserts.iter().cloned());
        for &rank in &self.retire_ranks {
            if live.is_empty() {
                break;
            }
            let position = (rank as usize) % live.len();
            live.remove(position);
        }
    }
}

/// A materialized churn experiment.
#[derive(Debug, Clone)]
pub struct ChurnInstance {
    /// The strategy set before the first epoch.
    pub initial: Vec<Strategy>,
    /// The epoch stream.
    pub epochs: Vec<ChurnEpoch>,
    /// The standing deployment-request batch served across **every** epoch
    /// by the incremental maintenance loop
    /// ([`Self::apply_epoch_incremental`]), as opposed to the per-epoch
    /// [`ChurnEpoch::requests`].
    pub standing: Vec<DeploymentRequest>,
    /// Models for every strategy that ever exists (initial + inserts).
    pub models: ModelLibrary,
    /// Expected worker availability.
    pub availability: WorkerAvailability,
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Epoch-boundary compaction policy for the long-lived catalog.
    pub compact: CompactPolicy,
}

impl ChurnInstance {
    /// Builds the long-lived mutable catalog over the initial strategies.
    #[must_use]
    pub fn catalog(&self, policy: RebuildPolicy) -> StrategyCatalog {
        StrategyCatalog::with_policy(self.initial.clone(), policy)
    }

    /// Applies epoch `epoch_index` of [`Self::epochs`] to a long-lived
    /// catalog, compacting at the boundary when the scenario's
    /// [`CompactPolicy`] ([`Self::compact`]) calls for it — the canonical
    /// per-epoch step of the churn → compact → solve loop. Returns the
    /// retired slots (pre-compaction numbering) and the [`SlotRemap`] when
    /// the boundary compacted.
    ///
    /// # Panics
    ///
    /// Panics when `epoch_index >= self.epochs.len()`.
    pub fn apply_epoch(
        &self,
        epoch_index: usize,
        catalog: &mut StrategyCatalog,
    ) -> (Vec<usize>, Option<SlotRemap>) {
        self.epochs[epoch_index].apply_with_compaction(catalog, self.compact, epoch_index + 1)
    }

    /// The **incremental** serving-loop step: [`Self::apply_epoch`] followed
    /// by serving the [`Self::standing`] batch through
    /// [`StratRec::process_batch_with_session`], so the workforce matrix and
    /// its aggregation absorb the epoch's churn as a catalog delta —
    /// inserted-slot columns recomputed, retired columns written to `∞`,
    /// only churn-affected aggregation rows repaired — instead of being
    /// rebuilt from scratch. The report is identical to a per-epoch
    /// [`StratRec::process_batch_with_catalog`] over the post-churn catalog,
    /// compactions included (the session's delta subscription composes their
    /// `SlotRemap`s automatically).
    ///
    /// # Errors
    ///
    /// Propagates [`StratRec::process_batch_with_session`] errors (e.g. an
    /// inserted strategy missing from [`Self::models`]).
    ///
    /// # Panics
    ///
    /// Panics when `epoch_index >= self.epochs.len()`.
    pub fn apply_epoch_incremental(
        &self,
        epoch_index: usize,
        catalog: &mut StrategyCatalog,
        layer: &StratRec,
        session: &mut StratRecSession,
    ) -> Result<StratRecReport, StratRecError> {
        self.apply_epoch(epoch_index, catalog);
        let pdf = AvailabilityPdf::certain(self.availability.value());
        layer.process_batch_with_session(&self.standing, catalog, &self.models, &pdf, session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stratrec_core::batch::{BatchObjective, BatchStrat};
    use stratrec_core::workforce::{AggregationMode, EligibilityRule, WorkforceMatrix};

    fn small_scenario() -> ChurnScenario {
        ChurnScenario {
            initial_strategies: 120,
            epochs: 4,
            inserts_per_epoch: 15,
            retires_per_epoch: 10,
            batch_size: 6,
            k: 3,
            ..ChurnScenario::default()
        }
    }

    #[test]
    fn materialization_is_reproducible_and_ids_are_unique() {
        let scenario = small_scenario();
        let a = scenario.materialize();
        let b = scenario.materialize();
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.epochs, b.epochs);
        let mut ids = std::collections::HashSet::new();
        for s in a
            .initial
            .iter()
            .chain(a.epochs.iter().flat_map(|e| e.inserts.iter()))
        {
            assert!(ids.insert(s.id), "duplicate strategy id {:?}", s.id);
            assert!(a.models.get(s.id).is_some(), "missing model for {:?}", s.id);
        }
    }

    #[test]
    fn churn_rate_scales_with_initial_size() {
        let scenario = ChurnScenario::default().with_churn_rate(0.05);
        assert_eq!(scenario.inserts_per_epoch, 500);
        assert_eq!(scenario.retires_per_epoch, 500);
        let tiny = ChurnScenario {
            initial_strategies: 3,
            ..ChurnScenario::default()
        }
        .with_churn_rate(0.01);
        assert_eq!(tiny.inserts_per_epoch, 1);
    }

    #[test]
    fn both_maintenance_disciplines_retire_the_same_strategies() {
        let instance = small_scenario().materialize();
        let mut catalog = instance.catalog(RebuildPolicy::threshold(8));
        let mut live = instance.initial.clone();
        for epoch in &instance.epochs {
            epoch.apply(&mut catalog);
            epoch.apply_to_vec(&mut live);
            let catalog_live: Vec<_> = catalog
                .live_indices()
                .into_iter()
                .map(|slot| catalog.strategy(slot).clone())
                .collect();
            assert_eq!(catalog_live, live);
        }
    }

    #[test]
    fn churned_catalog_triage_matches_rebuilt_catalog() {
        let instance = small_scenario().materialize();
        let engine = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Sum);
        for policy in [
            RebuildPolicy::always(),
            RebuildPolicy::threshold(7),
            RebuildPolicy::never(),
        ] {
            let mut catalog = instance.catalog(policy);
            let mut live = instance.initial.clone();
            for epoch in &instance.epochs {
                epoch.apply(&mut catalog);
                epoch.apply_to_vec(&mut live);
                // Eligibility parity per request against the linear scan
                // over the live set (mapped through the live slot order).
                let live_slots = catalog.live_indices();
                for request in &epoch.requests {
                    let by_catalog = catalog.eligible_for_request(request);
                    let by_scan: Vec<usize> = request
                        .eligible_strategies(&live)
                        .into_iter()
                        .map(|pos| live_slots[pos])
                        .collect();
                    assert_eq!(by_catalog, by_scan, "{policy:?}");
                }
                // Outcome parity: triaging through the churned catalog and
                // through a freshly rebuilt one must agree on which
                // requests are satisfied and on the objective.
                let churned = engine
                    .recommend_with_catalog(
                        &epoch.requests,
                        &catalog,
                        &instance.models,
                        instance.k,
                        instance.availability,
                    )
                    .unwrap();
                let rebuilt = engine
                    .recommend_with_models(
                        &epoch.requests,
                        &live,
                        &instance.models,
                        instance.k,
                        instance.availability,
                    )
                    .unwrap();
                let satisfied = |o: &stratrec_core::batch::BatchOutcome| {
                    o.satisfied
                        .iter()
                        .map(|r| r.request_index)
                        .collect::<Vec<_>>()
                };
                assert_eq!(satisfied(&churned), satisfied(&rebuilt), "{policy:?}");
                assert_eq!(churned.unsatisfied, rebuilt.unsatisfied, "{policy:?}");
                assert!(
                    (churned.objective_value - rebuilt.objective_value).abs() < 1e-9,
                    "{policy:?}"
                );
                assert!(
                    (churned.workforce_used - rebuilt.workforce_used).abs() < 1e-9,
                    "{policy:?}"
                );
            }
        }
    }

    #[test]
    fn compact_policies_fire_at_the_right_boundaries() {
        let instance = small_scenario().materialize();
        let mut catalog = instance.catalog(RebuildPolicy::threshold(8));
        assert!(!CompactPolicy::Never.should_compact(1, &catalog));
        assert!(!CompactPolicy::EveryNEpochs(0).should_compact(4, &catalog));
        assert!(CompactPolicy::EveryNEpochs(2).should_compact(2, &catalog));
        assert!(!CompactPolicy::EveryNEpochs(2).should_compact(3, &catalog));
        // No slot retired yet: the ratio trigger never fires.
        assert!(!CompactPolicy::TombstoneRatio(0.0).should_compact(1, &catalog));
        instance.epochs[0].apply(&mut catalog);
        assert!(catalog.retired_count() > 0);
        assert!(CompactPolicy::TombstoneRatio(0.0).should_compact(1, &catalog));
        let ratio = catalog.retired_count() as f64 / catalog.slot_count() as f64;
        assert!(CompactPolicy::TombstoneRatio(ratio - 1e-9).should_compact(1, &catalog));
        assert!(!CompactPolicy::TombstoneRatio(ratio + 1e-9).should_compact(1, &catalog));
    }

    #[test]
    fn compacting_churn_loop_matches_the_rebuild_discipline() {
        // The full churn → compact → triage loop must keep agreeing with
        // the rebuild-per-epoch discipline: compaction renumbers slots but
        // never changes the live set, and rank-based retirement picks are
        // applied to the live order, which compaction preserves.
        let instance = small_scenario().materialize();
        let engine = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Sum);
        for policy in [
            CompactPolicy::EveryNEpochs(1),
            CompactPolicy::EveryNEpochs(2),
            CompactPolicy::TombstoneRatio(0.05),
        ] {
            let mut catalog = instance.catalog(RebuildPolicy::threshold(7));
            let mut live = instance.initial.clone();
            for (i, epoch) in instance.epochs.iter().enumerate() {
                let (_, remap) = epoch.apply_with_compaction(&mut catalog, policy, i + 1);
                epoch.apply_to_vec(&mut live);
                if let Some(remap) = &remap {
                    assert_eq!(remap.live_len, live.len(), "{policy:?}, epoch {i}");
                    assert_eq!(catalog.slot_count(), catalog.len(), "{policy:?}, epoch {i}");
                }
                // Live sets agree position for position.
                let catalog_live: Vec<_> = catalog
                    .live_indices()
                    .into_iter()
                    .map(|slot| catalog.strategy(slot).clone())
                    .collect();
                assert_eq!(catalog_live, live, "{policy:?}, epoch {i}");
                // And the triage outcome matches the rebuilt catalog's.
                let churned = engine
                    .recommend_with_catalog(
                        &epoch.requests,
                        &catalog,
                        &instance.models,
                        instance.k,
                        instance.availability,
                    )
                    .unwrap();
                let rebuilt = engine
                    .recommend_with_models(
                        &epoch.requests,
                        &live,
                        &instance.models,
                        instance.k,
                        instance.availability,
                    )
                    .unwrap();
                assert_eq!(churned.unsatisfied, rebuilt.unsatisfied, "{policy:?}");
                assert!(
                    (churned.objective_value - rebuilt.objective_value).abs() < 1e-9,
                    "{policy:?}"
                );
            }
            // Under per-epoch compaction the numbering never carries dead
            // slots past a boundary.
            if policy == CompactPolicy::EveryNEpochs(1) {
                assert_eq!(catalog.slot_count(), catalog.len());
            }
        }
    }

    #[test]
    fn compaction_bounds_slot_growth_where_never_grows_monotonically() {
        // The scenario-level policy drives the loop through
        // `ChurnInstance::apply_epoch`; the two instances share the same
        // epoch stream and differ only in their `compact` knob.
        let never_scenario = ChurnScenario {
            epochs: 8,
            ..small_scenario()
        };
        let compacting_scenario = ChurnScenario {
            compact: CompactPolicy::EveryNEpochs(1),
            ..never_scenario
        };
        let never_instance = never_scenario.materialize();
        let compacting_instance = compacting_scenario.materialize();
        assert_eq!(never_instance.epochs, compacting_instance.epochs);

        let mut never = never_instance.catalog(RebuildPolicy::default());
        let mut compacting = never.clone();
        let mut never_peak = 0usize;
        let mut compacting_peak = 0usize;
        for i in 0..never_instance.epochs.len() {
            let (_, no_remap) = never_instance.apply_epoch(i, &mut never);
            assert!(no_remap.is_none(), "CompactPolicy::Never never compacts");
            never_peak = never_peak.max(never.slot_count());
            let (_, remap) = compacting_instance.apply_epoch(i, &mut compacting);
            assert!(remap.is_some());
            compacting_peak = compacting_peak.max(compacting.slot_count());
        }
        assert_eq!(never.len(), compacting.len());
        assert!(
            never.slot_count() > never.len(),
            "without compaction the numbering keeps every tombstone"
        );
        assert_eq!(
            compacting.slot_count(),
            compacting.len(),
            "per-epoch compaction sheds all tombstones at each boundary"
        );
        assert!(compacting_peak < never_peak);
    }

    #[test]
    fn incremental_epoch_loop_matches_the_full_pipeline_per_epoch() {
        // The delta-maintained serving loop must produce reports identical
        // to recomputing the whole pipeline per epoch, across rebuild AND
        // compaction policies (the session's subscription composes the
        // compaction remaps into its windows).
        use stratrec_core::stratrec::{StratRec, StratRecConfig, StratRecSession};
        use stratrec_core::workforce::AggregationMode;

        for compact in [
            CompactPolicy::Never,
            CompactPolicy::EveryNEpochs(2),
            CompactPolicy::TombstoneRatio(0.05),
        ] {
            let instance = ChurnScenario {
                compact,
                ..small_scenario()
            }
            .materialize();
            assert_eq!(instance.standing.len(), 6);
            for policy in [
                RebuildPolicy::always(),
                RebuildPolicy::threshold(7),
                RebuildPolicy::never(),
            ] {
                let layer = StratRec::new(StratRecConfig {
                    k: instance.k,
                    objective: BatchObjective::Throughput,
                    aggregation: AggregationMode::Sum,
                });
                let mut catalog = instance.catalog(policy);
                let mut session = StratRecSession::new();
                for i in 0..instance.epochs.len() {
                    let incremental = instance
                        .apply_epoch_incremental(i, &mut catalog, &layer, &mut session)
                        .unwrap();
                    let pdf = stratrec_core::availability::AvailabilityPdf::certain(
                        instance.availability.value(),
                    );
                    let full = layer
                        .process_batch_with_catalog(
                            &instance.standing,
                            &catalog,
                            &instance.models,
                            &pdf,
                        )
                        .unwrap();
                    assert_eq!(incremental, full, "{compact:?}, {policy:?}, epoch {i}");
                    if i == 0 {
                        assert_eq!(session.last_repaired_rows(), instance.standing.len());
                    }
                    assert_eq!(
                        session.matrix().unwrap().cols(),
                        catalog.slot_count(),
                        "{compact:?}, {policy:?}, epoch {i}"
                    );
                }
                session.detach(&mut catalog);
                assert_eq!(catalog.delta_subscriber_count(), 0);
            }
        }
    }

    #[test]
    fn incremental_epoch_loop_holds_precision_parity_for_the_f32_kernel() {
        // Same contract as the test above, but driven at both matrix
        // precisions: the delta-maintained session must stay bit-identical
        // to an engine cold fill *of its own precision* at every epoch, and
        // the served reports must match the full per-epoch pipeline under
        // the same engine.
        use stratrec_core::engine::BatchEngine;
        use stratrec_core::stratrec::{StratRec, StratRecConfig, StratRecSession};
        use stratrec_core::workforce::Precision;

        let instance = ChurnScenario {
            compact: CompactPolicy::EveryNEpochs(2),
            ..small_scenario()
        }
        .materialize();
        let config = StratRecConfig {
            k: instance.k,
            objective: BatchObjective::Throughput,
            aggregation: AggregationMode::Sum,
        };
        for precision in Precision::ALL {
            let engine = BatchEngine::new().with_precision(precision);
            let layer = StratRec::new(config).with_engine(engine);
            let mut catalog = instance.catalog(RebuildPolicy::threshold(7));
            let mut session = StratRecSession::new();
            let pdf = stratrec_core::availability::AvailabilityPdf::certain(
                instance.availability.value(),
            );
            for i in 0..instance.epochs.len() {
                let incremental = instance
                    .apply_epoch_incremental(i, &mut catalog, &layer, &mut session)
                    .unwrap();
                let full = layer
                    .process_batch_with_catalog(
                        &instance.standing,
                        &catalog,
                        &instance.models,
                        &pdf,
                    )
                    .unwrap();
                assert_eq!(incremental, full, "{precision:?}, epoch {i}");
                let matrix = session.matrix().unwrap();
                assert_eq!(matrix.precision(), precision);
                let fresh = layer
                    .engine
                    .workforce_matrix(
                        &instance.standing,
                        &catalog,
                        &instance.models,
                        EligibilityRule::default(),
                    )
                    .unwrap();
                assert_eq!(
                    matrix, &fresh,
                    "delta-maintained {precision:?} matrix drifted from a cold fill, epoch {i}"
                );
            }
            session.detach(&mut catalog);
        }
    }

    #[test]
    fn retired_columns_are_infeasible_in_the_workforce_matrix() {
        let instance = small_scenario().materialize();
        let mut catalog = instance.catalog(RebuildPolicy::threshold(4));
        instance.epochs[0].apply(&mut catalog);
        let matrix = WorkforceMatrix::compute_with_catalog(
            &instance.epochs[0].requests,
            &catalog,
            &instance.models,
            EligibilityRule::ModelOnly,
        )
        .unwrap();
        assert_eq!(matrix.cols(), catalog.slot_count());
        for slot in 0..catalog.slot_count() {
            for row in 0..matrix.rows() {
                if catalog.is_live(slot) {
                    assert!(matrix.get(row, slot).is_finite());
                } else {
                    assert!(matrix.get(row, slot).is_infinite());
                }
            }
        }
    }
}
