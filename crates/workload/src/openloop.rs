//! Open-loop streaming arrival schedules for the serving front-end.
//!
//! A closed-loop driver waits for each response before submitting the next
//! request, so it can never overload the service it measures. The streaming
//! tier's overload behavior — admission control, deadline shedding, graceful
//! degradation — only shows under **open-loop** traffic: arrivals follow an
//! external clock regardless of how the server keeps up. This module
//! generates such schedules deterministically:
//!
//! * **Poisson arrivals** — exponential inter-arrival gaps at a base rate,
//!   sampled by inverse CDF from the seeded [`StdRng`] (no external
//!   distribution crates).
//! * **Burst phases** — time windows multiplying the instantaneous rate,
//!   modeling the load spikes the backpressure controller must shed through
//!   and then recover from.
//! * **Zipf tenant mix** — every arrival is tagged with a tenant drawn from
//!   the same `1 / (i + 1)^s` weights (plus optional flooding heavy tenant)
//!   as [`TenantMixScenario`](crate::tenants::TenantMixScenario), so
//!   open-loop streams and batch mixes stress the same skew.
//!
//! Schedules are materialized **up front** in one single-threaded pass:
//! the stream of a given scenario is byte-identical across runs, thread
//! counts and platforms, which is what lets overload tests replay exactly.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use stratrec_core::model::DeploymentRequest;

use crate::request_gen::generate_requests_in_range;
use crate::tenants::TenantMixScenario;

/// A time window during which the arrival rate is multiplied by `factor` —
/// the load spike of an overload scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstPhase {
    /// Start of the burst, in milliseconds from stream start (inclusive).
    pub start_ms: u64,
    /// End of the burst, in milliseconds from stream start (exclusive).
    pub end_ms: u64,
    /// Rate multiplier while the burst is active (`2.0` = twice the base
    /// rate). Values below zero are treated as zero (a silence window).
    pub factor: f64,
}

/// A reproducible open-loop arrival schedule: seeded Poisson arrivals at a
/// base rate, burst phases, and the Zipf tenant mix of the sharded tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopScenario {
    /// Baseline arrival rate outside bursts, in requests per second.
    pub base_rate_hz: f64,
    /// Horizon of the schedule, in milliseconds: arrivals are generated
    /// until this offset.
    pub duration_ms: u64,
    /// Burst windows multiplying the instantaneous rate. Overlapping bursts
    /// multiply together.
    pub bursts: Vec<BurstPhase>,
    /// Number of tenants sharing the stream.
    pub tenants: usize,
    /// Zipf skew of the tenant mix (`0` = uniform, `1` = classic Zipf).
    pub zipf_s: f64,
    /// Optional flooding tenant whose draw weight is multiplied by
    /// [`Self::heavy_factor`].
    pub heavy_tenant: Option<usize>,
    /// Weight multiplier for the heavy tenant.
    pub heavy_factor: f64,
    /// Latency budget stamped on every arrival, in milliseconds from its
    /// arrival instant.
    pub deadline_ms: u64,
    /// RNG seed; equal seeds produce byte-identical schedules.
    pub seed: u64,
}

impl Default for OpenLoopScenario {
    fn default() -> Self {
        Self {
            base_rate_hz: 500.0,
            duration_ms: 1_000,
            bursts: Vec::new(),
            tenants: 4,
            zipf_s: 1.0,
            heavy_tenant: None,
            heavy_factor: 10.0,
            deadline_ms: 250,
            seed: 42,
        }
    }
}

/// One scheduled request of an open-loop stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Sequence number of the arrival (also the request's id).
    pub id: u64,
    /// Offset of the arrival from stream start.
    pub at: Duration,
    /// The tenant issuing the request.
    pub tenant: usize,
    /// Latency budget measured from [`Self::at`].
    pub deadline: Duration,
    /// The deployment request itself (paper's synthetic `[0.625, 1]`
    /// parameter range).
    pub request: DeploymentRequest,
}

impl OpenLoopScenario {
    /// The instantaneous arrival rate at `at_ms` milliseconds into the
    /// stream: the base rate times the factor of every active burst.
    #[must_use]
    pub fn rate_at(&self, at_ms: f64) -> f64 {
        let mut rate = self.base_rate_hz.max(0.0);
        for burst in &self.bursts {
            #[allow(clippy::cast_precision_loss)]
            if at_ms >= burst.start_ms as f64 && at_ms < burst.end_ms as f64 {
                rate *= burst.factor.max(0.0);
            }
        }
        rate
    }

    /// The normalized tenant draw weights (shared with the batch mix
    /// generator, so streams and batches stress the same skew).
    #[must_use]
    pub fn tenant_weights(&self) -> Vec<f64> {
        TenantMixScenario {
            tenants: self.tenants,
            zipf_s: self.zipf_s,
            heavy_tenant: self.heavy_tenant,
            heavy_factor: self.heavy_factor,
            ..TenantMixScenario::default()
        }
        .weights()
    }

    /// Materializes the full arrival schedule in one deterministic pass:
    /// inter-arrival gaps are exponential at the instantaneous rate
    /// (inverse-CDF sampling, `-ln(1 - u) / λ`), tenants are drawn by
    /// inverse CDF over [`Self::tenant_weights`], and request parameters
    /// follow the paper's synthetic range. Equal scenarios produce
    /// byte-identical schedules regardless of thread count or platform.
    ///
    /// # Panics
    ///
    /// Panics when the scenario names zero tenants, a non-positive base
    /// rate, or an out-of-range heavy tenant.
    #[must_use]
    pub fn materialize(&self) -> Vec<Arrival> {
        assert!(self.tenants > 0, "a stream needs at least one tenant");
        assert!(
            self.base_rate_hz > 0.0 && self.base_rate_hz.is_finite(),
            "the base arrival rate must be positive and finite"
        );
        assert!(
            self.heavy_tenant.is_none_or(|heavy| heavy < self.tenants),
            "the heavy tenant must be one of the scenario's tenants"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let weights = self.tenant_weights();
        let deadline = Duration::from_millis(self.deadline_ms);
        #[allow(clippy::cast_precision_loss)]
        let horizon_ms = self.duration_ms as f64;
        let mut schedule = Vec::new();
        let mut at_ms = 0.0_f64;
        let mut id = 0_u64;
        loop {
            let rate = self.rate_at(at_ms);
            if rate <= 0.0 {
                // A zero-rate silence window (burst factor 0): skip to the
                // next burst boundary past the current instant.
                let next = self
                    .bursts
                    .iter()
                    .flat_map(|burst| [burst.start_ms, burst.end_ms])
                    .map(|ms| {
                        #[allow(clippy::cast_precision_loss)]
                        let ms = ms as f64;
                        ms
                    })
                    .filter(|&ms| ms > at_ms)
                    .fold(horizon_ms, f64::min);
                if next >= horizon_ms {
                    break;
                }
                at_ms = next;
                continue;
            }
            // Exponential inter-arrival gap in milliseconds at the current
            // instantaneous rate (thinning-free piecewise approximation:
            // bursts are long relative to a gap, so re-evaluating λ at each
            // arrival tracks the phase boundaries closely enough for a
            // load generator).
            let u: f64 = rng.gen_range(0.0..1.0);
            let gap_ms = -(1.0 - u).ln() / rate * 1_000.0;
            at_ms += gap_ms;
            if at_ms >= horizon_ms {
                break;
            }
            if self.rate_at(at_ms) <= 0.0 {
                // The gap crossed into a silence window: no arrival there;
                // the zero-rate branch above skips to the window's end.
                continue;
            }
            let tenant = draw_tenant(&weights, rng.gen_range(0.0..1.0));
            let template = generate_requests_in_range(1, 0.625, 1.0, &mut rng)
                .pop()
                .expect("one request was asked for");
            let request = DeploymentRequest::new(id, template.task_type, template.params);
            schedule.push(Arrival {
                id,
                at: Duration::from_nanos((at_ms * 1_000_000.0) as u64),
                tenant,
                deadline,
                request,
            });
            id += 1;
        }
        schedule
    }
}

/// Inverse-CDF draw over normalized weights.
fn draw_tenant(weights: &[f64], draw: f64) -> usize {
    let mut cumulative = 0.0;
    for (tenant, weight) in weights.iter().enumerate() {
        cumulative += weight;
        if draw < cumulative {
            return tenant;
        }
    }
    weights.len() - 1
}

/// An order-sensitive FNV-1a digest of a schedule: every arrival's id,
/// nanosecond offset, tenant and request parameter bits are folded in, so
/// two schedules fingerprint equal **iff** they are byte-identical. Used by
/// the determinism suite to pin schedules across thread counts and runs.
#[must_use]
pub fn schedule_fingerprint(schedule: &[Arrival]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut fold = |value: u64| {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    for arrival in schedule {
        fold(arrival.id);
        fold(u64::try_from(arrival.at.as_nanos()).expect("offsets fit in u64 nanoseconds"));
        fold(arrival.tenant as u64);
        fold(u64::try_from(arrival.deadline.as_nanos()).expect("deadlines fit in u64 nanoseconds"));
        fold(arrival.request.params.quality.to_bits());
        fold(arrival.request.params.cost.to_bits());
        fold(arrival.request.params.latency.to_bits());
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst_scenario() -> OpenLoopScenario {
        OpenLoopScenario {
            base_rate_hz: 800.0,
            duration_ms: 500,
            bursts: vec![BurstPhase {
                start_ms: 100,
                end_ms: 300,
                factor: 4.0,
            }],
            tenants: 4,
            zipf_s: 1.0,
            heavy_tenant: Some(0),
            heavy_factor: 5.0,
            deadline_ms: 50,
            seed: 7,
        }
    }

    #[test]
    fn schedules_are_sorted_increasing_and_bounded_by_the_horizon() {
        let scenario = burst_scenario();
        let schedule = scenario.materialize();
        assert!(!schedule.is_empty());
        for (i, arrival) in schedule.iter().enumerate() {
            assert_eq!(arrival.id, i as u64);
            assert_eq!(arrival.request.id.0, i as u64);
            assert!(arrival.tenant < scenario.tenants);
            assert_eq!(arrival.deadline, Duration::from_millis(50));
            assert!(arrival.at < Duration::from_millis(scenario.duration_ms));
        }
        for pair in schedule.windows(2) {
            assert!(pair[0].at <= pair[1].at, "arrivals are time-ordered");
        }
    }

    #[test]
    fn bursts_multiply_the_instantaneous_rate_and_the_arrival_mass() {
        let scenario = burst_scenario();
        assert!((scenario.rate_at(50.0) - 800.0).abs() < 1e-9);
        assert!((scenario.rate_at(150.0) - 3_200.0).abs() < 1e-9);
        assert!((scenario.rate_at(350.0) - 800.0).abs() < 1e-9);
        let schedule = scenario.materialize();
        let in_burst = schedule
            .iter()
            .filter(|a| a.at >= Duration::from_millis(100) && a.at < Duration::from_millis(300))
            .count();
        let outside = schedule.len() - in_burst;
        // The 200 ms burst at 4× carries far more arrivals than the 300 ms
        // of base-rate traffic around it (deterministic for the seed).
        assert!(
            in_burst > 2 * outside,
            "burst mass {in_burst} vs outside {outside}"
        );
    }

    #[test]
    fn a_zero_factor_burst_is_a_silence_window() {
        let scenario = OpenLoopScenario {
            bursts: vec![BurstPhase {
                start_ms: 200,
                end_ms: 800,
                factor: 0.0,
            }],
            duration_ms: 1_000,
            ..OpenLoopScenario::default()
        };
        let schedule = scenario.materialize();
        assert!(!schedule.is_empty());
        assert!(schedule
            .iter()
            .all(|a| a.at < Duration::from_millis(200) || a.at >= Duration::from_millis(800)));
    }

    #[test]
    fn the_heavy_tenant_dominates_the_stream() {
        let scenario = OpenLoopScenario {
            heavy_tenant: Some(2),
            heavy_factor: 10.0,
            zipf_s: 0.0,
            duration_ms: 2_000,
            ..OpenLoopScenario::default()
        };
        let schedule = scenario.materialize();
        let mut counts = vec![0_usize; scenario.tenants];
        for arrival in &schedule {
            counts[arrival.tenant] += 1;
        }
        for (tenant, &count) in counts.iter().enumerate() {
            if tenant != 2 {
                assert!(
                    counts[2] > 3 * count,
                    "heavy {} vs tenant {tenant} at {count}",
                    counts[2]
                );
            }
        }
    }

    #[test]
    fn equal_seeds_reproduce_the_schedule_and_new_seeds_move_it() {
        let scenario = burst_scenario();
        let a = scenario.materialize();
        let b = scenario.materialize();
        assert_eq!(a, b);
        assert_eq!(schedule_fingerprint(&a), schedule_fingerprint(&b));
        let moved = OpenLoopScenario {
            seed: 8,
            ..burst_scenario()
        }
        .materialize();
        assert_ne!(a, moved, "a new seed moves the whole schedule");
        assert_ne!(schedule_fingerprint(&a), schedule_fingerprint(&moved));
    }
}
