//! Top-k selection primitives.
//!
//! The workforce-requirement computation of the paper (§3.2) needs, for every
//! deployment request, the `k` smallest workforce values in a row of the
//! matrix `W` — either their sum (*sum-case*) or the `k`-th smallest value
//! (*max-case*). The paper suggests min-heaps for an `O(|S| log k)` bound;
//! this module provides exactly that plus a sort-based reference used in
//! tests and ablation benchmarks.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A float wrapper ordering NaN last so it can live inside a [`BinaryHeap`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Reusable working memory for [`k_smallest_indices_into`]: the bounded
/// selection heap and its drain buffer.
///
/// Row-at-a-time callers (the workforce-matrix aggregation walks `m` rows
/// with the same `k`) keep one scratch and pay for the heap allocation once
/// instead of per row. A fresh scratch and a reused one produce identical
/// selections.
#[derive(Debug, Clone, Default)]
pub struct TopKScratch {
    /// Max-heap of `(value, index)` keeping the `k` smallest seen so far.
    heap: BinaryHeap<(OrdF64, usize)>,
    /// Heap drain-and-sort buffer.
    sorted: Vec<(f64, usize)>,
    /// Per-list head cursors for [`merge_k_smallest_into`].
    heads: Vec<usize>,
}

impl TopKScratch {
    /// Creates an empty scratch; buffers grow to `k` on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Returns the indices of the `k` smallest values, ordered by ascending
/// value (ties broken by ascending index), using a bounded max-heap so the
/// cost is `O(n log k)` rather than `O(n log n)`.
///
/// Non-finite values (`NaN`, `±∞`) are skipped: in StratRec an infinite
/// workforce requirement means the strategy can never reach the requested
/// threshold, so it must not be recommended. If fewer than `k` finite values
/// exist, all of them are returned (callers detect the shortfall by length).
#[must_use]
pub fn k_smallest_indices(values: &[f64], k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    k_smallest_indices_into(values, k, &mut TopKScratch::new(), &mut out);
    out
}

/// [`k_smallest_indices`] writing the selection into a caller-provided
/// buffer (cleared first) and reusing `scratch` for the heap, so repeated
/// row selections allocate nothing in steady state.
pub fn k_smallest_indices_into(
    values: &[f64],
    k: usize,
    scratch: &mut TopKScratch,
    out: &mut Vec<usize>,
) {
    out.clear();
    if k == 0 {
        return;
    }
    let heap = &mut scratch.heap;
    heap.clear();
    for (idx, &value) in values.iter().enumerate() {
        if !value.is_finite() {
            continue;
        }
        if heap.len() < k {
            heap.push((OrdF64(value), idx));
        } else if let Some(&(OrdF64(worst), worst_idx)) = heap.peek() {
            if value < worst || (value == worst && idx < worst_idx) {
                heap.pop();
                heap.push((OrdF64(value), idx));
            }
        }
    }
    scratch.sorted.clear();
    scratch.sorted.extend(heap.drain().map(|(v, i)| (v.0, i)));
    scratch
        .sorted
        .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    out.extend(scratch.sorted.iter().map(|&(_, i)| i));
}

/// The row aggregates one fused [`k_smallest_aggregates_into`] pass yields
/// alongside the selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKAggregates {
    /// Sum of the `k` selected values, accumulated in ascending
    /// `(value, index)` order (the *sum-case* aggregation).
    pub sum: f64,
    /// The `k`-th smallest (= largest selected) value (the *max-case*
    /// aggregation).
    pub kth: f64,
}

/// Fused top-k selection + aggregation: fills `out` exactly like
/// [`k_smallest_indices_into`] and computes both row aggregates from the
/// same drained, sorted buffer — one pass over the row for selection, sum
/// and k-th value together. Returns `None` when `k == 0` or fewer than `k`
/// finite values exist (`out` then holds the shortfall selection).
///
/// This is **the** aggregation primitive: cold aggregation
/// (`WorkforceMatrix::aggregate`), cache priming and cache repair — for
/// either matrix precision — all route through it, so every path sums the
/// same values in the same order and is bit-identical by construction.
pub fn k_smallest_aggregates_into(
    values: &[f64],
    k: usize,
    scratch: &mut TopKScratch,
    out: &mut Vec<usize>,
) -> Option<TopKAggregates> {
    k_smallest_indices_into(values, k, scratch, out);
    if k == 0 || out.len() < k {
        return None;
    }
    let mut sum = 0.0;
    for &(value, _) in &scratch.sorted {
        sum += value;
    }
    let kth = scratch
        .sorted
        .last()
        .expect("k >= 1 so the selection is non-empty")
        .0;
    Some(TopKAggregates { sum, kth })
}

/// Shard-local top-k step of the two-level aggregation: selects the `k`
/// smallest finite values of `values` (a contiguous column sub-range
/// starting at global column `base`) exactly like
/// [`k_smallest_indices_into`] and writes the selection into `candidates`
/// (cleared first) as `(value, base + local_index)` pairs, ascending by
/// `(value, global index)`.
///
/// The output is one input list of [`merge_k_smallest_into`]: because the
/// sub-range is contiguous, ascending local index order *is* ascending
/// global index order, so shard-local tie-breaks agree with the flat path's
/// global tie-breaks by construction.
pub fn k_smallest_candidates_into(
    values: &[f64],
    base: usize,
    k: usize,
    scratch: &mut TopKScratch,
    candidates: &mut Vec<(f64, usize)>,
) {
    candidates.clear();
    if k == 0 {
        return;
    }
    let heap = &mut scratch.heap;
    heap.clear();
    for (idx, &value) in values.iter().enumerate() {
        if !value.is_finite() {
            continue;
        }
        if heap.len() < k {
            heap.push((OrdF64(value), idx));
        } else if let Some(&(OrdF64(worst), worst_idx)) = heap.peek() {
            if value < worst || (value == worst && idx < worst_idx) {
                heap.pop();
                heap.push((OrdF64(value), idx));
            }
        }
    }
    candidates.extend(heap.drain().map(|(v, i)| (v.0, base + i)));
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
}

/// K-way merge of shard-local top-k candidate lists into the global top-k
/// selection + aggregates — the second level of the two-level aggregation.
///
/// Each list must be ascending by `(value, global index)` with **finite**
/// values and pairwise-distinct indices across lists (what
/// [`k_smallest_candidates_into`] produces over disjoint contiguous
/// sub-ranges). The merge repeatedly takes the smallest head under the exact
/// flat-path comparator — `value.total_cmp` then ascending index — so the
/// selection written to `out`, the summation order (and therefore the `f64`
/// sum bit pattern) and the `k`-th value are **bit-identical** to
/// [`k_smallest_aggregates_into`] over the concatenation of the sub-ranges,
/// provided every list holds its sub-range's `k` smallest (a global top-k
/// member is necessarily in its own shard's top-k).
///
/// Returns `None` when `k == 0` or fewer than `k` candidates exist in total
/// (`out` then holds the shortfall selection, mirroring the flat path).
pub fn merge_k_smallest_into(
    lists: &[&[(f64, usize)]],
    k: usize,
    scratch: &mut TopKScratch,
    out: &mut Vec<usize>,
) -> Option<TopKAggregates> {
    out.clear();
    scratch.sorted.clear();
    if k == 0 {
        return None;
    }
    scratch.heads.clear();
    scratch.heads.resize(lists.len(), 0);
    while scratch.sorted.len() < k {
        let mut best: Option<(f64, usize, usize)> = None;
        for (list_idx, list) in lists.iter().enumerate() {
            let head = scratch.heads[list_idx];
            let Some(&(value, index)) = list.get(head) else {
                continue;
            };
            let better = best.is_none_or(|(best_value, best_index, _)| {
                value.total_cmp(&best_value).then(index.cmp(&best_index)) == Ordering::Less
            });
            if better {
                best = Some((value, index, list_idx));
            }
        }
        let Some((value, index, list_idx)) = best else {
            break;
        };
        scratch.heads[list_idx] += 1;
        scratch.sorted.push((value, index));
    }
    out.extend(scratch.sorted.iter().map(|&(_, i)| i));
    if out.len() < k {
        return None;
    }
    let mut sum = 0.0;
    for &(value, _) in &scratch.sorted {
        sum += value;
    }
    let kth = scratch
        .sorted
        .last()
        .expect("k >= 1 so the selection is non-empty")
        .0;
    Some(TopKAggregates { sum, kth })
}

/// Sort-based reference implementation of [`k_smallest_indices`], `O(n log n)`.
///
/// Exists for differential testing and for the ablation benchmark comparing
/// heap-based selection against a full sort.
#[must_use]
pub fn k_smallest_indices_by_sort(values: &[f64], k: usize) -> Vec<usize> {
    let mut indexed: Vec<(f64, usize)> = values
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, v)| v.is_finite())
        .map(|(i, v)| (v, i))
        .collect();
    indexed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    indexed.truncate(k);
    indexed.into_iter().map(|(_, i)| i).collect()
}

/// Sum of the `k` smallest finite values (the paper's *sum-case* aggregation).
/// Returns `None` when fewer than `k` finite values exist; summing zero
/// values is well-defined, so `k == 0` yields `Some(0.0)`.
#[must_use]
pub fn sum_of_k_smallest(values: &[f64], k: usize) -> Option<f64> {
    if k == 0 {
        return Some(0.0);
    }
    k_smallest_aggregates_into(values, k, &mut TopKScratch::new(), &mut Vec::new())
        .map(|aggregates| aggregates.sum)
}

/// The `k`-th smallest finite value (the paper's *max-case* aggregation).
/// Returns `None` when fewer than `k` finite values exist (there is no
/// 0-th smallest value).
#[must_use]
pub fn kth_smallest(values: &[f64], k: usize) -> Option<f64> {
    k_smallest_aggregates_into(values, k, &mut TopKScratch::new(), &mut Vec::new())
        .map(|aggregates| aggregates.kth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn k_zero_returns_empty() {
        assert!(k_smallest_indices(&[1.0, 2.0], 0).is_empty());
        assert_eq!(sum_of_k_smallest(&[1.0], 0), Some(0.0));
        assert_eq!(kth_smallest(&[1.0], 0), None);
    }

    #[test]
    fn selects_smallest_in_order() {
        let values = [0.5, 0.1, 0.9, 0.3, 0.2];
        assert_eq!(k_smallest_indices(&values, 3), vec![1, 4, 3]);
    }

    #[test]
    fn skips_non_finite_values() {
        let values = [f64::NAN, 0.4, f64::INFINITY, 0.2];
        assert_eq!(k_smallest_indices(&values, 2), vec![3, 1]);
        assert_eq!(k_smallest_indices(&values, 4), vec![3, 1]);
    }

    #[test]
    fn sum_and_kth_match_manual_computation() {
        let values = [0.5, 0.1, 0.9, 0.3, 0.2];
        assert!((sum_of_k_smallest(&values, 3).unwrap() - 0.6).abs() < 1e-12);
        assert!((kth_smallest(&values, 3).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn shortfall_is_signalled() {
        let values = [0.5, f64::INFINITY];
        assert_eq!(sum_of_k_smallest(&values, 2), None);
        assert_eq!(kth_smallest(&values, 2), None);
        assert_eq!(k_smallest_indices(&values, 2), vec![0]);
    }

    #[test]
    fn ties_are_broken_by_index() {
        let values = [0.3, 0.3, 0.3];
        assert_eq!(k_smallest_indices(&values, 2), vec![0, 1]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_selection() {
        let mut scratch = TopKScratch::new();
        let mut out = Vec::new();
        let rows: [&[f64]; 4] = [
            &[0.5, 0.1, 0.9, 0.3, 0.2],
            &[f64::INFINITY, 0.4, f64::NAN, 0.2],
            &[],
            &[0.3, 0.3, 0.3],
        ];
        for row in rows {
            for k in 0..5 {
                k_smallest_indices_into(row, k, &mut scratch, &mut out);
                assert_eq!(out, k_smallest_indices(row, k), "k = {k}, row {row:?}");
            }
        }
    }

    #[test]
    fn fused_aggregates_match_the_split_primitives() {
        let mut scratch = TopKScratch::new();
        let mut out = Vec::new();
        let rows: [&[f64]; 5] = [
            &[0.5, 0.1, 0.9, 0.3, 0.2],
            &[f64::INFINITY, 0.4, f64::NAN, 0.2],
            &[],
            &[0.3, 0.3, 0.3],
            &[0.5, f64::INFINITY],
        ];
        for row in rows {
            for k in 0..5 {
                let fused = k_smallest_aggregates_into(row, k, &mut scratch, &mut out);
                assert_eq!(out, k_smallest_indices(row, k), "k = {k}, row {row:?}");
                match fused {
                    None => {
                        assert!(k == 0 || out.len() < k, "k = {k}, row {row:?}");
                        if k > 0 {
                            assert_eq!(sum_of_k_smallest(row, k), None);
                        }
                        assert_eq!(kth_smallest(row, k), None);
                    }
                    Some(aggregates) => {
                        let sum: f64 = out.iter().map(|&i| row[i]).sum();
                        assert_eq!(aggregates.sum.to_bits(), sum.to_bits());
                        assert_eq!(
                            aggregates.kth.to_bits(),
                            row[*out.last().unwrap()].to_bits()
                        );
                    }
                }
            }
        }
    }

    /// Splits `values` into `shards` contiguous sub-ranges and produces the
    /// per-shard candidate lists the two-level aggregation feeds the merge.
    fn shard_candidates(values: &[f64], shards: usize, k: usize) -> Vec<Vec<(f64, usize)>> {
        let mut scratch = TopKScratch::new();
        let per_shard = values.len().div_ceil(shards.max(1)).max(1);
        let mut lists = Vec::new();
        let mut base = 0;
        while base < values.len() {
            let hi = (base + per_shard).min(values.len());
            let mut candidates = Vec::new();
            k_smallest_candidates_into(&values[base..hi], base, k, &mut scratch, &mut candidates);
            lists.push(candidates);
            base = hi;
        }
        lists
    }

    #[test]
    fn merge_matches_flat_on_a_fixed_example() {
        let values = [0.5, 0.1, 0.9, 0.3, 0.2, 0.3, f64::INFINITY, 0.05];
        for shards in 1..=4 {
            let lists = shard_candidates(&values, shards, 3);
            let refs: Vec<&[(f64, usize)]> = lists.iter().map(Vec::as_slice).collect();
            let mut scratch = TopKScratch::new();
            let mut out = Vec::new();
            let merged = merge_k_smallest_into(&refs, 3, &mut scratch, &mut out).unwrap();
            assert_eq!(out, vec![7, 1, 4], "{shards} shards");
            assert_eq!(merged.kth.to_bits(), 0.2_f64.to_bits(), "{shards} shards");
            let flat =
                k_smallest_aggregates_into(&values, 3, &mut TopKScratch::new(), &mut Vec::new())
                    .unwrap();
            assert_eq!(merged.sum.to_bits(), flat.sum.to_bits(), "{shards} shards");
        }
    }

    #[test]
    fn merge_breaks_cross_shard_ties_by_global_index() {
        // Equal values in different shards: the flat path picks the lower
        // global index, and so must the merge.
        let values = [0.3, 0.3, 0.3, 0.3];
        let lists = shard_candidates(&values, 2, 2);
        let refs: Vec<&[(f64, usize)]> = lists.iter().map(Vec::as_slice).collect();
        let mut scratch = TopKScratch::new();
        let mut out = Vec::new();
        merge_k_smallest_into(&refs, 2, &mut scratch, &mut out).unwrap();
        assert_eq!(out, k_smallest_indices(&values, 2));
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn merge_signals_shortfall_like_the_flat_path() {
        let values = [0.5, f64::INFINITY, f64::NAN, 0.2];
        let lists = shard_candidates(&values, 2, 3);
        let refs: Vec<&[(f64, usize)]> = lists.iter().map(Vec::as_slice).collect();
        let mut scratch = TopKScratch::new();
        let mut out = Vec::new();
        assert_eq!(
            merge_k_smallest_into(&refs, 3, &mut scratch, &mut out),
            None
        );
        assert_eq!(out, k_smallest_indices(&values, 3));
        assert_eq!(merge_k_smallest_into(&[], 1, &mut scratch, &mut out), None);
        assert!(out.is_empty());
        assert_eq!(
            merge_k_smallest_into(&refs, 0, &mut scratch, &mut out),
            None
        );
        assert!(out.is_empty());
    }

    proptest! {
        #[test]
        fn merge_is_bit_identical_to_the_flat_aggregation(
            raw in proptest::collection::vec((-1e3_f64..1e3, 0.0_f64..1.0), 0..64),
            shards in 1_usize..9,
            k in 0_usize..12,
        ) {
            // Mix in infinite cells (infeasible slots) and repeated values
            // (cross-shard ties) so the tie-break and shortfall paths are
            // genuinely exercised.
            let values: Vec<f64> = raw
                .iter()
                .map(|&(value, kind)| {
                    if kind < 0.15 {
                        f64::INFINITY
                    } else if kind < 0.35 {
                        0.25
                    } else {
                        value
                    }
                })
                .collect();
            let mut flat_scratch = TopKScratch::new();
            let mut flat_out = Vec::new();
            let flat =
                k_smallest_aggregates_into(&values, k, &mut flat_scratch, &mut flat_out);
            let lists = shard_candidates(&values, shards, k);
            let refs: Vec<&[(f64, usize)]> = lists.iter().map(Vec::as_slice).collect();
            let mut scratch = TopKScratch::new();
            let mut out = Vec::new();
            let merged = merge_k_smallest_into(&refs, k, &mut scratch, &mut out);
            prop_assert_eq!(&out, &flat_out, "selection diverged");
            match (merged, flat) {
                (None, None) => {}
                (Some(m), Some(f)) => {
                    prop_assert_eq!(m.sum.to_bits(), f.sum.to_bits(), "sum bits diverged");
                    prop_assert_eq!(m.kth.to_bits(), f.kth.to_bits(), "kth bits diverged");
                }
                (m, f) => prop_assert!(false, "feasibility diverged: {:?} vs {:?}", m, f),
            }
        }

        #[test]
        fn heap_matches_sort_reference(
            values in proptest::collection::vec(-1e3_f64..1e3, 0..64),
            k in 0_usize..20,
        ) {
            prop_assert_eq!(
                k_smallest_indices(&values, k),
                k_smallest_indices_by_sort(&values, k)
            );
        }

        #[test]
        fn returned_values_are_ascending(
            values in proptest::collection::vec(0.0_f64..1.0, 0..64),
            k in 1_usize..10,
        ) {
            let idx = k_smallest_indices(&values, k);
            for pair in idx.windows(2) {
                prop_assert!(values[pair[0]] <= values[pair[1]]);
            }
        }

        #[test]
        fn kth_smallest_is_max_of_selection(
            values in proptest::collection::vec(0.0_f64..1.0, 1..64),
            k in 1_usize..10,
        ) {
            if let Some(kth) = kth_smallest(&values, k) {
                let idx = k_smallest_indices(&values, k);
                let max = idx.iter().map(|&i| values[i]).fold(f64::MIN, f64::max);
                prop_assert!((kth - max).abs() < 1e-12);
            }
        }
    }
}
