//! Ordinary-least-squares linear regression.
//!
//! Section 3.1 of the paper models every deployment parameter as a linear
//! function of worker availability, `param = α·w + β` (Equation 4), with the
//! `(α, β)` pairs fitted from historical deployments and reported with 90 %
//! confidence intervals (Table 6). This module provides the OLS fit, the
//! coefficient of determination, standard errors and confidence intervals
//! needed to reproduce that table from simulated deployments.

use serde::{Deserialize, Serialize};

use crate::stats;

/// Result of fitting `y = slope · x + intercept` by ordinary least squares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope (the paper's `α`).
    pub slope: f64,
    /// Fitted intercept (the paper's `β`).
    pub intercept: f64,
    /// Coefficient of determination `R²` in `[0, 1]` (1 for a perfect fit).
    pub r_squared: f64,
    /// Standard error of the slope estimate.
    pub slope_stderr: f64,
    /// Standard error of the intercept estimate.
    pub intercept_stderr: f64,
    /// Number of observations used in the fit.
    pub n: usize,
}

impl LinearFit {
    /// Predicts `y` for a given `x` using the fitted line.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Inverts the fitted line: returns the `x` achieving a given `y`.
    ///
    /// Returns `None` when the slope is (numerically) zero, in which case no
    /// finite `x` reaches a `y` different from the intercept. This is exactly
    /// the inversion used in §3.2 to turn a deployment threshold into a
    /// workforce requirement.
    #[must_use]
    pub fn invert(&self, y: f64) -> Option<f64> {
        if self.slope.abs() <= 1e-12 {
            None
        } else {
            Some((y - self.intercept) / self.slope)
        }
    }

    /// Two-sided confidence interval for the slope at the given confidence
    /// level (e.g. `0.90` for the paper's 90 % intervals).
    #[must_use]
    pub fn slope_confidence_interval(&self, level: f64) -> (f64, f64) {
        let dof = self.n.saturating_sub(2);
        let t = stats::t_critical_two_sided(dof, level);
        (
            self.slope - t * self.slope_stderr,
            self.slope + t * self.slope_stderr,
        )
    }

    /// Two-sided confidence interval for the intercept at the given level.
    #[must_use]
    pub fn intercept_confidence_interval(&self, level: f64) -> (f64, f64) {
        let dof = self.n.saturating_sub(2);
        let t = stats::t_critical_two_sided(dof, level);
        (
            self.intercept - t * self.intercept_stderr,
            self.intercept + t * self.intercept_stderr,
        )
    }

    /// Returns `true` when the point `(slope, intercept)` of another fit lies
    /// inside this fit's confidence box at the given level. Used by the
    /// simulated Table 6 experiment to check that re-estimated parameters are
    /// statistically compatible with the generating ones.
    #[must_use]
    pub fn contains_at_confidence(&self, slope: f64, intercept: f64, level: f64) -> bool {
        let (slo, shi) = self.slope_confidence_interval(level);
        let (ilo, ihi) = self.intercept_confidence_interval(level);
        slope >= slo && slope <= shi && intercept >= ilo && intercept <= ihi
    }
}

/// Fits `y = slope·x + intercept` by ordinary least squares.
///
/// Returns `None` when fewer than two points are supplied, when the lengths
/// differ, or when all `x` values are identical (the slope is then
/// unidentifiable).
#[must_use]
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;

    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx <= 1e-15 {
        return None;
    }

    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    // Residual sum of squares and derived quantities.
    let mut rss = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let resid = y - (slope * x + intercept);
        rss += resid * resid;
    }
    let r_squared = if syy <= 1e-15 {
        1.0
    } else {
        (1.0 - rss / syy).clamp(0.0, 1.0)
    };

    let dof = (xs.len().saturating_sub(2)) as f64;
    let residual_variance = if dof > 0.0 { rss / dof } else { 0.0 };
    let slope_stderr = (residual_variance / sxx).sqrt();
    let intercept_stderr = (residual_variance * (1.0 / n + mean_x * mean_x / sxx)).sqrt();

    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        slope_stderr,
        intercept_stderr,
        n: xs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(fit_linear(&[], &[]).is_none());
        assert!(fit_linear(&[1.0], &[2.0]).is_none());
        assert!(fit_linear(&[1.0, 2.0], &[1.0]).is_none());
        assert!(fit_linear(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn recovers_exact_line() {
        let xs = [0.0, 0.25, 0.5, 0.75, 1.0];
        let ys: Vec<f64> = xs.iter().map(|x| 0.09 * x + 0.85).collect();
        let fit = fit_linear(&xs, &ys).unwrap();
        assert!((fit.slope - 0.09).abs() < 1e-10);
        assert!((fit.intercept - 0.85).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-10);
        assert!(fit.slope_stderr < 1e-8);
    }

    #[test]
    fn predict_and_invert_are_inverse() {
        let xs = [0.1, 0.4, 0.6, 0.9];
        let ys: Vec<f64> = xs.iter().map(|x| -0.98 * x + 1.40).collect();
        let fit = fit_linear(&xs, &ys).unwrap();
        let y = fit.predict(0.5);
        let x = fit.invert(y).unwrap();
        assert!((x - 0.5).abs() < 1e-9);
    }

    #[test]
    fn invert_of_flat_line_is_none() {
        let fit = fit_linear(&[0.0, 0.5, 1.0], &[0.7, 0.7, 0.7]).unwrap();
        assert_eq!(fit.invert(0.9), None);
    }

    #[test]
    fn confidence_interval_contains_true_parameters_for_noiseless_data() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 19.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 * x + 0.0).collect();
        let fit = fit_linear(&xs, &ys).unwrap();
        assert!(fit.contains_at_confidence(1.0, 0.0, 0.90));
        let (lo, hi) = fit.slope_confidence_interval(0.90);
        assert!(lo <= 1.0 && 1.0 <= hi);
    }

    #[test]
    fn r_squared_degrades_with_noise() {
        // Deterministic pseudo-noise so the test is stable.
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 49.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 0.5 * x + 0.2 + if i % 2 == 0 { 0.05 } else { -0.05 })
            .collect();
        let fit = fit_linear(&xs, &ys).unwrap();
        assert!(fit.r_squared > 0.5);
        assert!(fit.r_squared < 1.0);
    }

    proptest! {
        #[test]
        fn fit_recovers_generating_line(
            slope in -2.0_f64..2.0,
            intercept in -1.0_f64..1.0,
        ) {
            let xs: Vec<f64> = (0..10).map(|i| i as f64 / 9.0).collect();
            let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
            let fit = fit_linear(&xs, &ys).unwrap();
            prop_assert!((fit.slope - slope).abs() < 1e-6);
            prop_assert!((fit.intercept - intercept).abs() < 1e-6);
        }

        #[test]
        fn r_squared_is_bounded(
            ys in proptest::collection::vec(0.0_f64..1.0, 3..30),
        ) {
            let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
            if let Some(fit) = fit_linear(&xs, &ys) {
                prop_assert!((0.0..=1.0).contains(&fit.r_squared));
            }
        }
    }
}
