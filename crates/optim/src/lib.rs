//! Discrete-optimization and statistics substrate for StratRec.
//!
//! The StratRec paper grounds its algorithms in two classical toolboxes:
//!
//! * **Discrete optimization** — the batch-deployment problem reduces to a
//!   0/1 knapsack (Theorem 1 of the paper), and the `BatchStrat` algorithm is
//!   a greedy knapsack approximation. This crate provides reference knapsack
//!   solvers ([`knapsack`]) used both by the core library and by the test
//!   suite to verify approximation guarantees, plus the top-k selection
//!   primitives ([`topk`]) used when aggregating workforce requirements.
//! * **Statistics** — the real-data experiments of the paper fit linear
//!   models between worker availability and deployment parameters
//!   ([`regression`]) and report statistical significance of the comparisons
//!   ([`stats`]). The same routines drive the simulated experiments in
//!   `stratrec-platform`.
//!
//! Everything here is dependency-light, deterministic and fully unit /
//! property tested; the crate has no knowledge of crowdsourcing concepts and
//! can be reused on plain numeric data.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod knapsack;
pub mod regression;
pub mod stats;
pub mod topk;

pub use distributions::DiscreteDistribution;
pub use knapsack::{KnapsackItem, KnapsackSolution};
pub use regression::LinearFit;
pub use stats::Summary;
