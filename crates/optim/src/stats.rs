//! Descriptive statistics and significance tests.
//!
//! The paper's experimental claims are statistical: worker availability
//! "varies over time (standard error bars added)", the linear relationship
//! holds "with 90 % statistical significance", and StratRec-guided
//! deployments beat unguided ones "with statistical significance". This
//! module supplies the machinery those claims rest on: summary statistics,
//! standard errors, Student-t critical values and paired / two-sample t
//! tests, all without external dependencies.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample variance (Bessel-corrected; 0 for n < 2).
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// Minimum observation (`NaN` for empty samples).
    pub min: f64,
    /// Maximum observation (`NaN` for empty samples).
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over a slice. Empty slices produce a
    /// summary with `n = 0`, zero mean/variance and `NaN` extrema.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Self {
                n: 0,
                mean: 0.0,
                variance: 0.0,
                std_dev: 0.0,
                std_err: 0.0,
                min: f64::NAN,
                max: f64::NAN,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let variance = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n as f64 - 1.0)
        };
        let std_dev = variance.sqrt();
        let std_err = std_dev / (n as f64).sqrt();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            variance,
            std_dev,
            std_err,
            min,
            max,
        }
    }

    /// Symmetric confidence interval around the mean at the given level,
    /// using the Student-t distribution with `n - 1` degrees of freedom.
    #[must_use]
    pub fn confidence_interval(&self, level: f64) -> (f64, f64) {
        if self.n < 2 {
            return (self.mean, self.mean);
        }
        let t = t_critical_two_sided(self.n - 1, level);
        (self.mean - t * self.std_err, self.mean + t * self.std_err)
    }
}

/// Outcome of a t test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TTest {
    /// The t statistic.
    pub t_statistic: f64,
    /// Degrees of freedom used for the critical value.
    pub degrees_of_freedom: usize,
    /// Two-sided p-value (approximate).
    pub p_value: f64,
    /// Difference of means (first sample minus second / paired differences).
    pub mean_difference: f64,
}

impl TTest {
    /// Whether the difference is significant at the given two-sided level
    /// (e.g. `0.05`).
    #[must_use]
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Paired t test over two samples of equal length (e.g. the mirrored
/// with/without-StratRec deployments of §5.1.2). Returns `None` for
/// mismatched lengths or fewer than two pairs.
#[must_use]
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Option<TTest> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let summary = Summary::of(&diffs);
    if summary.std_err <= 1e-15 {
        // Identical pairs: define t as 0 (no evidence of a difference) unless
        // the mean difference itself is non-zero, which with zero variance is
        // infinitely significant.
        let p = if summary.mean.abs() <= 1e-15 {
            1.0
        } else {
            0.0
        };
        return Some(TTest {
            t_statistic: if p == 0.0 { f64::INFINITY } else { 0.0 },
            degrees_of_freedom: a.len() - 1,
            p_value: p,
            mean_difference: summary.mean,
        });
    }
    let t = summary.mean / summary.std_err;
    let dof = a.len() - 1;
    Some(TTest {
        t_statistic: t,
        degrees_of_freedom: dof,
        p_value: two_sided_p_value(t, dof),
        mean_difference: summary.mean,
    })
}

/// Welch's two-sample t test (unequal variances). Returns `None` when either
/// sample has fewer than two observations.
#[must_use]
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TTest> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let sa = Summary::of(a);
    let sb = Summary::of(b);
    let va = sa.variance / sa.n as f64;
    let vb = sb.variance / sb.n as f64;
    let pooled = va + vb;
    if pooled <= 1e-15 {
        let diff = sa.mean - sb.mean;
        let p = if diff.abs() <= 1e-15 { 1.0 } else { 0.0 };
        return Some(TTest {
            t_statistic: if p == 0.0 { f64::INFINITY } else { 0.0 },
            degrees_of_freedom: (sa.n + sb.n).saturating_sub(2),
            p_value: p,
            mean_difference: diff,
        });
    }
    let t = (sa.mean - sb.mean) / pooled.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let dof_num = pooled * pooled;
    let dof_den = va * va / (sa.n as f64 - 1.0) + vb * vb / (sb.n as f64 - 1.0);
    let dof = if dof_den <= 1e-300 {
        (sa.n + sb.n).saturating_sub(2)
    } else {
        (dof_num / dof_den).floor().max(1.0) as usize
    };
    Some(TTest {
        t_statistic: t,
        degrees_of_freedom: dof,
        p_value: two_sided_p_value(t, dof),
        mean_difference: sa.mean - sb.mean,
    })
}

/// Two-sided p-value for a t statistic with the given degrees of freedom.
#[must_use]
pub fn two_sided_p_value(t: f64, dof: usize) -> f64 {
    (2.0 * (1.0 - student_t_cdf(t.abs(), dof))).clamp(0.0, 1.0)
}

/// Critical value `t*` such that `P(|T| <= t*) = level` for a Student-t
/// distribution with `dof` degrees of freedom. `dof == 0` falls back to the
/// normal quantile.
#[must_use]
pub fn t_critical_two_sided(dof: usize, level: f64) -> f64 {
    let level = level.clamp(0.0, 0.999_999);
    let target = 0.5 + level / 2.0;
    // Monotone bisection on the CDF; the CDF is cheap so 80 iterations give
    // ~1e-12 accuracy over the bracket.
    let mut lo = 0.0_f64;
    let mut hi = 1e3_f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, dof) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// CDF of the Student-t distribution with `dof` degrees of freedom, via the
/// regularized incomplete beta function. `dof == 0` uses the standard normal.
#[must_use]
pub fn student_t_cdf(t: f64, dof: usize) -> f64 {
    if dof == 0 {
        return standard_normal_cdf(t);
    }
    let v = dof as f64;
    let x = v / (v + t * t);
    let p = 0.5 * regularized_incomplete_beta(0.5 * v, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// CDF of the standard normal distribution (Abramowitz–Stegun 7.1.26 via
/// `erf`).
#[must_use]
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz–Stegun 7.1.26, |error| ≤ 1.5e-7).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Numerical Recipes style).
#[must_use]
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural logarithm of the gamma function (Lanczos approximation).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(s.min.is_nan());
        assert!(s.max.is_nan());
    }

    #[test]
    fn summary_matches_manual_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.min - 2.0).abs() < 1e-12);
        assert!((s.max - 9.0).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn t_cdf_approaches_normal_for_large_dof() {
        let t = 1.5;
        let diff = (student_t_cdf(t, 10_000) - standard_normal_cdf(t)).abs();
        assert!(diff < 1e-3);
    }

    #[test]
    fn t_critical_matches_tables() {
        // Classical table values: t_{0.975, 10} ≈ 2.228, t_{0.95, 20} ≈ 1.725.
        assert!((t_critical_two_sided(10, 0.95) - 2.228).abs() < 0.01);
        assert!((t_critical_two_sided(20, 0.90) - 1.725).abs() < 0.01);
        assert!((t_critical_two_sided(0, 0.95) - 1.96).abs() < 0.01);
    }

    #[test]
    fn paired_t_test_detects_obvious_shift() {
        let a = [0.80, 0.82, 0.79, 0.85, 0.81, 0.83];
        let b = [0.60, 0.63, 0.61, 0.66, 0.62, 0.64];
        let test = paired_t_test(&a, &b).unwrap();
        assert!(test.mean_difference > 0.15);
        assert!(test.significant_at(0.05));
    }

    #[test]
    fn paired_t_test_on_identical_samples_is_not_significant() {
        let a = [0.5, 0.6, 0.7];
        let test = paired_t_test(&a, &a).unwrap();
        assert!(!test.significant_at(0.05));
        assert_eq!(test.p_value, 1.0);
    }

    #[test]
    fn paired_t_test_rejects_mismatched_lengths() {
        assert!(paired_t_test(&[1.0, 2.0], &[1.0]).is_none());
        assert!(paired_t_test(&[1.0], &[1.0]).is_none());
    }

    #[test]
    fn welch_test_detects_difference() {
        let a = [1.0, 1.1, 0.9, 1.05, 0.95];
        let b = [2.0, 2.1, 1.9, 2.05, 1.95];
        let test = welch_t_test(&a, &b).unwrap();
        assert!(test.significant_at(0.01));
        assert!(test.mean_difference < 0.0);
    }

    #[test]
    fn welch_test_identical_constant_samples() {
        let a = [0.4, 0.4, 0.4];
        let test = welch_t_test(&a, &a).unwrap();
        assert_eq!(test.p_value, 1.0);
    }

    #[test]
    fn confidence_interval_brackets_mean() {
        let s = Summary::of(&[0.7, 0.72, 0.69, 0.71, 0.73]);
        let (lo, hi) = s.confidence_interval(0.90);
        assert!(lo < s.mean && s.mean < hi);
        let (lo95, hi95) = s.confidence_interval(0.95);
        assert!(lo95 <= lo && hi <= hi95);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone(dof in 1_usize..50, a in -5.0_f64..5.0, b in -5.0_f64..5.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(student_t_cdf(lo, dof) <= student_t_cdf(hi, dof) + 1e-12);
        }

        #[test]
        fn p_values_are_probabilities(
            a in proptest::collection::vec(0.0_f64..1.0, 2..20),
            b in proptest::collection::vec(0.0_f64..1.0, 2..20),
        ) {
            if let Some(test) = welch_t_test(&a, &b) {
                prop_assert!((0.0..=1.0).contains(&test.p_value));
            }
        }

        #[test]
        fn summary_mean_is_bounded_by_extrema(
            values in proptest::collection::vec(-100.0_f64..100.0, 1..50),
        ) {
            let s = Summary::of(&values);
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.variance >= 0.0);
        }
    }
}
