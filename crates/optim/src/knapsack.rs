//! 0/1 knapsack solvers.
//!
//! The pay-off maximization variant of batch deployment recommendation is
//! NP-hard by reduction from 0/1 knapsack (paper, Theorem 1), and
//! `BatchStrat-PayOff` is the classical greedy ½-approximation (Ibarra &
//! Kim / Lawler). This module provides three interchangeable solvers over
//! real-valued weights and values:
//!
//! * [`solve_brute_force`] — exact, exponential; the ground truth used by the
//!   paper's `Brute Force` baseline and by our property tests.
//! * [`solve_greedy_half_approx`] — the greedy density ordering with the
//!   "better of prefix or breaking item" fix-up, guaranteeing ½·OPT.
//! * [`solve_greedy_density`] — plain greedy density ordering *without* the
//!   fix-up; this is the paper's `BaselineG` and carries no guarantee.

use serde::{Deserialize, Serialize};

/// A candidate item for the knapsack: `weight` consumed against the capacity
/// and `value` contributed to the objective.
///
/// Both quantities are non-negative reals; in StratRec the weight is a
/// workforce requirement in `[0, 1]` and the value is either `1`
/// (throughput) or the request's cost budget (pay-off).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnapsackItem {
    /// Capacity consumed when the item is selected.
    pub weight: f64,
    /// Objective contribution when the item is selected.
    pub value: f64,
}

impl KnapsackItem {
    /// Creates a new item. Negative weights or values are clamped to zero so
    /// that malformed inputs degrade gracefully instead of corrupting the
    /// greedy ordering.
    #[must_use]
    pub fn new(weight: f64, value: f64) -> Self {
        Self {
            weight: weight.max(0.0),
            value: value.max(0.0),
        }
    }

    /// Value density (`value / weight`). Zero-weight items have infinite
    /// density and therefore sort first in greedy orderings.
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.weight <= f64::EPSILON {
            f64::INFINITY
        } else {
            self.value / self.weight
        }
    }
}

/// The result of a knapsack solver: which items were chosen and the totals.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct KnapsackSolution {
    /// Indices (into the input slice) of the selected items, in ascending
    /// order.
    pub selected: Vec<usize>,
    /// Sum of the values of the selected items.
    pub total_value: f64,
    /// Sum of the weights of the selected items.
    pub total_weight: f64,
}

impl KnapsackSolution {
    fn from_indices(items: &[KnapsackItem], mut selected: Vec<usize>) -> Self {
        selected.sort_unstable();
        let total_value = selected.iter().map(|&i| items[i].value).sum();
        let total_weight = selected.iter().map(|&i| items[i].weight).sum();
        Self {
            selected,
            total_value,
            total_weight,
        }
    }

    /// Returns `true` when no item was selected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }
}

/// Exact solver.
///
/// Uses plain subset enumeration up to 20 items and a meet-in-the-middle
/// split (exact, `O(2^{n/2} · n)`) up to 40 items, which covers the paper's
/// brute-force comparisons (`m ≤ 30`). Instances beyond 40 items fall back to
/// the greedy ½-approximation instead of exhausting memory.
#[must_use]
pub fn solve_brute_force(items: &[KnapsackItem], capacity: f64) -> KnapsackSolution {
    match items.len() {
        0..=20 => solve_enumerate(items, capacity),
        21..=40 => solve_meet_in_the_middle(items, capacity),
        _ => solve_greedy_half_approx(items, capacity),
    }
}

fn solve_enumerate(items: &[KnapsackItem], capacity: f64) -> KnapsackSolution {
    let n = items.len();
    let mut best: Option<(f64, u64)> = None;
    for mask in 0_u64..(1_u64 << n) {
        let mut weight = 0.0;
        let mut value = 0.0;
        for (i, item) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                weight += item.weight;
                value += item.value;
            }
        }
        if weight <= capacity + 1e-12 {
            let better = match best {
                None => true,
                Some((best_value, _)) => value > best_value + 1e-12,
            };
            if better {
                best = Some((value, mask));
            }
        }
    }
    let (_, mask) = best.unwrap_or((0.0, 0));
    let selected = (0..n).filter(|i| mask & (1 << i) != 0).collect();
    KnapsackSolution::from_indices(items, selected)
}

/// Meet-in-the-middle exact search: enumerate each half, keep the Pareto
/// frontier of the second half sorted by weight, and match every first-half
/// subset with the best-compatible second-half subset.
fn solve_meet_in_the_middle(items: &[KnapsackItem], capacity: f64) -> KnapsackSolution {
    let (left, right) = items.split_at(items.len() / 2);
    let enumerate_half = |half: &[KnapsackItem]| -> Vec<(f64, f64, u64)> {
        let n = half.len();
        let mut subsets = Vec::with_capacity(1 << n);
        for mask in 0_u64..(1_u64 << n) {
            let mut weight = 0.0;
            let mut value = 0.0;
            for (i, item) in half.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    weight += item.weight;
                    value += item.value;
                }
            }
            if weight <= capacity + 1e-12 {
                subsets.push((weight, value, mask));
            }
        }
        subsets
    };

    let left_subsets = enumerate_half(left);
    let mut right_subsets = enumerate_half(right);
    // Sort by weight and turn values into a running maximum so a binary
    // search by remaining capacity immediately yields the best completion.
    right_subsets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut best_so_far = f64::NEG_INFINITY;
    let mut right_best: Vec<(f64, f64, u64)> = Vec::with_capacity(right_subsets.len());
    for (weight, value, mask) in right_subsets {
        if value > best_so_far {
            best_so_far = value;
            right_best.push((weight, value, mask));
        } else {
            right_best.push((weight, best_so_far, right_best.last().expect("non-empty").2));
        }
    }

    let mut best: Option<(f64, u64, u64)> = None;
    for &(weight, value, left_mask) in &left_subsets {
        let remaining = capacity - weight;
        // Largest right subset weight ≤ remaining.
        let idx = right_best.partition_point(|&(w, _, _)| w <= remaining + 1e-12);
        if idx == 0 {
            continue;
        }
        let (_, right_value, right_mask) = right_best[idx - 1];
        let total = value + right_value;
        let better = match best {
            None => true,
            Some((best_value, _, _)) => total > best_value + 1e-12,
        };
        if better {
            best = Some((total, left_mask, right_mask));
        }
    }

    let (_, left_mask, right_mask) = best.unwrap_or((0.0, 0, 0));
    let mut selected: Vec<usize> = (0..left.len())
        .filter(|i| left_mask & (1 << i) != 0)
        .collect();
    selected.extend(
        (0..right.len())
            .filter(|i| right_mask & (1 << i) != 0)
            .map(|i| i + left.len()),
    );
    KnapsackSolution::from_indices(items, selected)
}

/// Greedy density ordering *without* the single-item fix-up.
///
/// Sorts items by non-increasing `value / weight` and adds them while they
/// fit. This is the paper's `BaselineG`; it can be arbitrarily far from the
/// optimum (a single heavy, high-value item defeats it).
#[must_use]
pub fn solve_greedy_density(items: &[KnapsackItem], capacity: f64) -> KnapsackSolution {
    let order = density_order(items);
    let mut selected = Vec::new();
    let mut remaining = capacity;
    for idx in order {
        if items[idx].weight <= remaining + 1e-12 {
            remaining -= items[idx].weight;
            selected.push(idx);
        }
    }
    KnapsackSolution::from_indices(items, selected)
}

/// Greedy ½-approximation: take the better of (a) the maximal greedy prefix
/// in density order and (b) the single most valuable item that fits.
///
/// This mirrors Algorithm `BatchStrat` lines 7–9 of the paper and inherits
/// the classical guarantee `value ≥ OPT / 2` (paper, Theorem 3).
#[must_use]
pub fn solve_greedy_half_approx(items: &[KnapsackItem], capacity: f64) -> KnapsackSolution {
    let order = density_order(items);

    // (a) maximal prefix of the density order that fits.
    let mut prefix = Vec::new();
    let mut remaining = capacity;
    for &idx in &order {
        if items[idx].weight <= remaining + 1e-12 {
            remaining -= items[idx].weight;
            prefix.push(idx);
        } else {
            // Stop at the breaking item, per the analysis in Theorem 3: the
            // prefix before the first item that does not fit, compared with
            // the breaking item alone, already achieves 1/2 OPT.
            break;
        }
    }
    let prefix_solution = KnapsackSolution::from_indices(items, prefix);

    // (b) best single item that fits on its own.
    let single = items
        .iter()
        .enumerate()
        .filter(|(_, it)| it.weight <= capacity + 1e-12)
        .max_by(|a, b| a.1.value.total_cmp(&b.1.value))
        .map(|(i, _)| vec![i])
        .unwrap_or_default();
    let single_solution = KnapsackSolution::from_indices(items, single);

    if single_solution.total_value > prefix_solution.total_value {
        single_solution
    } else {
        prefix_solution
    }
}

/// Indices of `items` sorted by non-increasing value density, breaking ties
/// by smaller weight first so that cheap items are preferred.
#[must_use]
pub fn density_order(items: &[KnapsackItem]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        items[b]
            .density()
            .total_cmp(&items[a].density())
            .then(items[a].weight.total_cmp(&items[b].weight))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn items(raw: &[(f64, f64)]) -> Vec<KnapsackItem> {
        raw.iter().map(|&(w, v)| KnapsackItem::new(w, v)).collect()
    }

    #[test]
    fn empty_instance_yields_empty_solution() {
        let solution = solve_brute_force(&[], 1.0);
        assert!(solution.is_empty());
        assert_eq!(solution.total_value, 0.0);
        assert_eq!(solution.total_weight, 0.0);
    }

    #[test]
    fn brute_force_picks_optimal_subset() {
        let items = items(&[(0.4, 0.4), (0.3, 0.5), (0.5, 0.6), (0.2, 0.1)]);
        let solution = solve_brute_force(&items, 0.8);
        // Optimal: items 1 and 2 (weight 0.8, value 1.1).
        assert_eq!(solution.selected, vec![1, 2]);
        assert!((solution.total_value - 1.1).abs() < 1e-12);
    }

    #[test]
    fn greedy_density_can_be_suboptimal_but_half_approx_is_not_fooled() {
        // Classic adversarial instance: one tiny high-density item plus one
        // big item worth almost the whole capacity.
        let items = items(&[(0.01, 0.02), (1.0, 1.0)]);
        let greedy = solve_greedy_density(&items, 1.0);
        assert_eq!(greedy.selected, vec![0]);
        let half = solve_greedy_half_approx(&items, 1.0);
        assert_eq!(half.selected, vec![1]);
        assert!((half.total_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_items_are_always_taken_first() {
        let items = items(&[(0.0, 0.1), (0.6, 0.9), (0.5, 0.2)]);
        let solution = solve_greedy_half_approx(&items, 0.6);
        assert!(solution.selected.contains(&0));
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let item = KnapsackItem::new(-1.0, -2.0);
        assert_eq!(item.weight, 0.0);
        assert_eq!(item.value, 0.0);
    }

    #[test]
    fn capacity_zero_only_accepts_weightless_items() {
        let items = items(&[(0.0, 0.5), (0.1, 9.0)]);
        let solution = solve_brute_force(&items, 0.0);
        assert_eq!(solution.selected, vec![0]);
    }

    #[test]
    fn density_of_zero_weight_is_infinite() {
        assert!(KnapsackItem::new(0.0, 1.0).density().is_infinite());
        assert!((KnapsackItem::new(2.0, 1.0).density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn oversized_instance_falls_back_to_greedy() {
        let many: Vec<KnapsackItem> = (0..50).map(|i| KnapsackItem::new(0.1, i as f64)).collect();
        let solution = solve_brute_force(&many, 1.0);
        assert!(!solution.is_empty());
        assert!(solution.total_weight <= 1.0 + 1e-9);
    }

    #[test]
    fn meet_in_the_middle_matches_enumeration() {
        // 24 items routes through the meet-in-the-middle path; compare it
        // against plain enumeration on the same instance.
        let items: Vec<KnapsackItem> = (0..24)
            .map(|i| KnapsackItem::new(0.05 + 0.013 * (i % 7) as f64, 0.1 + 0.029 * (i % 5) as f64))
            .collect();
        for capacity in [0.2, 0.5, 1.0, 2.0] {
            let mitm = solve_meet_in_the_middle(&items, capacity);
            let enumerated = solve_enumerate(&items, capacity);
            assert!(
                (mitm.total_value - enumerated.total_value).abs() < 1e-9,
                "capacity {capacity}: {} vs {}",
                mitm.total_value,
                enumerated.total_value
            );
            assert!(mitm.total_weight <= capacity + 1e-9);
        }
    }

    proptest! {
        #[test]
        fn half_approx_guarantee_holds(
            raw in proptest::collection::vec((0.0_f64..1.0, 0.0_f64..1.0), 0..10),
            capacity in 0.0_f64..2.0,
        ) {
            let items = items(&raw);
            let optimal = solve_brute_force(&items, capacity);
            let approx = solve_greedy_half_approx(&items, capacity);
            prop_assert!(approx.total_weight <= capacity + 1e-9);
            prop_assert!(approx.total_value + 1e-9 >= optimal.total_value / 2.0);
        }

        #[test]
        fn solutions_respect_capacity_and_are_sorted(
            raw in proptest::collection::vec((0.0_f64..1.0, 0.0_f64..1.0), 0..12),
            capacity in 0.0_f64..3.0,
        ) {
            let items = items(&raw);
            for solution in [
                solve_greedy_density(&items, capacity),
                solve_greedy_half_approx(&items, capacity),
            ] {
                prop_assert!(solution.total_weight <= capacity + 1e-9);
                let mut sorted = solution.selected.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(&sorted, &solution.selected);
            }
        }

        #[test]
        fn greedy_prefix_never_beats_optimum(
            raw in proptest::collection::vec((0.01_f64..1.0, 0.0_f64..1.0), 0..10),
            capacity in 0.0_f64..2.0,
        ) {
            let items = items(&raw);
            let optimal = solve_brute_force(&items, capacity);
            let greedy = solve_greedy_density(&items, capacity);
            prop_assert!(greedy.total_value <= optimal.total_value + 1e-9);
        }
    }
}
