//! Discrete probability distributions.
//!
//! Worker availability in the paper is "a discrete random variable …
//! represented by its corresponding distribution function (pdf), which gives
//! the probability of the proportion of workers who are suitable and
//! available" (§2.1); StratRec then works with the expectation of that pdf.
//! This module provides the generic discrete distribution used by the core
//! library's availability model and by the platform simulator, including
//! validation, expectation, variance and inverse-CDF sampling.

use serde::{Deserialize, Serialize};

/// A discrete distribution over `f64` outcomes.
///
/// Probabilities are validated to be non-negative and to sum to 1 within a
/// small tolerance; construction fails otherwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteDistribution {
    outcomes: Vec<f64>,
    probabilities: Vec<f64>,
}

/// Errors produced when constructing a [`DiscreteDistribution`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistributionError {
    /// The outcome and probability slices had different lengths.
    LengthMismatch,
    /// The distribution had no outcomes.
    Empty,
    /// A probability was negative or non-finite.
    InvalidProbability,
    /// The probabilities did not sum to one (within 1e-6).
    DoesNotSumToOne,
}

impl std::fmt::Display for DistributionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LengthMismatch => write!(f, "outcomes and probabilities differ in length"),
            Self::Empty => write!(f, "distribution must have at least one outcome"),
            Self::InvalidProbability => write!(f, "probabilities must be finite and non-negative"),
            Self::DoesNotSumToOne => write!(f, "probabilities must sum to 1"),
        }
    }
}

impl std::error::Error for DistributionError {}

impl DiscreteDistribution {
    /// Builds a distribution from parallel slices of outcomes and
    /// probabilities.
    ///
    /// # Errors
    ///
    /// Returns a [`DistributionError`] when the slices mismatch in length,
    /// are empty, contain invalid probabilities, or do not sum to one.
    pub fn new(outcomes: &[f64], probabilities: &[f64]) -> Result<Self, DistributionError> {
        if outcomes.len() != probabilities.len() {
            return Err(DistributionError::LengthMismatch);
        }
        if outcomes.is_empty() {
            return Err(DistributionError::Empty);
        }
        if probabilities.iter().any(|p| !p.is_finite() || *p < -1e-12) {
            return Err(DistributionError::InvalidProbability);
        }
        let total: f64 = probabilities.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(DistributionError::DoesNotSumToOne);
        }
        Ok(Self {
            outcomes: outcomes.to_vec(),
            probabilities: probabilities.to_vec(),
        })
    }

    /// A distribution placing all mass on a single outcome.
    #[must_use]
    pub fn degenerate(outcome: f64) -> Self {
        Self {
            outcomes: vec![outcome],
            probabilities: vec![1.0],
        }
    }

    /// The outcomes of the distribution.
    #[must_use]
    pub fn outcomes(&self) -> &[f64] {
        &self.outcomes
    }

    /// The probabilities of the distribution (parallel to [`Self::outcomes`]).
    #[must_use]
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Expected value `Σ p_i · x_i`.
    #[must_use]
    pub fn expectation(&self) -> f64 {
        self.outcomes
            .iter()
            .zip(&self.probabilities)
            .map(|(x, p)| x * p)
            .sum()
    }

    /// Variance `Σ p_i · (x_i − E)²`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let mean = self.expectation();
        self.outcomes
            .iter()
            .zip(&self.probabilities)
            .map(|(x, p)| p * (x - mean) * (x - mean))
            .sum()
    }

    /// Inverse-CDF sampling: maps a uniform draw `u ∈ [0, 1)` to an outcome.
    /// Values outside `[0, 1)` are clamped. Deterministic given `u`, which
    /// keeps simulation code reproducible without threading RNG types through
    /// this crate.
    #[must_use]
    pub fn sample_with_uniform(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        let mut cumulative = 0.0;
        for (x, p) in self.outcomes.iter().zip(&self.probabilities) {
            cumulative += p;
            if u < cumulative {
                return *x;
            }
        }
        *self
            .outcomes
            .last()
            .expect("constructor guarantees at least one outcome")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_expectation() {
        // "70% chance of having 7% of the workers and a 30% chance of having
        // 2% of the workers … In expectation, this gives rise to 5.5%".
        let d = DiscreteDistribution::new(&[0.07, 0.02], &[0.7, 0.3]).unwrap();
        assert!((d.expectation() - 0.055).abs() < 1e-12);
    }

    #[test]
    fn second_paper_example_expectation() {
        // "50% probability of having 700 workers and a 50% probability of
        // having 900 workers out of 1000 … expected worker availability W is
        // 0.8".
        let d = DiscreteDistribution::new(&[0.7, 0.9], &[0.5, 0.5]).unwrap();
        assert!((d.expectation() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert_eq!(
            DiscreteDistribution::new(&[0.1], &[0.5, 0.5]).unwrap_err(),
            DistributionError::LengthMismatch
        );
        assert_eq!(
            DiscreteDistribution::new(&[], &[]).unwrap_err(),
            DistributionError::Empty
        );
        assert_eq!(
            DiscreteDistribution::new(&[0.1, 0.2], &[-0.5, 1.5]).unwrap_err(),
            DistributionError::InvalidProbability
        );
        assert_eq!(
            DiscreteDistribution::new(&[0.1, 0.2], &[0.3, 0.3]).unwrap_err(),
            DistributionError::DoesNotSumToOne
        );
    }

    #[test]
    fn degenerate_distribution_has_zero_variance() {
        let d = DiscreteDistribution::degenerate(0.42);
        assert_eq!(d.expectation(), 0.42);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.sample_with_uniform(0.99), 0.42);
    }

    #[test]
    fn sampling_respects_cumulative_boundaries() {
        let d = DiscreteDistribution::new(&[1.0, 2.0, 3.0], &[0.2, 0.3, 0.5]).unwrap();
        assert_eq!(d.sample_with_uniform(0.0), 1.0);
        assert_eq!(d.sample_with_uniform(0.19), 1.0);
        assert_eq!(d.sample_with_uniform(0.2), 2.0);
        assert_eq!(d.sample_with_uniform(0.49), 2.0);
        assert_eq!(d.sample_with_uniform(0.5), 3.0);
        assert_eq!(d.sample_with_uniform(1.0), 3.0);
    }

    #[test]
    fn error_display_is_informative() {
        let msg = format!("{}", DistributionError::DoesNotSumToOne);
        assert!(msg.contains("sum"));
    }

    proptest! {
        #[test]
        fn expectation_is_within_outcome_range(
            outcomes in proptest::collection::vec(0.0_f64..1.0, 1..8),
            weights in proptest::collection::vec(0.01_f64..1.0, 1..8),
        ) {
            let n = outcomes.len().min(weights.len());
            let outcomes = &outcomes[..n];
            let total: f64 = weights[..n].iter().sum();
            let probs: Vec<f64> = weights[..n].iter().map(|w| w / total).collect();
            let d = DiscreteDistribution::new(outcomes, &probs).unwrap();
            let lo = outcomes.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = outcomes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(d.expectation() >= lo - 1e-9);
            prop_assert!(d.expectation() <= hi + 1e-9);
            prop_assert!(d.variance() >= -1e-12);
        }

        #[test]
        fn sampling_always_returns_an_outcome(
            u in 0.0_f64..1.0,
        ) {
            let d = DiscreteDistribution::new(&[0.2, 0.4, 0.9], &[0.25, 0.25, 0.5]).unwrap();
            let sample = d.sample_with_uniform(u);
            prop_assert!(d.outcomes().contains(&sample));
        }
    }
}
