//! # Crowdsourcing-platform simulator
//!
//! The paper's real-data experiments (§5.1) deploy text-editing tasks on
//! Amazon Mechanical Turk: workers are recruited, redirected to shared
//! Google Docs, and their contributions are scored by domain experts. A
//! reproduction cannot hire crowd workers, so this crate substitutes the
//! platform with a discrete, seeded simulator that produces the same
//! *observables* the paper feeds into StratRec:
//!
//! * per-window worker availability estimates (Figure 11) —
//!   [`availability_process`];
//! * (availability → quality/cost/latency) observations per task type and
//!   strategy, from which the linear `(α, β)` models of Table 6 / Figure 12
//!   are fitted — [`execution`] and [`experiment`];
//! * mirrored with/without-StratRec deployments and their aggregate
//!   quality/cost/latency (Figure 13) — [`abtest`].
//!
//! The generative assumptions mirror what the paper validates empirically:
//! deployment parameters are linear in worker availability, sequential
//! independent work yields higher quality but higher latency than
//! simultaneous collaboration, unguided simultaneous collaboration triggers
//! "edit wars" that depress quality, and hybrid (machine-assisted) styles
//! trade a little quality for lower latency and cost.

#![forbid(unsafe_code)]

pub mod abtest;
pub mod availability_process;
pub mod event;
pub mod execution;
pub mod experiment;
pub mod hit;
pub mod worker;

pub use abtest::{AbTestConfig, AbTestResult};
pub use availability_process::{AvailabilityEstimate, AvailabilityProcess, DeploymentWindow};
pub use execution::{ExecutionOutcome, StrategyExecutor};
pub use experiment::{CalibrationExperiment, FittedStrategyReport};
pub use hit::{Hit, HitDesign};
pub use worker::{Worker, WorkerPool};
