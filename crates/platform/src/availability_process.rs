//! Worker arrival / departure processes and availability estimation.
//!
//! The paper's first real-data question is "*Can worker availability be
//! estimated and does it vary over time?*" (§5.1.1). It deploys the same
//! HITs in three windows of the week and measures availability as the ratio
//! `x′ / x` of workers who actually undertook the task over the maximum
//! asked for, observing the Monday–Thursday window to be the busiest
//! (Figure 11). This module simulates that process: workers arrive according
//! to a window-dependent thinned Poisson process during the deployment
//! horizon, and the same `x′ / x` estimator is applied.

use rand::Rng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};
use stratrec_core::availability::AvailabilityPdf;
use stratrec_core::error::StratRecError;
use stratrec_core::model::TaskType;

use crate::hit::HitDesign;
use crate::worker::WorkerPool;

/// The three deployment windows used by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeploymentWindow {
    /// Friday 12am – Monday 12am.
    Weekend,
    /// Monday – Thursday (the busiest window in Figure 11).
    EarlyWeek,
    /// Thursday – Sunday.
    LateWeek,
}

impl DeploymentWindow {
    /// All windows in paper order (Window-1, Window-2, Window-3).
    pub const ALL: [DeploymentWindow; 3] = [
        DeploymentWindow::Weekend,
        DeploymentWindow::EarlyWeek,
        DeploymentWindow::LateWeek,
    ];

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Weekend => "Window-1 (Fri-Mon)",
            Self::EarlyWeek => "Window-2 (Mon-Thu)",
            Self::LateWeek => "Window-3 (Thu-Sun)",
        }
    }

    /// Base fraction of the recruited pool that shows up during the window.
    /// Calibrated to the shape of Figure 11: the early-week window is the
    /// most active, the weekend the least.
    #[must_use]
    pub fn base_activity(self) -> f64 {
        match self {
            Self::Weekend => 0.70,
            Self::EarlyWeek => 1.05,
            Self::LateWeek => 0.82,
        }
    }
}

/// An availability estimate for one (window, task type) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityEstimate {
    /// The deployment window.
    pub window: DeploymentWindow,
    /// The task type deployed.
    pub task_type: TaskType,
    /// Availability observed per replicated HIT (the `x′ / x` ratios).
    pub observations: Vec<f64>,
    /// Mean of the observations.
    pub mean: f64,
    /// Standard error of the mean (the error bars of Figure 11).
    pub std_err: f64,
}

impl AvailabilityEstimate {
    /// Converts the observations into an availability pdf usable by
    /// StratRec.
    ///
    /// # Errors
    ///
    /// Returns an error when there are no observations.
    pub fn to_pdf(&self) -> Result<AvailabilityPdf, StratRecError> {
        AvailabilityPdf::from_observations(&self.observations)
    }
}

/// A simulated worker arrival/departure process over one deployment window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityProcess {
    /// The window being simulated.
    pub window: DeploymentWindow,
    /// Mean session length in hours a worker stays on the platform once
    /// arrived.
    pub mean_session_hours: f64,
    /// Multiplicative day/night modulation amplitude in `[0, 1)`.
    pub diurnal_amplitude: f64,
}

impl AvailabilityProcess {
    /// A process with the defaults used by the reproduction's experiments.
    #[must_use]
    pub fn new(window: DeploymentWindow) -> Self {
        Self {
            window,
            mean_session_hours: 2.0,
            diurnal_amplitude: 0.3,
        }
    }

    /// Simulates one HIT deployment: of the `design.max_workers` asked for,
    /// how many qualified workers arrive (and stay past the payment
    /// threshold) within the deployment horizon. Returns the availability
    /// ratio `x′ / x`.
    pub fn simulate_hit(&self, pool: &WorkerPool, design: &HitDesign, rng: &mut impl Rng) -> f64 {
        let recruited = pool.recruit(design.task_type, 0.9);
        if recruited.is_empty() || design.max_workers == 0 {
            return 0.0;
        }
        // Arrival intensity: workers browse many competing HITs, so the rate
        // at which *this* HIT attracts a qualified worker scales with the
        // window's activity and with how many workers the HIT still asks
        // for, dampened when the recruited pool itself is small.
        let horizon = design.deployment_hours;
        let pool_scale = (recruited.len() as f64 / (design.max_workers as f64 * 10.0)).min(1.0);
        let rate_per_hour =
            self.window.base_activity() * pool_scale * design.max_workers as f64 / horizon.max(1.0);
        let exp = Exp::new(rate_per_hour.max(1e-6)).expect("positive rate");

        let mut clock = 0.0_f64;
        let mut undertaken = 0_usize;
        while undertaken < design.max_workers {
            clock += exp.sample(rng);
            if clock > horizon {
                break;
            }
            // Diurnal thinning: arrivals at "night" hours are dropped with a
            // probability governed by the amplitude.
            let phase = (clock / 24.0) * std::f64::consts::TAU;
            let keep_probability = 1.0 - self.diurnal_amplitude * (0.5 + 0.5 * phase.sin());
            if !rng.gen_bool(keep_probability.clamp(0.05, 1.0)) {
                continue;
            }
            // The worker must stay past the payment threshold to count.
            let session_hours = self.mean_session_hours * rng.gen_range(0.25..1.75);
            if session_hours * 60.0 >= design.min_minutes_for_payment {
                undertaken += 1;
            }
        }
        undertaken as f64 / design.max_workers as f64
    }

    /// Runs `replicas` independent HIT deployments and aggregates them into
    /// an [`AvailabilityEstimate`] (the paper replicates each study twice per
    /// window and strategy, for 8 HITs per window).
    pub fn estimate(
        &self,
        pool: &WorkerPool,
        design: &HitDesign,
        replicas: usize,
        rng: &mut impl Rng,
    ) -> AvailabilityEstimate {
        let observations: Vec<f64> = (0..replicas)
            .map(|_| self.simulate_hit(pool, design, rng))
            .collect();
        let summary = stratrec_optim::stats::Summary::of(&observations);
        AvailabilityEstimate {
            window: self.window,
            task_type: design.task_type,
            observations,
            mean: summary.mean,
            std_err: summary.std_err,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool() -> WorkerPool {
        WorkerPool::generate(2000, &mut StdRng::seed_from_u64(42))
    }

    #[test]
    fn availability_is_a_ratio_in_unit_interval() {
        let pool = pool();
        let design = HitDesign::calibration(TaskType::SentenceTranslation);
        let mut rng = StdRng::seed_from_u64(3);
        for window in DeploymentWindow::ALL {
            let a = AvailabilityProcess::new(window).simulate_hit(&pool, &design, &mut rng);
            assert!((0.0..=1.0).contains(&a), "window {window:?} gave {a}");
        }
    }

    #[test]
    fn early_week_window_is_the_busiest_on_average() {
        let pool = pool();
        let design = HitDesign::calibration(TaskType::TextCreation);
        let mut rng = StdRng::seed_from_u64(9);
        let mut means = Vec::new();
        for window in DeploymentWindow::ALL {
            let est = AvailabilityProcess::new(window).estimate(&pool, &design, 24, &mut rng);
            means.push(est.mean);
        }
        // Figure 11 shape: Window-2 (index 1) dominates the other two.
        assert!(means[1] > means[0]);
        assert!(means[1] > means[2]);
    }

    #[test]
    fn estimates_expose_error_bars_and_convert_to_pdf() {
        let pool = pool();
        let design = HitDesign::calibration(TaskType::SentenceTranslation);
        let mut rng = StdRng::seed_from_u64(5);
        let est = AvailabilityProcess::new(DeploymentWindow::Weekend)
            .estimate(&pool, &design, 12, &mut rng);
        assert_eq!(est.observations.len(), 12);
        assert!(est.std_err >= 0.0);
        let pdf = est.to_pdf().unwrap();
        assert!((pdf.expectation().value() - est.mean).abs() < 1e-9);
    }

    #[test]
    fn empty_pool_or_zero_workers_yield_zero_availability() {
        let empty = WorkerPool::default();
        let design = HitDesign::calibration(TaskType::TextCreation);
        let mut rng = StdRng::seed_from_u64(1);
        let a = AvailabilityProcess::new(DeploymentWindow::Weekend)
            .simulate_hit(&empty, &design, &mut rng);
        assert_eq!(a, 0.0);
        let mut zero_workers = design;
        zero_workers.max_workers = 0;
        let a = AvailabilityProcess::new(DeploymentWindow::Weekend).simulate_hit(
            &pool(),
            &zero_workers,
            &mut rng,
        );
        assert_eq!(a, 0.0);
    }

    #[test]
    fn window_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            DeploymentWindow::ALL.iter().map(|w| w.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
