//! Crowd workers and worker pools.

use rand::Rng;
use serde::{Deserialize, Serialize};
use stratrec_core::model::TaskType;

/// A simulated crowd worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Unique identifier on the platform.
    pub id: u64,
    /// Task types the worker is qualified for (the paper performs "a binary
    /// match between workers' skills and task types").
    pub skills: Vec<TaskType>,
    /// HIT-approval-rate style reliability in `[0, 1]`; workers below the
    /// recruitment threshold (0.9 in §5.1) are filtered out before
    /// deployment.
    pub approval_rate: f64,
    /// Intrinsic contribution quality in `[0, 1]` (how close to a domain
    /// expert this worker's unaided output is).
    pub proficiency: f64,
    /// Relative working speed; 1.0 is the population median.
    pub speed: f64,
}

impl Worker {
    /// Whether the worker can undertake tasks of the given type.
    #[must_use]
    pub fn is_qualified_for(&self, task: TaskType) -> bool {
        self.skills.contains(&task)
    }
}

/// A pool of registered workers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Creates a pool from explicit workers.
    #[must_use]
    pub fn new(workers: Vec<Worker>) -> Self {
        Self { workers }
    }

    /// Generates a synthetic pool of `size` workers. Proficiency, approval
    /// rate and speed follow simple bounded distributions; each worker is
    /// qualified for one or two task types.
    #[must_use]
    pub fn generate(size: usize, rng: &mut impl Rng) -> Self {
        let workers = (0..size)
            .map(|id| {
                let mut skills = vec![*pick(&TaskType::ALL, rng)];
                if rng.gen_bool(0.4) {
                    let extra = *pick(&TaskType::ALL, rng);
                    if !skills.contains(&extra) {
                        skills.push(extra);
                    }
                }
                Worker {
                    id: id as u64,
                    skills,
                    approval_rate: rng.gen_range(0.6..1.0),
                    proficiency: rng.gen_range(0.5..0.95),
                    speed: rng.gen_range(0.6..1.4),
                }
            })
            .collect();
        Self { workers }
    }

    /// All workers in the pool.
    #[must_use]
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Number of registered workers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool has no workers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Workers qualified for a task type with at least the given approval
    /// rate — the recruitment filter of §5.1 ("HIT approval rate greater than
    /// 90%").
    #[must_use]
    pub fn recruit(&self, task: TaskType, min_approval: f64) -> Vec<&Worker> {
        self.workers
            .iter()
            .filter(|w| w.is_qualified_for(task) && w.approval_rate >= min_approval)
            .collect()
    }

    /// Size of the *suitable* pool for a task type (no approval filter).
    #[must_use]
    pub fn suitable_count(&self, task: TaskType) -> usize {
        self.workers
            .iter()
            .filter(|w| w.is_qualified_for(task))
            .count()
    }
}

fn pick<'a, T>(items: &'a [T], rng: &mut impl Rng) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_pool_has_requested_size_and_valid_fields() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = WorkerPool::generate(500, &mut rng);
        assert_eq!(pool.len(), 500);
        assert!(!pool.is_empty());
        for w in pool.workers() {
            assert!(!w.skills.is_empty() && w.skills.len() <= 2);
            assert!((0.0..=1.0).contains(&w.approval_rate));
            assert!((0.0..=1.0).contains(&w.proficiency));
            assert!(w.speed > 0.0);
        }
    }

    #[test]
    fn recruitment_filters_by_skill_and_approval() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = WorkerPool::generate(1000, &mut rng);
        let recruited = pool.recruit(TaskType::SentenceTranslation, 0.9);
        assert!(!recruited.is_empty());
        for w in &recruited {
            assert!(w.is_qualified_for(TaskType::SentenceTranslation));
            assert!(w.approval_rate >= 0.9);
        }
        assert!(recruited.len() <= pool.suitable_count(TaskType::SentenceTranslation));
    }

    #[test]
    fn empty_pool_behaves() {
        let pool = WorkerPool::default();
        assert!(pool.is_empty());
        assert_eq!(pool.suitable_count(TaskType::TextCreation), 0);
        assert!(pool.recruit(TaskType::TextCreation, 0.0).is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = WorkerPool::generate(50, &mut StdRng::seed_from_u64(7));
        let b = WorkerPool::generate(50, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
