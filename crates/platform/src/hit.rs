//! HITs (Human Intelligence Tasks) and their deployment design.
//!
//! The paper's experiment design (§5.1.1) wraps three sentence-translation
//! or text-creation tasks into one HIT, allots two hours per HIT, asks for a
//! fixed number of workers and pays each worker a flat rate if they spend
//! enough time. [`HitDesign`] captures those knobs and [`Hit`] a concrete
//! deployment of them.

use serde::{Deserialize, Serialize};
use stratrec_core::model::TaskType;

/// The design parameters shared by a family of HITs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HitDesign {
    /// Type of tasks in the HIT.
    pub task_type: TaskType,
    /// Number of atomic tasks bundled into one HIT (3 in the paper).
    pub tasks_per_hit: usize,
    /// Maximum number of workers asked to complete the HIT (10 in §5.1.1,
    /// 7 in §5.1.2).
    pub max_workers: usize,
    /// Payment per worker in dollars ($2 in the paper).
    pub payment_per_worker: f64,
    /// Minimum minutes a worker must spend to be paid (10 in the paper).
    pub min_minutes_for_payment: f64,
    /// Deployment horizon in hours (72 in the paper).
    pub deployment_hours: f64,
}

impl HitDesign {
    /// The design used by the paper's calibration experiments (§5.1.1).
    #[must_use]
    pub fn calibration(task_type: TaskType) -> Self {
        Self {
            task_type,
            tasks_per_hit: 3,
            max_workers: 10,
            payment_per_worker: 2.0,
            min_minutes_for_payment: 10.0,
            deployment_hours: 72.0,
        }
    }

    /// The design used by the effectiveness experiment (§5.1.2): 7 workers
    /// per HIT, thresholds 70 % quality / $14 / 72 h.
    #[must_use]
    pub fn effectiveness(task_type: TaskType) -> Self {
        Self {
            task_type,
            tasks_per_hit: 1,
            max_workers: 7,
            payment_per_worker: 2.0,
            min_minutes_for_payment: 10.0,
            deployment_hours: 72.0,
        }
    }

    /// Maximum total cost of one HIT in dollars.
    #[must_use]
    pub fn max_cost(&self) -> f64 {
        self.payment_per_worker * self.max_workers as f64
    }
}

/// One concrete HIT deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hit {
    /// Unique identifier of the HIT.
    pub id: u64,
    /// The design this HIT instantiates.
    pub design: HitDesign,
    /// Short description of the artefact being produced (e.g. the nursery
    /// rhyme being translated or the topic being written about).
    pub description: String,
}

impl Hit {
    /// Creates a HIT from a design.
    #[must_use]
    pub fn new(id: u64, design: HitDesign, description: impl Into<String>) -> Self {
        Self {
            id,
            design,
            description: description.into(),
        }
    }
}

/// The artefacts used by the paper: three nursery rhymes for translation and
/// three news topics for text creation. Returned as (task type, description)
/// pairs so experiments can enumerate them.
#[must_use]
pub fn paper_artefacts() -> Vec<(TaskType, &'static str)> {
    vec![
        (TaskType::SentenceTranslation, "Mary Had a Little Lamb"),
        (TaskType::SentenceTranslation, "Lavender's Blue"),
        (TaskType::SentenceTranslation, "Rock-a-bye Baby"),
        (TaskType::TextCreation, "Robert Mueller Report"),
        (TaskType::TextCreation, "Notre Dame Cathedral"),
        (TaskType::TextCreation, "2019 Pulitzer Prizes"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_design_matches_paper() {
        let design = HitDesign::calibration(TaskType::SentenceTranslation);
        assert_eq!(design.tasks_per_hit, 3);
        assert_eq!(design.max_workers, 10);
        assert!((design.max_cost() - 20.0).abs() < 1e-12);
        assert!((design.deployment_hours - 72.0).abs() < 1e-12);
    }

    #[test]
    fn effectiveness_design_matches_paper() {
        let design = HitDesign::effectiveness(TaskType::TextCreation);
        assert_eq!(design.max_workers, 7);
        assert!((design.max_cost() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn artefacts_cover_both_task_types() {
        let artefacts = paper_artefacts();
        assert_eq!(artefacts.len(), 6);
        assert_eq!(
            artefacts
                .iter()
                .filter(|(t, _)| *t == TaskType::SentenceTranslation)
                .count(),
            3
        );
        let hit = Hit::new(1, HitDesign::calibration(artefacts[0].0), artefacts[0].1);
        assert_eq!(hit.description, "Mary Had a Little Lamb");
    }
}
