//! Strategy execution engine.
//!
//! Simulates what happens when a HIT is deployed under a given strategy
//! (Structure × Organization × Style) at a given worker availability, and
//! produces the observables the paper measures: crowd quality as judged by a
//! domain expert, total cost, completion latency and the number of edits on
//! the shared document.
//!
//! The generative model is calibrated so that, in expectation, each
//! parameter is **linear in worker availability** with coefficients close to
//! the paper's Table 6, and so that the qualitative findings of §5.1 hold:
//! `SEQ-IND-CRO` reaches slightly higher quality but higher latency than
//! `SIM-COL-CRO`; unguided simultaneous collaboration triggers edit wars
//! that depress quality; hybrid styles shave latency and cost.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use stratrec_core::model::{
    DeploymentParameters, Organization, Strategy, Structure, Style, TaskType,
};
use stratrec_core::modeling::{LinearModel, StrategyModel};

use crate::hit::HitDesign;

/// The measured outcome of executing one HIT under one strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionOutcome {
    /// Expert-judged quality in `[0, 1]`.
    pub quality: f64,
    /// Total cost normalized by the HIT's maximum cost, in `[0, 1]`.
    pub cost: f64,
    /// Completion latency normalized by the deployment horizon, in `[0, 1]`.
    pub latency: f64,
    /// Number of edits observed on the shared artefact (the edit-war signal
    /// of §5.1.2).
    pub edits: u32,
    /// Worker availability the HIT experienced.
    pub availability: f64,
}

impl ExecutionOutcome {
    /// The outcome as normalized deployment parameters.
    #[must_use]
    pub fn to_parameters(&self) -> DeploymentParameters {
        DeploymentParameters::clamped(self.quality, self.cost, self.latency)
    }
}

/// The simulator executing strategies on HITs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyExecutor {
    /// Standard deviation of the observation noise added to every parameter.
    pub noise_std: f64,
    /// Additional quality penalty applied per "edit war" conflict when
    /// workers collaborate simultaneously without guidance.
    pub edit_war_penalty: f64,
}

impl Default for StrategyExecutor {
    fn default() -> Self {
        Self {
            noise_std: 0.02,
            edit_war_penalty: 0.01,
        }
    }
}

impl StrategyExecutor {
    /// The ground-truth linear model `(α, β)` per parameter for a task type
    /// and strategy dimensions. The translation / creation `SEQ-IND-CRO` and
    /// `SIM-COL-CRO` entries match Table 6 of the paper; the remaining
    /// combinations interpolate them with the qualitative adjustments
    /// described in the module documentation.
    #[must_use]
    pub fn ground_truth_model(
        task: TaskType,
        structure: Structure,
        organization: Organization,
        style: Style,
    ) -> StrategyModel {
        // Base (α, β) per task type, taken from Table 6.
        let (quality, cost, latency) = match (task, structure, organization) {
            (TaskType::SentenceTranslation, Structure::Sequential, Organization::Independent) => {
                ((0.09, 0.85), (1.00, 0.00), (-0.98, 1.40))
            }
            (TaskType::SentenceTranslation, _, Organization::Collaborative) => {
                ((0.09, 0.82), (0.82, 0.17), (-0.63, 1.01))
            }
            (TaskType::TextCreation, Structure::Sequential, Organization::Independent) => {
                ((0.10, 0.80), (1.00, 0.00), (-1.56, 2.04))
            }
            (TaskType::TextCreation, _, Organization::Collaborative) => {
                ((0.19, 0.70), (1.00, 0.00), (-1.38, 1.81))
            }
            // Unlisted combinations: blend of the two measured strategies for
            // the task type, slightly cheaper/faster when simultaneous.
            (_, Structure::Simultaneous, Organization::Independent) => {
                ((0.10, 0.80), (0.95, 0.05), (-0.90, 1.25))
            }
            (_, Structure::Sequential, Organization::Collaborative) => {
                ((0.12, 0.78), (0.90, 0.08), (-1.00, 1.45))
            }
            (_, Structure::Sequential, Organization::Independent) => {
                ((0.09, 0.83), (1.00, 0.00), (-1.10, 1.55))
            }
            (_, Structure::Simultaneous, Organization::Collaborative) => {
                ((0.14, 0.76), (0.91, 0.08), (-1.00, 1.41))
            }
        };
        let mut model = StrategyModel::new(
            LinearModel::new(quality.0, quality.1),
            LinearModel::new(cost.0, cost.1),
            LinearModel::new(latency.0, latency.1),
        );
        if style == Style::Hybrid {
            // Machine assistance: a quality floor from the algorithm, lower
            // marginal cost and latency (fewer human round-trips needed).
            model.quality.beta = (model.quality.beta - 0.03).max(0.0);
            model.quality.alpha += 0.02;
            model.cost.alpha *= 0.85;
            model.latency.alpha *= 0.9;
            model.latency.beta *= 0.85;
        }
        model
    }

    /// Executes one HIT under `strategy` at the given worker availability and
    /// returns the noisy observables.
    pub fn execute(
        &self,
        design: &HitDesign,
        strategy: &Strategy,
        availability: f64,
        rng: &mut impl Rng,
    ) -> ExecutionOutcome {
        let availability = availability.clamp(0.0, 1.0);
        let model = Self::ground_truth_model(
            design.task_type,
            strategy.structure,
            strategy.organization,
            strategy.style,
        );
        let noise = Normal::new(0.0, self.noise_std.max(1e-9)).expect("finite std");

        let mut quality = model.quality.estimate_unclamped(availability) + noise.sample(rng);
        let cost = model.cost.estimate_unclamped(availability) + noise.sample(rng);
        let latency = model.latency.estimate_unclamped(availability) + noise.sample(rng);

        // Collaborative simultaneous editing produces conflicts; each
        // conflict chips away at quality (the paper's "edit war").
        let workers_engaged = ((design.max_workers as f64) * availability)
            .round()
            .max(1.0) as u32;
        let base_edits = workers_engaged * design.tasks_per_hit.max(1) as u32;
        let conflicts = if strategy.structure == Structure::Simultaneous
            && strategy.organization == Organization::Collaborative
        {
            // Guided collaboration still sees the occasional conflicting
            // edit, but far fewer than the unguided free-for-all below.
            rng.gen_range(0..=(workers_engaged / 4).max(1))
        } else {
            0
        };
        quality -= self.edit_war_penalty * f64::from(conflicts);

        ExecutionOutcome {
            quality: quality.clamp(0.0, 1.0),
            cost: cost.clamp(0.0, 1.0),
            latency: latency.clamp(0.0, 1.0),
            edits: base_edits + conflicts,
            availability,
        }
    }

    /// Executes a HIT the way an *unguided* requester would (paper §5.1.2,
    /// the "without StratRec" arm): workers pick their own working style,
    /// which in practice degenerates into simultaneous unstructured
    /// collaboration with repeated overrides, extra latency from redone work
    /// and a sharper quality penalty.
    pub fn execute_unguided(
        &self,
        design: &HitDesign,
        availability: f64,
        rng: &mut impl Rng,
    ) -> ExecutionOutcome {
        let strategy = Strategy::new(
            u64::MAX,
            Structure::Simultaneous,
            Organization::Collaborative,
            Style::CrowdOnly,
            DeploymentParameters::clamped(0.5, 0.5, 0.5),
        );
        let mut outcome = self.execute(design, &strategy, availability, rng);
        // Unguided collaboration roughly doubles the number of edits
        // (3.45 vs 6.25 edits on average in the paper) and the extra
        // override rounds cost both quality and time.
        let extra_conflicts = rng.gen_range(1..=design.max_workers.max(1)) as u32;
        outcome.edits += extra_conflicts;
        outcome.quality =
            (outcome.quality - self.edit_war_penalty * 1.5 * f64::from(extra_conflicts)).max(0.0);
        outcome.latency = (outcome.latency + 0.05 * f64::from(extra_conflicts)).min(1.0);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stratrec_core::model::Strategy;

    fn strategy(structure: Structure, organization: Organization, style: Style) -> Strategy {
        Strategy::new(
            1,
            structure,
            organization,
            style,
            DeploymentParameters::clamped(0.5, 0.5, 0.5),
        )
    }

    #[test]
    fn outcomes_are_normalized() {
        let executor = StrategyExecutor::default();
        let design = HitDesign::calibration(TaskType::SentenceTranslation);
        let mut rng = StdRng::seed_from_u64(11);
        for availability in [0.0, 0.3, 0.7, 1.0] {
            for (st, org, sty) in stratrec_core::model::all_dimension_combinations() {
                let outcome =
                    executor.execute(&design, &strategy(st, org, sty), availability, &mut rng);
                assert!((0.0..=1.0).contains(&outcome.quality));
                assert!((0.0..=1.0).contains(&outcome.cost));
                assert!((0.0..=1.0).contains(&outcome.latency));
                let p = outcome.to_parameters();
                assert!((p.quality - outcome.quality).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn quality_and_cost_grow_latency_shrinks_with_availability() {
        let executor = StrategyExecutor {
            noise_std: 1e-6,
            edit_war_penalty: 0.0,
        };
        let design = HitDesign::calibration(TaskType::TextCreation);
        let s = strategy(
            Structure::Sequential,
            Organization::Independent,
            Style::CrowdOnly,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let low = executor.execute(&design, &s, 0.4, &mut rng);
        let high = executor.execute(&design, &s, 0.95, &mut rng);
        assert!(high.quality > low.quality);
        assert!(high.cost > low.cost);
        assert!(high.latency < low.latency);
    }

    #[test]
    fn seq_ind_beats_sim_col_on_quality_but_not_latency() {
        let executor = StrategyExecutor::default();
        let design = HitDesign::calibration(TaskType::SentenceTranslation);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200;
        let mut seq_quality = 0.0;
        let mut col_quality = 0.0;
        let mut seq_latency = 0.0;
        let mut col_latency = 0.0;
        for _ in 0..n {
            let seq = executor.execute(
                &design,
                &strategy(
                    Structure::Sequential,
                    Organization::Independent,
                    Style::CrowdOnly,
                ),
                0.8,
                &mut rng,
            );
            let col = executor.execute(
                &design,
                &strategy(
                    Structure::Simultaneous,
                    Organization::Collaborative,
                    Style::CrowdOnly,
                ),
                0.8,
                &mut rng,
            );
            seq_quality += seq.quality;
            col_quality += col.quality;
            seq_latency += seq.latency;
            col_latency += col.latency;
        }
        assert!(
            seq_quality > col_quality,
            "Figure 12 shape: SEQ-IND-CRO quality wins"
        );
        assert!(seq_latency > col_latency, "…at the price of latency");
    }

    #[test]
    fn hybrid_style_reduces_latency_and_cost() {
        let executor = StrategyExecutor {
            noise_std: 1e-6,
            edit_war_penalty: 0.0,
        };
        let design = HitDesign::calibration(TaskType::SentenceTranslation);
        let mut rng = StdRng::seed_from_u64(4);
        let crowd = executor.execute(
            &design,
            &strategy(
                Structure::Simultaneous,
                Organization::Independent,
                Style::CrowdOnly,
            ),
            0.8,
            &mut rng,
        );
        let hybrid = executor.execute(
            &design,
            &strategy(
                Structure::Simultaneous,
                Organization::Independent,
                Style::Hybrid,
            ),
            0.8,
            &mut rng,
        );
        assert!(hybrid.latency <= crowd.latency + 1e-6);
        assert!(hybrid.cost <= crowd.cost + 1e-6);
    }

    #[test]
    fn unguided_execution_has_more_edits_and_lower_quality() {
        let executor = StrategyExecutor::default();
        let design = HitDesign::effectiveness(TaskType::SentenceTranslation);
        let mut rng = StdRng::seed_from_u64(13);
        let n = 200;
        let mut guided_quality = 0.0;
        let mut unguided_quality = 0.0;
        let mut guided_edits = 0_u64;
        let mut unguided_edits = 0_u64;
        for _ in 0..n {
            let guided = executor.execute(
                &design,
                &strategy(
                    Structure::Sequential,
                    Organization::Independent,
                    Style::CrowdOnly,
                ),
                0.8,
                &mut rng,
            );
            let unguided = executor.execute_unguided(&design, 0.8, &mut rng);
            guided_quality += guided.quality;
            unguided_quality += unguided.quality;
            guided_edits += u64::from(guided.edits);
            unguided_edits += u64::from(unguided.edits);
        }
        assert!(guided_quality > unguided_quality);
        assert!(unguided_edits > guided_edits);
    }

    #[test]
    fn ground_truth_models_match_table_6_for_measured_strategies() {
        let m = StrategyExecutor::ground_truth_model(
            TaskType::SentenceTranslation,
            Structure::Sequential,
            Organization::Independent,
            Style::CrowdOnly,
        );
        assert!((m.quality.alpha - 0.09).abs() < 1e-12);
        assert!((m.quality.beta - 0.85).abs() < 1e-12);
        assert!((m.latency.alpha + 0.98).abs() < 1e-12);
        let m = StrategyExecutor::ground_truth_model(
            TaskType::TextCreation,
            Structure::Simultaneous,
            Organization::Collaborative,
            Style::CrowdOnly,
        );
        assert!((m.quality.alpha - 0.19).abs() < 1e-12);
        assert!((m.quality.beta - 0.70).abs() < 1e-12);
    }
}
