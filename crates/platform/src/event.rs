//! Compact event log of a simulation run.
//!
//! The platform simulator can record every HIT execution as a fixed-width
//! little-endian binary record in a flat byte buffer. The log is append-only
//! and freezes into a reference-counted `Arc<[u8]>` that is cheap to copy,
//! which lets long parameter sweeps in the bench harness retain full traces
//! without paying for per-event allocations, and lets tests replay exactly
//! what a sweep observed.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::execution::ExecutionOutcome;

/// One logged simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationEvent {
    /// Identifier of the HIT executed.
    pub hit_id: u64,
    /// Identifier of the strategy used.
    pub strategy_id: u64,
    /// The measured outcome.
    pub outcome: ExecutionOutcome,
}

/// Size of one encoded event in bytes: two u64 ids, four f64 fields and one
/// u32 edit counter.
const EVENT_SIZE: usize = 8 + 8 + 8 * 4 + 4;

/// An append-only binary event log.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    buffer: Vec<u8>,
}

impl EventLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn record(&mut self, event: &SimulationEvent) {
        self.buffer.reserve(EVENT_SIZE);
        self.buffer.extend_from_slice(&event.hit_id.to_le_bytes());
        self.buffer
            .extend_from_slice(&event.strategy_id.to_le_bytes());
        self.buffer
            .extend_from_slice(&event.outcome.quality.to_le_bytes());
        self.buffer
            .extend_from_slice(&event.outcome.cost.to_le_bytes());
        self.buffer
            .extend_from_slice(&event.outcome.latency.to_le_bytes());
        self.buffer
            .extend_from_slice(&event.outcome.availability.to_le_bytes());
        self.buffer
            .extend_from_slice(&event.outcome.edits.to_le_bytes());
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buffer.len() / EVENT_SIZE
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Freezes the log into an immutable, cheaply clonable byte buffer.
    #[must_use]
    pub fn freeze(self) -> Arc<[u8]> {
        self.buffer.into()
    }

    /// Decodes every event back out of the log.
    #[must_use]
    pub fn decode_all(&self) -> Vec<SimulationEvent> {
        let mut events = Vec::with_capacity(self.len());
        for record in self.buffer.chunks_exact(EVENT_SIZE) {
            let mut cursor = Cursor { bytes: record };
            let hit_id = cursor.u64_le();
            let strategy_id = cursor.u64_le();
            let quality = cursor.f64_le();
            let cost = cursor.f64_le();
            let latency = cursor.f64_le();
            let availability = cursor.f64_le();
            let edits = cursor.u32_le();
            events.push(SimulationEvent {
                hit_id,
                strategy_id,
                outcome: ExecutionOutcome {
                    quality,
                    cost,
                    latency,
                    edits,
                    availability,
                },
            });
        }
        events
    }
}

/// A tiny little-endian reader over one fixed-width record.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl Cursor<'_> {
    fn take<const N: usize>(&mut self) -> [u8; N] {
        let (head, tail) = self.bytes.split_at(N);
        self.bytes = tail;
        head.try_into().expect("split_at returned N bytes")
    }

    fn u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take())
    }

    fn f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take())
    }

    fn u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(hit: u64, quality: f64) -> SimulationEvent {
        SimulationEvent {
            hit_id: hit,
            strategy_id: hit * 10,
            outcome: ExecutionOutcome {
                quality,
                cost: 0.4,
                latency: 0.6,
                edits: 7,
                availability: 0.8,
            },
        }
    }

    #[test]
    fn empty_log() {
        let log = EventLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert!(log.decode_all().is_empty());
        assert!(log.freeze().is_empty());
    }

    #[test]
    fn round_trips_events() {
        let mut log = EventLog::new();
        let events = vec![event(1, 0.9), event(2, 0.75), event(3, 0.31)];
        for e in &events {
            log.record(e);
        }
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        assert_eq!(log.decode_all(), events);
    }

    #[test]
    fn frozen_buffer_has_fixed_width_records() {
        let mut log = EventLog::new();
        log.record(&event(1, 0.5));
        log.record(&event(2, 0.6));
        let bytes = log.freeze();
        assert_eq!(bytes.len(), 2 * EVENT_SIZE);
        // Cloning the frozen buffer shares the allocation.
        let clone = Arc::clone(&bytes);
        assert_eq!(clone.as_ptr(), bytes.as_ptr());
    }
}
