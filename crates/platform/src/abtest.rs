//! The with/without-StratRec effectiveness experiment (paper §5.1.2).
//!
//! The paper deploys 10 sentence-translation and 10 text-creation tasks
//! twice each — once following StratRec's recommendation, once leaving the
//! workers free to organize themselves — and reports, with statistical
//! significance, higher quality and lower latency for the guided deployments
//! under the same cost threshold (Figure 13), along with roughly half as many
//! document edits. This module runs the same mirrored design on the
//! simulator.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use stratrec_core::availability::AvailabilityPdf;
use stratrec_core::batch::{BatchObjective, BatchStrat};
use stratrec_core::catalog::StrategyCatalog;
use stratrec_core::model::{
    all_dimension_combinations, DeploymentParameters, DeploymentRequest, Strategy, TaskType,
};
use stratrec_core::modeling::ModelLibrary;
use stratrec_core::workforce::AggregationMode;
use stratrec_optim::stats::{paired_t_test, Summary, TTest};

use crate::execution::{ExecutionOutcome, StrategyExecutor};
use crate::experiment::CalibrationExperiment;
use crate::hit::HitDesign;

/// Configuration of the mirrored-deployment experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbTestConfig {
    /// Number of deployments per task type (10 in the paper).
    pub deployments_per_task: usize,
    /// Quality lower bound of every deployment (0.70 in the paper).
    pub quality_threshold: f64,
    /// Cost upper bound, normalized by the HIT's maximum cost ($14/$14 = 1.0
    /// in the paper).
    pub cost_threshold: f64,
    /// Latency upper bound, normalized by the deployment horizon (72h/72h).
    pub latency_threshold: f64,
    /// Number of strategies requested from StratRec per deployment.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AbTestConfig {
    fn default() -> Self {
        Self {
            deployments_per_task: 10,
            quality_threshold: 0.70,
            cost_threshold: 1.0,
            latency_threshold: 1.0,
            k: 3,
            seed: 2020,
        }
    }
}

/// Aggregate outcome of one experiment arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmSummary {
    /// Per-deployment quality summary.
    pub quality: Summary,
    /// Per-deployment cost summary.
    pub cost: Summary,
    /// Per-deployment latency summary.
    pub latency: Summary,
    /// Mean number of edits per deployment.
    pub mean_edits: f64,
}

impl ArmSummary {
    fn of(outcomes: &[ExecutionOutcome]) -> Self {
        let quality: Vec<f64> = outcomes.iter().map(|o| o.quality).collect();
        let cost: Vec<f64> = outcomes.iter().map(|o| o.cost).collect();
        let latency: Vec<f64> = outcomes.iter().map(|o| o.latency).collect();
        let edits: f64 = outcomes.iter().map(|o| f64::from(o.edits)).sum();
        Self {
            quality: Summary::of(&quality),
            cost: Summary::of(&cost),
            latency: Summary::of(&latency),
            mean_edits: if outcomes.is_empty() {
                0.0
            } else {
                edits / outcomes.len() as f64
            },
        }
    }
}

/// Result of the mirrored experiment for one task type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbTestResult {
    /// Task type deployed.
    pub task_type: TaskType,
    /// Summary of the StratRec-guided arm.
    pub with_stratrec: ArmSummary,
    /// Summary of the unguided arm.
    pub without_stratrec: ArmSummary,
    /// Paired t-test on per-deployment quality (guided minus unguided).
    pub quality_test: Option<TTest>,
    /// Paired t-test on per-deployment latency (guided minus unguided).
    pub latency_test: Option<TTest>,
}

impl AbTestResult {
    /// Whether the guided arm is significantly better on quality *and* not
    /// significantly worse on latency at the given level — the paper's
    /// headline claim.
    #[must_use]
    pub fn stratrec_wins(&self, alpha: f64) -> bool {
        let quality_better = self
            .quality_test
            .map(|t| t.mean_difference > 0.0 && t.significant_at(alpha))
            .unwrap_or(false);
        let latency_not_worse = self
            .latency_test
            .map(|t| t.mean_difference <= 0.0 || !t.significant_at(alpha))
            .unwrap_or(true);
        quality_better && latency_not_worse
    }
}

/// Runs the mirrored with/without-StratRec experiment for one task type.
#[must_use]
pub fn run_ab_test(task: TaskType, config: &AbTestConfig) -> AbTestResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let executor = StrategyExecutor::default();
    let design = HitDesign::effectiveness(task);
    let calibration = CalibrationExperiment::with_seed(config.seed);

    // Candidate strategy set: all eight Structure × Organization × Style
    // combinations, with parameters estimated from the calibration models at
    // the expected availability.
    let availability_rows = calibration.availability_study(task);
    let availability_obs: Vec<f64> = availability_rows
        .iter()
        .flat_map(|(_, _, est)| est.observations.clone())
        .collect();
    let availability_pdf =
        AvailabilityPdf::from_observations(&availability_obs).expect("non-empty observations");
    let expected = availability_pdf.expectation();

    let mut strategies = Vec::new();
    let mut models = ModelLibrary::new();
    for (idx, (structure, organization, style)) in all_dimension_combinations().iter().enumerate() {
        let truth = StrategyExecutor::ground_truth_model(task, *structure, *organization, *style);
        let params = truth.estimate_parameters(expected);
        let strategy = Strategy::new(idx as u64, *structure, *organization, *style, params);
        models.insert(strategy.id, truth);
        strategies.push(strategy);
    }
    // One shared indexed catalog serves every deployment of the experiment.
    let catalog = StrategyCatalog::from_slice(&strategies);

    let engine = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Max);
    let mut guided = Vec::new();
    let mut unguided = Vec::new();
    for d in 0..config.deployments_per_task {
        let request = DeploymentRequest::new(
            d as u64,
            task,
            DeploymentParameters::clamped(
                config.quality_threshold,
                config.cost_threshold,
                config.latency_threshold,
            ),
        );
        // Guided arm: deploy with the best strategy StratRec recommends.
        let outcome = engine
            .recommend_with_catalog(
                std::slice::from_ref(&request),
                &catalog,
                &models,
                config.k,
                expected,
            )
            .expect("models cover every strategy");
        let availability = availability_pdf
            .sample_with_uniform(rand::Rng::gen::<f64>(&mut rng))
            .value();
        let guided_outcome = if let Some(rec) = outcome.satisfied.first() {
            // Among the k recommended strategies, deploy with the one whose
            // estimated quality is highest (the requester's natural choice).
            // Recommendation indices are catalog slots — resolve them
            // through the catalog so this keeps working once strategies are
            // inserted or retired mid-experiment.
            let best = rec
                .strategy_indices
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    catalog
                        .strategy(a)
                        .params
                        .quality
                        .total_cmp(&catalog.strategy(b).params.quality)
                })
                .expect("k >= 1");
            executor.execute(&design, catalog.strategy(best), availability, &mut rng)
        } else {
            // No recommendation possible: the requester falls back to an
            // unguided deployment — StratRec offers no benefit here.
            executor.execute_unguided(&design, availability, &mut rng)
        };
        guided.push(guided_outcome);
        // Unguided arm: same availability draw, workers self-organize.
        unguided.push(executor.execute_unguided(&design, availability, &mut rng));
    }

    let quality_guided: Vec<f64> = guided.iter().map(|o| o.quality).collect();
    let quality_unguided: Vec<f64> = unguided.iter().map(|o| o.quality).collect();
    let latency_guided: Vec<f64> = guided.iter().map(|o| o.latency).collect();
    let latency_unguided: Vec<f64> = unguided.iter().map(|o| o.latency).collect();

    AbTestResult {
        task_type: task,
        with_stratrec: ArmSummary::of(&guided),
        without_stratrec: ArmSummary::of(&unguided),
        quality_test: paired_t_test(&quality_guided, &quality_unguided),
        latency_test: paired_t_test(&latency_guided, &latency_unguided),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stratrec_guided_deployments_win_on_quality_and_edits() {
        for task in [TaskType::SentenceTranslation, TaskType::TextCreation] {
            let result = run_ab_test(task, &AbTestConfig::default());
            assert!(
                result.with_stratrec.quality.mean > result.without_stratrec.quality.mean,
                "{task:?}: guided quality should be higher"
            );
            assert!(
                result.with_stratrec.mean_edits < result.without_stratrec.mean_edits,
                "{task:?}: guided deployments should see fewer edits"
            );
            assert!(
                result.with_stratrec.latency.mean <= result.without_stratrec.latency.mean + 0.05,
                "{task:?}: guided latency should not be noticeably worse"
            );
            assert!(
                result.stratrec_wins(0.05),
                "{task:?}: paired test should be significant"
            );
        }
    }

    #[test]
    fn results_are_reproducible_per_seed() {
        let a = run_ab_test(TaskType::SentenceTranslation, &AbTestConfig::default());
        let b = run_ab_test(TaskType::SentenceTranslation, &AbTestConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_experiments_still_produce_summaries() {
        let config = AbTestConfig {
            deployments_per_task: 2,
            seed: 5,
            ..AbTestConfig::default()
        };
        let result = run_ab_test(TaskType::TextCreation, &config);
        assert_eq!(result.with_stratrec.quality.n, 2);
        assert!(result.quality_test.is_some());
    }

    #[test]
    fn cost_stays_within_the_shared_threshold() {
        let result = run_ab_test(TaskType::SentenceTranslation, &AbTestConfig::default());
        assert!(result.with_stratrec.cost.max <= 1.0 + 1e-9);
        assert!(result.without_stratrec.cost.max <= 1.0 + 1e-9);
    }
}
