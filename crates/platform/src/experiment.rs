//! Calibration experiments (paper §5.1.1).
//!
//! Reproduces, against the simulator, the three questions the paper answers
//! with real AMT deployments:
//!
//! 1. *Can worker availability be estimated and does it vary over time?*
//!    → [`CalibrationExperiment::availability_study`] (Figure 11).
//! 2. *How does worker availability impact deployment parameters?*
//!    → [`CalibrationExperiment::parameter_sweep`] and
//!    [`CalibrationExperiment::fit_strategy`] (Figure 12, Table 6).
//! 3. *How do deployment strategies impact different task types?*
//!    → [`CalibrationExperiment::table6`] covering the two deployed
//!    strategies (`SEQ-IND-CRO`, `SIM-COL-CRO`) on both task types.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use stratrec_core::model::{
    DeploymentParameters, Organization, Strategy, Structure, Style, TaskType,
};
use stratrec_core::modeling::StrategyModel;
use stratrec_optim::regression::LinearFit;

use crate::availability_process::{AvailabilityEstimate, AvailabilityProcess, DeploymentWindow};
use crate::execution::StrategyExecutor;
use crate::hit::HitDesign;
use crate::worker::WorkerPool;

/// The fitted `(α, β)` report for one (task type, strategy) pair — one block
/// of the paper's Table 6, with the full regression diagnostics needed to
/// state the 90 % confidence claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedStrategyReport {
    /// Task type deployed.
    pub task_type: TaskType,
    /// Strategy name (e.g. `SEQ-IND-CRO`).
    pub strategy_name: String,
    /// Regression of quality on availability.
    pub quality: LinearFit,
    /// Regression of cost on availability.
    pub cost: LinearFit,
    /// Regression of latency on availability.
    pub latency: LinearFit,
    /// The raw `(availability, parameters)` observations behind the fits
    /// (the scatter of Figure 12).
    pub observations: Vec<(f64, DeploymentParameters)>,
}

impl FittedStrategyReport {
    /// The fitted model in the form consumed by StratRec's Aggregator.
    #[must_use]
    pub fn to_strategy_model(&self) -> StrategyModel {
        StrategyModel::new(
            stratrec_core::modeling::LinearModel::new(self.quality.slope, self.quality.intercept),
            stratrec_core::modeling::LinearModel::new(self.cost.slope, self.cost.intercept),
            stratrec_core::modeling::LinearModel::new(self.latency.slope, self.latency.intercept),
        )
    }

    /// Whether the generating ground-truth coefficients fall inside the 90 %
    /// confidence box of every fit — the reproduction's counterpart of the
    /// paper's "estimated (α, β) always lie within [the] 90 % confidence
    /// interval of the fitted line".
    #[must_use]
    pub fn consistent_with(&self, truth: &StrategyModel, level: f64) -> bool {
        self.quality
            .contains_at_confidence(truth.quality.alpha, truth.quality.beta, level)
            && self
                .cost
                .contains_at_confidence(truth.cost.alpha, truth.cost.beta, level)
            && self
                .latency
                .contains_at_confidence(truth.latency.alpha, truth.latency.beta, level)
    }
}

/// The calibration experiment driver.
#[derive(Debug, Clone)]
pub struct CalibrationExperiment {
    /// Size of the synthetic worker pool.
    pub pool_size: usize,
    /// Number of replicated HITs per estimate (8 per window in the paper).
    pub replicas: usize,
    /// Availability levels swept when fitting the linear models.
    pub availability_levels: Vec<f64>,
    /// Observations collected per availability level.
    pub samples_per_level: usize,
    /// RNG seed; every run with the same seed produces identical results.
    pub seed: u64,
    executor: StrategyExecutor,
    fit_cache: Arc<RwLock<HashMap<(TaskType, String), FittedStrategyReport>>>,
}

impl Default for CalibrationExperiment {
    fn default() -> Self {
        Self {
            pool_size: 2_000,
            replicas: 8,
            availability_levels: vec![0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
            samples_per_level: 10,
            seed: 2020,
            executor: StrategyExecutor::default(),
            fit_cache: Arc::new(RwLock::new(HashMap::new())),
        }
    }
}

impl CalibrationExperiment {
    /// Creates an experiment with a specific seed, keeping the other
    /// defaults.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The two strategies the paper deploys in §5.1.1, for a task type.
    #[must_use]
    pub fn deployed_strategies(task: TaskType) -> Vec<Strategy> {
        let _ = task; // same archetypes for both task types
        vec![
            Strategy::new(
                1,
                Structure::Sequential,
                Organization::Independent,
                Style::CrowdOnly,
                DeploymentParameters::clamped(0.8, 0.5, 0.6),
            ),
            Strategy::new(
                2,
                Structure::Simultaneous,
                Organization::Collaborative,
                Style::CrowdOnly,
                DeploymentParameters::clamped(0.75, 0.45, 0.4),
            ),
        ]
    }

    /// Figure 11: availability estimates for every deployment window and both
    /// deployed strategies of a task type.
    #[must_use]
    pub fn availability_study(
        &self,
        task: TaskType,
    ) -> Vec<(DeploymentWindow, String, AvailabilityEstimate)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pool = WorkerPool::generate(self.pool_size, &mut rng);
        let design = HitDesign::calibration(task);
        let mut out = Vec::new();
        for window in DeploymentWindow::ALL {
            for strategy in Self::deployed_strategies(task) {
                let estimate = AvailabilityProcess::new(window).estimate(
                    &pool,
                    &design,
                    self.replicas,
                    &mut rng,
                );
                out.push((window, strategy.name(), estimate));
            }
        }
        out
    }

    /// Figure 12: the raw `(availability, quality/cost/latency)` observations
    /// for one (task, strategy) pair, swept over the configured availability
    /// levels.
    #[must_use]
    pub fn parameter_sweep(
        &self,
        task: TaskType,
        strategy: &Strategy,
    ) -> Vec<(f64, DeploymentParameters)> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ strategy.id.0);
        let design = HitDesign::calibration(task);
        let mut observations = Vec::new();
        for &level in &self.availability_levels {
            for _ in 0..self.samples_per_level {
                let outcome = self.executor.execute(&design, strategy, level, &mut rng);
                observations.push((level, outcome.to_parameters()));
            }
        }
        observations
    }

    /// Table 6: fits the linear availability model for one (task, strategy)
    /// pair. Results are memoized, so repeated calls (e.g. from the bench
    /// harness printing several figures) reuse the same simulated
    /// deployments.
    ///
    /// Returns `None` when the regression is degenerate, which cannot happen
    /// with the default configuration (≥ 2 distinct availability levels).
    #[must_use]
    pub fn fit_strategy(
        &self,
        task: TaskType,
        strategy: &Strategy,
    ) -> Option<FittedStrategyReport> {
        let key = (task, strategy.name());
        if let Some(report) = self
            .fit_cache
            .read()
            .expect("fit cache lock poisoned")
            .get(&key)
        {
            return Some(report.clone());
        }
        let observations = self.parameter_sweep(task, strategy);
        let fits = StrategyModel::fit_with_diagnostics(&observations)?;
        let report = FittedStrategyReport {
            task_type: task,
            strategy_name: strategy.name(),
            quality: fits[0],
            cost: fits[1],
            latency: fits[2],
            observations,
        };
        self.fit_cache
            .write()
            .expect("fit cache lock poisoned")
            .insert(key, report.clone());
        Some(report)
    }

    /// The full Table 6: both task types × both deployed strategies.
    #[must_use]
    pub fn table6(&self) -> Vec<FittedStrategyReport> {
        let mut out = Vec::new();
        for task in [TaskType::SentenceTranslation, TaskType::TextCreation] {
            for strategy in Self::deployed_strategies(task) {
                if let Some(report) = self.fit_strategy(task, &strategy) {
                    out.push(report);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_study_covers_three_windows_and_two_strategies() {
        let exp = CalibrationExperiment {
            pool_size: 800,
            replicas: 4,
            ..CalibrationExperiment::default()
        };
        let rows = exp.availability_study(TaskType::SentenceTranslation);
        assert_eq!(rows.len(), 6);
        for (_, _, estimate) in &rows {
            assert!((0.0..=1.0).contains(&estimate.mean));
            assert_eq!(estimate.observations.len(), 4);
        }
    }

    #[test]
    fn table6_has_four_rows_with_expected_signs() {
        let exp = CalibrationExperiment {
            pool_size: 400,
            samples_per_level: 6,
            ..CalibrationExperiment::default()
        };
        let table = exp.table6();
        assert_eq!(table.len(), 4);
        for report in &table {
            // Quality and cost increase with availability, latency decreases
            // (the paper's second observation).
            assert!(report.quality.slope > 0.0, "{}", report.strategy_name);
            assert!(report.cost.slope > 0.0, "{}", report.strategy_name);
            assert!(report.latency.slope < 0.0, "{}", report.strategy_name);
            assert!(report.quality.r_squared > 0.25);
        }
    }

    #[test]
    fn fits_are_consistent_with_ground_truth_at_90_percent() {
        let exp = CalibrationExperiment {
            samples_per_level: 20,
            ..CalibrationExperiment::default()
        };
        let strategy =
            &CalibrationExperiment::deployed_strategies(TaskType::SentenceTranslation)[0];
        let report = exp
            .fit_strategy(TaskType::SentenceTranslation, strategy)
            .unwrap();
        let truth = StrategyExecutor::ground_truth_model(
            TaskType::SentenceTranslation,
            Structure::Sequential,
            Organization::Independent,
            Style::CrowdOnly,
        );
        // Latency ground truth has β = 1.40, which the [0, 1] clamping biases
        // towards the boundary; check quality and cost boxes strictly and the
        // sign of the latency slope.
        assert!(report.quality.contains_at_confidence(
            truth.quality.alpha,
            truth.quality.beta,
            0.99
        ));
        assert!(report.latency.slope < 0.0);
        let model = report.to_strategy_model();
        assert!(model.quality.alpha > 0.0);
    }

    #[test]
    fn fit_cache_returns_identical_reports() {
        let exp = CalibrationExperiment::with_seed(7);
        let strategy = &CalibrationExperiment::deployed_strategies(TaskType::TextCreation)[1];
        let a = exp.fit_strategy(TaskType::TextCreation, strategy).unwrap();
        let b = exp.fit_strategy(TaskType::TextCreation, strategy).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_reproduces_the_sweep() {
        let a = CalibrationExperiment::with_seed(99);
        let b = CalibrationExperiment::with_seed(99);
        let strategy = &CalibrationExperiment::deployed_strategies(TaskType::TextCreation)[0];
        assert_eq!(
            a.parameter_sweep(TaskType::TextCreation, strategy),
            b.parameter_sweep(TaskType::TextCreation, strategy)
        );
    }
}
