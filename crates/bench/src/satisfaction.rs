//! Figure 14: percentage of satisfied requests before invoking ADPaR.
//!
//! Sweeps `k`, `m`, `|S|` and `W` around the defaults (`|S| = 10 000`,
//! `m = 10`, `k = 10`, `W = 0.5`) for both strategy-parameter distributions,
//! averaging over several seeded runs as the paper does ("an average of 10
//! runs is presented").
//!
//! Interpretation note (documented in `EXPERIMENTS.md`): a request counts as
//! *satisfied* when `k` eligible strategies exist whose aggregated workforce
//! requirement fits within the expected availability `W`. This per-request
//! feasibility check is what "before invoking ADPaR" measures; the
//! shared-budget triage across competing requests is exercised separately by
//! Figures 15 and 16.

use serde::{Deserialize, Serialize};
use stratrec_core::workforce::{AggregationMode, EligibilityRule, WorkforceMatrix};
use stratrec_workload::scenario::{BatchScenario, ParameterDistribution};

/// Which scenario knob a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepVariable {
    /// Cardinality constraint `k` (Figure 14a).
    K,
    /// Batch size `m` (Figure 14b).
    BatchSize,
    /// Strategy-set size `|S|` (Figure 14c).
    StrategyCount,
    /// Worker availability `W` (Figure 14d).
    Availability,
}

impl SweepVariable {
    /// Axis label used in the rendered table.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::K => "k",
            Self::BatchSize => "m",
            Self::StrategyCount => "|S|",
            Self::Availability => "W",
        }
    }

    /// The sweep values the paper uses for this variable.
    #[must_use]
    pub fn paper_values(self) -> Vec<f64> {
        match self {
            Self::K | Self::BatchSize | Self::StrategyCount => {
                vec![10.0, 100.0, 1_000.0, 10_000.0]
            }
            Self::Availability => vec![0.5, 0.6, 0.7, 0.8, 0.9],
        }
    }

    /// Applies a sweep value to a scenario.
    #[must_use]
    pub fn apply(self, mut scenario: BatchScenario, value: f64) -> BatchScenario {
        match self {
            Self::K => scenario.k = value as usize,
            Self::BatchSize => scenario.batch_size = value as usize,
            Self::StrategyCount => scenario.strategy_count = value as usize,
            Self::Availability => scenario.availability = value,
        }
        scenario
    }
}

/// One data point of Figure 14.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SatisfactionPoint {
    /// The value of the swept variable.
    pub value: f64,
    /// Distribution of the strategy parameters.
    pub distribution: ParameterDistribution,
    /// Average fraction of requests satisfied by `BatchStrat` before ADPaR.
    pub satisfied_fraction: f64,
}

/// Runs the sweep for one variable and one distribution, averaging over
/// `runs` seeds.
#[must_use]
pub fn sweep(
    variable: SweepVariable,
    distribution: ParameterDistribution,
    base: BatchScenario,
    runs: u64,
) -> Vec<SatisfactionPoint> {
    variable
        .paper_values()
        .into_iter()
        .map(|value| {
            let rate = average_satisfaction(variable.apply(base, value), distribution, runs);
            SatisfactionPoint {
                value,
                distribution,
                satisfied_fraction: rate,
            }
        })
        .collect()
}

/// Average satisfaction rate over `runs` seeded instances of a scenario: the
/// fraction of requests for which `k` eligible strategies exist whose
/// aggregated (max-case) workforce requirement fits within `W`.
#[must_use]
pub fn average_satisfaction(
    scenario: BatchScenario,
    distribution: ParameterDistribution,
    runs: u64,
) -> f64 {
    if runs == 0 {
        return 0.0;
    }
    let total: f64 = (0..runs)
        .map(|run| {
            let instance = BatchScenario {
                distribution,
                seed: scenario.seed.wrapping_add(run),
                ..scenario
            }
            .materialize();
            // Index the strategy set once per instance; eligibility for all
            // m requests is then answered by R-tree box queries.
            let catalog = instance.catalog();
            let matrix = WorkforceMatrix::compute_with_catalog(
                &instance.requests,
                &catalog,
                &instance.models,
                EligibilityRule::default(),
            )
            .expect("generated models cover every strategy");
            let requirements = matrix.aggregate(scenario.k, AggregationMode::Max);
            let satisfied = requirements
                .iter()
                .filter(|r| {
                    r.as_ref()
                        .is_some_and(|req| req.workforce <= instance.availability.value() + 1e-12)
                })
                .count();
            if instance.requests.is_empty() {
                0.0
            } else {
                satisfied as f64 / instance.requests.len() as f64
            }
        })
        .sum();
    total / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_base() -> BatchScenario {
        BatchScenario {
            strategy_count: 200,
            batch_size: 10,
            k: 10,
            availability: 0.5,
            ..BatchScenario::default()
        }
    }

    #[test]
    fn satisfaction_is_a_fraction() {
        let rate = average_satisfaction(small_base(), ParameterDistribution::Uniform, 3);
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn more_strategies_do_not_hurt_satisfaction() {
        // Figure 14c: satisfaction grows (weakly) with |S|.
        let few = average_satisfaction(
            BatchScenario {
                strategy_count: 20,
                ..small_base()
            },
            ParameterDistribution::Uniform,
            5,
        );
        let many = average_satisfaction(
            BatchScenario {
                strategy_count: 2_000,
                ..small_base()
            },
            ParameterDistribution::Uniform,
            5,
        );
        assert!(many + 1e-9 >= few, "many={many}, few={few}");
    }

    #[test]
    fn higher_availability_helps() {
        // Figure 14d shape.
        let low = average_satisfaction(
            BatchScenario {
                availability: 0.5,
                ..small_base()
            },
            ParameterDistribution::Normal,
            5,
        );
        let high = average_satisfaction(
            BatchScenario {
                availability: 0.9,
                ..small_base()
            },
            ParameterDistribution::Normal,
            5,
        );
        assert!(high + 1e-9 >= low, "high={high}, low={low}");
    }

    #[test]
    fn larger_k_reduces_satisfaction() {
        // Figure 14a shape: requiring more strategies per request can only
        // make requests harder to satisfy.
        let small_k = average_satisfaction(
            BatchScenario {
                k: 2,
                ..small_base()
            },
            ParameterDistribution::Uniform,
            5,
        );
        let large_k = average_satisfaction(
            BatchScenario {
                k: 100,
                ..small_base()
            },
            ParameterDistribution::Uniform,
            5,
        );
        assert!(
            small_k + 1e-9 >= large_k,
            "small_k={small_k}, large_k={large_k}"
        );
    }

    #[test]
    fn sweep_produces_one_point_per_value() {
        let points = sweep(
            SweepVariable::Availability,
            ParameterDistribution::Uniform,
            small_base(),
            2,
        );
        assert_eq!(points.len(), 5);
        assert_eq!(SweepVariable::Availability.label(), "W");
        assert_eq!(SweepVariable::K.paper_values().len(), 4);
    }

    #[test]
    fn zero_runs_yield_zero() {
        assert_eq!(
            average_satisfaction(small_base(), ParameterDistribution::Uniform, 0),
            0.0
        );
    }
}
