//! # Benchmark harness
//!
//! Drivers that regenerate every table and figure of the paper's evaluation
//! (§5). Each module produces plain data rows; the binaries under
//! `src/bin/` print them as aligned text tables so the output can be compared
//! side-by-side with the paper (see `EXPERIMENTS.md` at the repository root).
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`realdata`] | Figure 11, Figure 12, Table 6, Figure 13 (simulated AMT) |
//! | [`satisfaction`] | Figure 14 (percentage of satisfied requests) |
//! | [`objective`] | Figure 15 (throughput) and Figure 16 (pay-off + approximation factor) |
//! | [`adpar_quality`] | Figure 17 (ADPaR objective vs baselines) |
//! | [`scalability`] | Figure 18 (running times) |
//! | [`report`] | plain-text table rendering shared by the binaries |

#![forbid(unsafe_code)]

pub mod adpar_quality;
pub mod artifact;
pub mod objective;
pub mod realdata;
pub mod report;
pub mod satisfaction;
pub mod scalability;
