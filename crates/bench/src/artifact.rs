//! Guarded `BENCH_*.json` artifact writes.
//!
//! The bench binaries emit machine-readable trajectory artifacts at the
//! workspace root, and those files are **committed**: they record real
//! measured runs. CI's bench-smoke leg runs the same binaries with
//! `STRATREC_BENCH_SMOKE=1` as a fast compile-and-exercise pass — its
//! numbers are meaningless, and letting a smoke run overwrite a committed
//! real-run artifact would silently corrupt the recorded trajectory. The
//! guard here refuses exactly that: a smoke run never replaces an artifact
//! whose JSON says `"smoke": false`.

use std::path::Path;

/// True when this process runs in bench smoke mode
/// (`STRATREC_BENCH_SMOKE` set to a non-empty value other than `0`).
#[must_use]
pub fn smoke_mode() -> bool {
    std::env::var_os("STRATREC_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Writes `json` to `path` — unless this is a smoke run and the existing
/// artifact records a real (non-smoke) run, in which case the committed
/// data is kept and a notice is printed to stderr.
///
/// # Panics
///
/// Panics when the write fails: a silent failure would let CI archive the
/// stale committed copy as if it were this run's trajectory.
pub fn write_json_artifact(path: &str, json: &str, smoke: bool) {
    let name = Path::new(path)
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or(path);
    if smoke {
        if let Ok(existing) = std::fs::read_to_string(path) {
            if existing.contains("\"smoke\": false") {
                eprintln!("smoke run: keeping committed non-smoke artifact {name}");
                return;
            }
        }
    }
    std::fs::write(path, json).unwrap_or_else(|error| panic!("could not write {path}: {error}"));
    eprintln!("wrote {name} (smoke: {smoke})");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> String {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "stratrec_artifact_{tag}_{}.json",
            std::process::id()
        ));
        path.to_str().expect("utf-8 temp path").to_owned()
    }

    #[test]
    fn smoke_runs_never_clobber_a_committed_real_run() {
        let path = temp_path("guard");
        let real = "{\"smoke\": false, \"x\": 1}\n";
        std::fs::write(&path, real).unwrap();
        write_json_artifact(&path, "{\"smoke\": true, \"x\": 2}\n", true);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), real);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn smoke_runs_may_replace_smoke_artifacts_and_real_runs_replace_anything() {
        let path = temp_path("replace");
        std::fs::write(&path, "{\"smoke\": true, \"x\": 1}\n").unwrap();
        let next_smoke = "{\"smoke\": true, \"x\": 2}\n";
        write_json_artifact(&path, next_smoke, true);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), next_smoke);
        let real = "{\"smoke\": false, \"x\": 3}\n";
        write_json_artifact(&path, real, false);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), real);
        // A later real run may overwrite a committed real run: fresh
        // measurements supersede old ones.
        let newer = "{\"smoke\": false, \"x\": 4}\n";
        write_json_artifact(&path, newer, false);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), newer);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn a_missing_artifact_is_written_even_in_smoke_mode() {
        let path = temp_path("missing");
        std::fs::remove_file(&path).ok();
        write_json_artifact(&path, "{\"smoke\": true}\n", true);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "{\"smoke\": true}\n"
        );
        std::fs::remove_file(&path).ok();
    }
}
