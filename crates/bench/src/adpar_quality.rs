//! Figure 17: quality of the ADPaR solvers.
//!
//! Plots the Euclidean distance between the original and the alternative
//! deployment parameters (smaller is better) for `ADPaR-Exact`, `Baseline2`
//! and `Baseline3`, adding `ADPaRB` on the reduced grids where exhaustive
//! search is feasible. Panels vary `|S|` (200…1000, or 10…30 with brute
//! force) and `k` (10…50, or 5…15 with brute force).

use serde::{Deserialize, Serialize};
use stratrec_core::adpar::{
    AdparBaseline2, AdparBaseline3, AdparBruteForce, AdparExact, AdparProblem, AdparSolver,
};
use stratrec_workload::scenario::AdparScenario;

/// Distances achieved by each solver on one instance (averaged over seeds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdparQualityPoint {
    /// The swept value (either `|S|` or `k` depending on the panel).
    pub value: usize,
    /// `ADPaR-Exact` distance.
    pub exact: f64,
    /// `Baseline2` distance.
    pub baseline2: f64,
    /// `Baseline3` distance.
    pub baseline3: f64,
    /// `ADPaRB` distance when it was run (reduced grids only).
    pub brute_force: Option<f64>,
}

/// Which knob the panel varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdparPanel {
    /// Vary the strategy-set size `|S|` (Figures 17a / 17b).
    StrategyCount,
    /// Vary the cardinality constraint `k` (Figures 17c / 17d).
    K,
}

impl AdparPanel {
    /// Axis label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::StrategyCount => "|S|",
            Self::K => "k",
        }
    }

    /// Sweep values used by the paper, with and without brute force.
    #[must_use]
    pub fn paper_values(self, with_brute_force: bool) -> Vec<usize> {
        match (self, with_brute_force) {
            (Self::StrategyCount, false) => vec![200, 400, 600, 800, 1000],
            (Self::StrategyCount, true) => vec![10, 20, 30],
            (Self::K, false) => vec![10, 20, 30, 40, 50],
            (Self::K, true) => vec![5, 10, 15],
        }
    }

    fn apply(self, mut scenario: AdparScenario, value: usize) -> AdparScenario {
        match self {
            Self::StrategyCount => scenario.strategy_count = value,
            Self::K => scenario.k = value,
        }
        scenario
    }
}

/// Runs one panel, averaging each solver's distance over `runs` seeds.
#[must_use]
pub fn run_panel(
    panel: AdparPanel,
    base: AdparScenario,
    with_brute_force: bool,
    runs: u64,
) -> Vec<AdparQualityPoint> {
    panel
        .paper_values(with_brute_force)
        .into_iter()
        .map(|value| {
            let scenario = panel.apply(base, value);
            let mut exact = 0.0;
            let mut baseline2 = 0.0;
            let mut baseline3 = 0.0;
            let mut brute = 0.0;
            let n = runs.max(1);
            for run in 0..n {
                let instance = AdparScenario {
                    seed: scenario.seed.wrapping_add(run),
                    ..scenario
                }
                .materialize();
                // All four solvers share the instance's indexed catalog;
                // Baseline3 reuses its R-tree instead of bulk-loading one
                // per solve.
                let catalog = instance.catalog();
                let problem = AdparProblem::with_catalog(&instance.request, &catalog, instance.k);
                exact += AdparExact.solve(&problem).expect("|S| >= k").distance;
                baseline2 += AdparBaseline2.solve(&problem).expect("|S| >= k").distance;
                baseline3 += AdparBaseline3::default()
                    .solve(&problem)
                    .expect("|S| >= k")
                    .distance;
                if with_brute_force {
                    brute += AdparBruteForce.solve(&problem).expect("|S| >= k").distance;
                }
            }
            let n = n as f64;
            AdparQualityPoint {
                value,
                exact: exact / n,
                baseline2: baseline2 / n,
                baseline3: baseline3 / n,
                brute_force: with_brute_force.then_some(brute / n),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_base() -> AdparScenario {
        // Keep |S| above the largest k swept by the K panel (50).
        AdparScenario {
            strategy_count: 60,
            k: 5,
            ..AdparScenario::default()
        }
    }

    #[test]
    fn exact_matches_brute_force_and_beats_baselines() {
        let base = AdparScenario::brute_force_defaults();
        for point in run_panel(AdparPanel::K, base, true, 2) {
            let brute = point.brute_force.expect("brute force requested");
            // Observation 3: ADPaR-Exact returns exact solutions…
            assert!((point.exact - brute).abs() < 1e-9, "value {}", point.value);
            // …and significantly outperforms the two baselines.
            assert!(point.baseline2 + 1e-9 >= point.exact);
            assert!(point.baseline3 + 1e-9 >= point.exact);
        }
    }

    #[test]
    fn distance_decreases_with_more_strategies() {
        // Figure 17a: more strategies ⇒ smaller change needed.
        let points = run_panel(AdparPanel::StrategyCount, small_base(), false, 3);
        let first = points.first().unwrap().exact;
        let last = points.last().unwrap().exact;
        assert!(last <= first + 1e-9, "first={first}, last={last}");
    }

    #[test]
    fn distance_increases_with_k() {
        // Figure 17c: a larger k forces larger relaxations.
        let points = run_panel(AdparPanel::K, small_base(), false, 3);
        let first = points.first().unwrap().exact;
        let last = points.last().unwrap().exact;
        assert!(last + 1e-9 >= first, "first={first}, last={last}");
    }

    #[test]
    fn panel_metadata_is_consistent() {
        assert_eq!(AdparPanel::K.label(), "k");
        assert_eq!(AdparPanel::StrategyCount.paper_values(false).len(), 5);
        assert_eq!(
            AdparPanel::StrategyCount.paper_values(true),
            vec![10, 20, 30]
        );
        let points = run_panel(AdparPanel::StrategyCount, small_base(), false, 1);
        assert_eq!(points.len(), 5);
        assert!(points.iter().all(|p| p.brute_force.is_none()));
    }
}
