//! Figure 13: average quality, cost and latency of deployments with and
//! without StratRec, with paired significance tests.

use stratrec_bench::realdata::figure13;
use stratrec_bench::report::{fmt3, render_table};
use stratrec_platform::abtest::AbTestConfig;

fn main() {
    let results = figure13(&AbTestConfig::default());
    for result in results {
        let rows = vec![
            vec![
                "With StratRec".to_string(),
                fmt3(result.with_stratrec.quality.mean),
                fmt3(result.with_stratrec.cost.mean),
                fmt3(result.with_stratrec.latency.mean),
                fmt3(result.with_stratrec.mean_edits),
            ],
            vec![
                "Without StratRec".to_string(),
                fmt3(result.without_stratrec.quality.mean),
                fmt3(result.without_stratrec.cost.mean),
                fmt3(result.without_stratrec.latency.mean),
                fmt3(result.without_stratrec.mean_edits),
            ],
        ];
        println!(
            "{}",
            render_table(
                &format!("Figure 13 — {}", result.task_type.label()),
                &["Arm", "Quality", "Cost", "Latency", "Mean edits"],
                &rows
            )
        );
        if let Some(test) = result.quality_test {
            println!(
                "  quality difference: +{:.3} (p = {:.4}, significant at 5%: {})",
                test.mean_difference,
                test.p_value,
                test.significant_at(0.05)
            );
        }
        if let Some(test) = result.latency_test {
            println!(
                "  latency difference: {:+.3} (p = {:.4})",
                test.mean_difference, test.p_value
            );
        }
        println!();
    }
}
