//! Figure 17: Euclidean distance between the original and alternative
//! deployment parameters for ADPaR-Exact, Baseline2, Baseline3 and (on the
//! reduced grids) ADPaRB.

use stratrec_bench::adpar_quality::{run_panel, AdparPanel};
use stratrec_bench::report::{fmt3, render_table};
use stratrec_workload::scenario::AdparScenario;

fn main() {
    let configurations = [
        ("without BruteForce", AdparScenario::default(), false),
        (
            "with BruteForce",
            AdparScenario::brute_force_defaults(),
            true,
        ),
    ];
    for panel in [AdparPanel::StrategyCount, AdparPanel::K] {
        for (label, base, with_brute) in configurations {
            let rows: Vec<Vec<String>> = run_panel(panel, base, with_brute, 10)
                .into_iter()
                .map(|p| {
                    let mut row = vec![
                        format!("{}", p.value),
                        fmt3(p.exact),
                        fmt3(p.baseline2),
                        fmt3(p.baseline3),
                    ];
                    if let Some(brute) = p.brute_force {
                        row.push(fmt3(brute));
                    }
                    row
                })
                .collect();
            let mut headers = vec![panel.label(), "ADPaR-Exact", "Baseline2", "Baseline3"];
            if with_brute {
                headers.push("ADPaRB");
            }
            println!(
                "{}",
                render_table(
                    &format!(
                        "Figure 17 — distance between d and d', varying {} ({label})",
                        panel.label()
                    ),
                    &headers,
                    &rows
                )
            );
        }
    }
}
