//! Figure 18: scalability of BatchStrat (vs BruteForce) and ADPaR-Exact.
//!
//! Pass `--paper-scale` for the paper's full grids (m up to 800, |S| up to
//! 25 000, k up to 250); the default grids finish in seconds.

use stratrec_bench::report::{fmt_secs, render_table};
use stratrec_bench::scalability::{
    adpar_scalability, batch_scalability, panel_values, ScalabilityPanel,
};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");

    // Panel (a): batch deployment vs m.
    let values = panel_values(ScalabilityPanel::BatchSize, paper_scale);
    // Brute force enumerates 2^m subsets; cap it where it stays tractable.
    let rows: Vec<Vec<String>> = batch_scalability(&values, 25, 2020)
        .into_iter()
        .map(|p| {
            vec![
                format!("{}", p.value),
                fmt_secs(p.primary_seconds),
                p.comparison_seconds
                    .map(fmt_secs)
                    .unwrap_or_else(|| "(skipped)".to_string()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 18a — batch deployment running time, varying m",
            &["m", "BatchStrat", "BruteForce"],
            &rows
        )
    );

    // Panels (b) and (c): ADPaR-Exact vs |S| and k.
    let base_s = if paper_scale { 10_000 } else { 1_000 };
    for (panel, title) in [
        (
            ScalabilityPanel::StrategyCount,
            "Figure 18b — ADPaR-Exact running time, varying |S|",
        ),
        (
            ScalabilityPanel::K,
            "Figure 18c — ADPaR-Exact running time, varying k",
        ),
    ] {
        let values = panel_values(panel, paper_scale);
        let rows: Vec<Vec<String>> = adpar_scalability(panel, &values, base_s, 2020)
            .into_iter()
            .map(|p| vec![format!("{}", p.value), fmt_secs(p.primary_seconds)])
            .collect();
        println!(
            "{}",
            render_table(title, &[panel.label(), "ADPaR-Exact"], &rows)
        );
    }
}
