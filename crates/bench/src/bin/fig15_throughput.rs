//! Figure 15: aggregated throughput of BruteForce, BatchStrat and BaselineG,
//! varying k, m and |S| on the reduced brute-force grid.

use stratrec_bench::objective::{run_panel, Panel};
use stratrec_bench::report::{fmt3, render_table};
use stratrec_core::batch::BatchObjective;
use stratrec_workload::scenario::BatchScenario;

fn main() {
    let base = BatchScenario::brute_force_defaults();
    for panel in [Panel::K, Panel::BatchSize, Panel::StrategyCount] {
        let rows: Vec<Vec<String>> = run_panel(BatchObjective::Throughput, panel, base, 10)
            .into_iter()
            .map(|p| {
                vec![
                    format!("{}", p.value),
                    fmt3(p.brute_force),
                    fmt3(p.batchstrat),
                    fmt3(p.baseline_g),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "Figure 15 — aggregated throughput, varying {}",
                    panel.label()
                ),
                &[panel.label(), "BruteForce", "BatchStrat", "BaselineG"],
                &rows
            )
        );
    }
}
