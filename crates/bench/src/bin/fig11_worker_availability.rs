//! Figure 11: worker-availability estimation across deployment windows.

use stratrec_bench::realdata::figure11;
use stratrec_bench::report::{fmt3, render_table};
use stratrec_core::model::TaskType;

fn main() {
    for task in [TaskType::SentenceTranslation, TaskType::TextCreation] {
        let rows: Vec<Vec<String>> = figure11(task, 2020)
            .into_iter()
            .map(|r| vec![r.window, r.strategy, fmt3(r.mean), fmt3(r.std_err)])
            .collect();
        println!(
            "{}",
            render_table(
                &format!("Figure 11 — worker availability ({})", task.label()),
                &["Window", "Strategy", "Mean availability", "Std err"],
                &rows
            )
        );
    }
}
