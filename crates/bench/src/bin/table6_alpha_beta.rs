//! Table 6: fitted (α, β) per task type, strategy and parameter, with 90 %
//! confidence intervals.

use stratrec_bench::realdata::table6;
use stratrec_bench::report::{fmt3, render_table};

fn main() {
    let mut rows = Vec::new();
    for report in table6(2020) {
        for (parameter, fit) in [
            ("Quality", report.quality),
            ("Cost", report.cost),
            ("Latency", report.latency),
        ] {
            let (alpha_lo, alpha_hi) = fit.slope_confidence_interval(0.90);
            rows.push(vec![
                format!("{} {}", report.task_type.label(), report.strategy_name),
                parameter.to_string(),
                fmt3(fit.slope),
                fmt3(fit.intercept),
                format!("[{}, {}]", fmt3(alpha_lo), fmt3(alpha_hi)),
                fmt3(fit.r_squared),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "Table 6 — α, β estimation (simulated deployments)",
            &[
                "Task-Strategy",
                "Parameter",
                "alpha",
                "beta",
                "alpha 90% CI",
                "R^2"
            ],
            &rows
        )
    );
}
