//! Reproduces the paper's running example (Table 1) end to end, including the
//! ADPaR-Exact trace tables (Tables 2–5). Pass `--trace` for the full trace.

use stratrec_bench::report::{fmt3, render_table};
use stratrec_core::adpar::trace::AdparTrace;
use stratrec_core::adpar::AdparProblem;
use stratrec_core::availability::AvailabilityPdf;
use stratrec_core::batch::BatchObjective;
use stratrec_core::stratrec::{StratRec, StratRecConfig};
use stratrec_core::workforce::AggregationMode;

fn main() {
    let trace_requested = std::env::args().any(|a| a == "--trace");
    let strategies = stratrec_core::examples_data::running_example_strategies();
    let requests = stratrec_core::examples_data::running_example_requests();
    let models = stratrec_core::examples_data::running_example_models();

    let mut rows = Vec::new();
    for (label, params) in requests
        .iter()
        .map(|r| (format!("d{}", r.id.0), r.params))
        .chain(
            strategies
                .iter()
                .map(|s| (format!("s{} = {}", s.id.0, s.name()), s.params)),
        )
    {
        rows.push(vec![
            label,
            fmt3(params.quality),
            fmt3(params.cost),
            fmt3(params.latency),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table 1 — deployment requests and strategies",
            &["", "Quality", "Cost", "Latency"],
            &rows
        )
    );

    let layer = StratRec::new(StratRecConfig {
        k: 3,
        objective: BatchObjective::Throughput,
        aggregation: AggregationMode::Max,
    });
    let pdf = AvailabilityPdf::new(&[(0.7, 0.5), (0.9, 0.5)]).expect("valid pdf");
    let report = layer
        .process_batch(&requests, &strategies, &models, &pdf)
        .expect("models cover every strategy");
    println!(
        "Expected worker availability W = {:.2}",
        report.availability.value()
    );
    for rec in &report.batch.satisfied {
        let names: Vec<String> = rec
            .strategy_indices
            .iter()
            .map(|&i| format!("s{}", strategies[i].id.0))
            .collect();
        println!(
            "d{} satisfied with {{{}}} (workforce {:.3})",
            requests[rec.request_index].id.0,
            names.join(", "),
            rec.workforce
        );
    }
    for alt in &report.alternatives {
        let request = &requests[alt.request_index];
        match &alt.solution {
            Ok(solution) => {
                let names: Vec<String> = solution
                    .strategy_indices
                    .iter()
                    .map(|&i| format!("s{}", strategies[i].id.0))
                    .collect();
                println!(
                    "d{} unsatisfied -> ADPaR suggests (quality {:.2}, cost {:.2}, latency {:.2}) with {{{}}}, distance {:.4}",
                    request.id.0,
                    solution.alternative.quality,
                    solution.alternative.cost,
                    solution.alternative.latency,
                    names.join(", "),
                    solution.distance
                );
            }
            Err(err) => println!("d{}: no alternative exists ({err})", request.id.0),
        }
    }

    if trace_requested {
        println!("\nADPaR-Exact trace for d2 (Tables 2-5):");
        let problem = AdparProblem::new(&requests[1], &strategies, 3);
        let trace = AdparTrace::compute(&problem).expect("valid instance");
        println!("{}", trace.render());
    }
}
