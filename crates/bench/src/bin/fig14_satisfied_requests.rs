//! Figure 14: percentage of satisfied requests before invoking ADPaR, varying
//! k, m, |S| and W for uniform and normal strategy distributions.
//!
//! Pass `--paper-scale` to run the full |S| = 10 000 defaults (slower);
//! otherwise a scaled-down default keeps the run short.

use stratrec_bench::report::{fmt3, render_table};
use stratrec_bench::satisfaction::{sweep, SweepVariable};
use stratrec_workload::scenario::{BatchScenario, ParameterDistribution};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let base = if paper_scale {
        BatchScenario::default()
    } else {
        BatchScenario {
            strategy_count: 1_000,
            ..BatchScenario::default()
        }
    };
    let runs = if paper_scale { 10 } else { 5 };

    for variable in [
        SweepVariable::K,
        SweepVariable::BatchSize,
        SweepVariable::StrategyCount,
        SweepVariable::Availability,
    ] {
        let mut rows = Vec::new();
        for value in variable.paper_values() {
            let mut row = vec![format!("{value}")];
            for distribution in ParameterDistribution::ALL {
                let points = sweep(variable, distribution, base, runs);
                let point = points
                    .iter()
                    .find(|p| (p.value - value).abs() < 1e-9)
                    .expect("value swept");
                row.push(fmt3(point.satisfied_fraction));
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                &format!(
                    "Figure 14 — % satisfied requests, varying {}",
                    variable.label()
                ),
                &[variable.label(), "Uniform", "Normal"],
                &rows
            )
        );
    }
}
