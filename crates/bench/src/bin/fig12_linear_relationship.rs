//! Figure 12: relationship between deployment parameters and worker
//! availability (one panel per task type × strategy).

use stratrec_bench::realdata::table6;
use stratrec_bench::report::{fmt3, render_table};

fn main() {
    for report in table6(2020) {
        // Average the observed parameters per availability level, mirroring
        // the per-level points of Figure 12.
        let mut levels: Vec<f64> = report.observations.iter().map(|(w, _)| *w).collect();
        levels.sort_by(f64::total_cmp);
        levels.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let rows: Vec<Vec<String>> = levels
            .iter()
            .map(|&level| {
                let at_level: Vec<_> = report
                    .observations
                    .iter()
                    .filter(|(w, _)| (*w - level).abs() < 1e-9)
                    .map(|(_, p)| *p)
                    .collect();
                let n = at_level.len() as f64;
                let mean = |f: fn(&stratrec_core::model::DeploymentParameters) -> f64| {
                    at_level.iter().map(f).sum::<f64>() / n
                };
                vec![
                    fmt3(level),
                    fmt3(mean(|p| p.quality)),
                    fmt3(mean(|p| p.cost)),
                    fmt3(mean(|p| p.latency)),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "Figure 12 — {} {}",
                    report.task_type.label(),
                    report.strategy_name
                ),
                &["Worker availability", "Quality", "Cost", "Latency"],
                &rows
            )
        );
    }
}
