//! Figures 11–13 and Table 6: the (simulated) real-data experiments.
//!
//! Thin drivers over `stratrec-platform` that collect the rows the figure
//! binaries print. The with/without-StratRec comparison (Figure 13) runs the
//! two task types on separate `std::thread::scope` threads, since each arm
//! simulates hundreds of HIT executions.

use serde::{Deserialize, Serialize};
use stratrec_core::model::TaskType;
use stratrec_platform::abtest::{run_ab_test, AbTestConfig, AbTestResult};
use stratrec_platform::experiment::{CalibrationExperiment, FittedStrategyReport};
use stratrec_platform::DeploymentWindow;

/// One row of Figure 11: mean availability and its standard error for a
/// (window, strategy) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityRow {
    /// Deployment window label.
    pub window: String,
    /// Strategy name (`SEQ-IND-CRO` / `SIM-COL-CRO`).
    pub strategy: String,
    /// Mean estimated availability.
    pub mean: f64,
    /// Standard error (the paper's error bars).
    pub std_err: f64,
}

/// Figure 11 rows for one task type.
#[must_use]
pub fn figure11(task: TaskType, seed: u64) -> Vec<AvailabilityRow> {
    let experiment = CalibrationExperiment::with_seed(seed);
    experiment
        .availability_study(task)
        .into_iter()
        .map(|(window, strategy, estimate)| AvailabilityRow {
            window: window_label(window),
            strategy,
            mean: estimate.mean,
            std_err: estimate.std_err,
        })
        .collect()
}

fn window_label(window: DeploymentWindow) -> String {
    window.label().to_string()
}

/// Table 6 / Figure 12: the fitted `(α, β)` reports for both task types and
/// both deployed strategies.
#[must_use]
pub fn table6(seed: u64) -> Vec<FittedStrategyReport> {
    CalibrationExperiment::with_seed(seed).table6()
}

/// Figure 13: the mirrored with/without-StratRec results for both task
/// types, run concurrently.
#[must_use]
pub fn figure13(config: &AbTestConfig) -> Vec<AbTestResult> {
    let tasks = [TaskType::SentenceTranslation, TaskType::TextCreation];
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .iter()
            .map(|&task| scope.spawn(move || run_ab_test(task, config)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ab-test thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_has_six_rows_per_task() {
        let rows = figure11(TaskType::SentenceTranslation, 1);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.mean)));
        let windows: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.window.as_str()).collect();
        assert_eq!(windows.len(), 3);
    }

    #[test]
    fn table6_reports_both_tasks_and_strategies() {
        let reports = table6(1);
        assert_eq!(reports.len(), 4);
        assert!(reports
            .iter()
            .any(|r| r.task_type == TaskType::TextCreation && r.strategy_name == "SIM-COL-CRO"));
    }

    #[test]
    fn figure13_shows_stratrec_advantage_for_both_tasks() {
        let results = figure13(&AbTestConfig {
            deployments_per_task: 6,
            ..AbTestConfig::default()
        });
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.with_stratrec.quality.mean > r.without_stratrec.quality.mean);
        }
    }
}
