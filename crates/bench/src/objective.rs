//! Figures 15 and 16: aggregated objective value of `BatchStrat` against
//! `Brute Force` and `BaselineG`, for throughput and pay-off.
//!
//! Uses the paper's reduced grid (`k = 10`, `m = 5`, `|S| = 30`, `W = 0.5`
//! by default) because brute force "does not scale beyond that", varying one
//! of `k`, `m`, `|S|` over `{10, 20, 30}` per panel.
//!
//! Following the synthetic setup of §5.2 (strategy parameter triples and
//! availability models are generated independently), eligibility is decided
//! by the availability models alone ([`EligibilityRule::ModelOnly`]): with
//! only 30 random strategies, demanding `k = 10` of them to also dominate the
//! request's thresholds would make almost every instance infeasible, which is
//! not what Figures 15–16 show.

use serde::{Deserialize, Serialize};
use stratrec_core::batch::{BatchAlgorithm, BatchObjective, BatchStrat};
use stratrec_core::workforce::{AggregationMode, EligibilityRule};
use stratrec_workload::scenario::BatchScenario;

/// Which knob a panel varies (the paper uses the same three panels for both
/// figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Panel {
    /// Vary `k` (Figures 15a / 16a).
    K,
    /// Vary `m` (Figures 15b / 16b).
    BatchSize,
    /// Vary `|S|` (Figures 15c / 16c).
    StrategyCount,
}

impl Panel {
    /// Axis label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::K => "k",
            Self::BatchSize => "m",
            Self::StrategyCount => "|S|",
        }
    }

    /// The sweep values used by the paper.
    #[must_use]
    pub fn paper_values(self) -> Vec<usize> {
        vec![10, 20, 30]
    }

    fn apply(self, mut scenario: BatchScenario, value: usize) -> BatchScenario {
        match self {
            Self::K => scenario.k = value,
            Self::BatchSize => scenario.batch_size = value,
            Self::StrategyCount => scenario.strategy_count = value,
        }
        scenario
    }
}

/// One data point: the three algorithms' objective values on identical
/// instances (averaged over seeds), plus the empirical approximation factor
/// of `BatchStrat` against brute force.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectivePoint {
    /// The swept value.
    pub value: usize,
    /// Average objective achieved by exhaustive search.
    pub brute_force: f64,
    /// Average objective achieved by `BatchStrat`.
    pub batchstrat: f64,
    /// Average objective achieved by `BaselineG`.
    pub baseline_g: f64,
    /// `batchstrat / brute_force` (1.0 when brute force achieves zero).
    pub approximation_factor: f64,
}

/// Runs one panel for one objective, averaging over `runs` seeds.
#[must_use]
pub fn run_panel(
    objective: BatchObjective,
    panel: Panel,
    base: BatchScenario,
    runs: u64,
) -> Vec<ObjectivePoint> {
    panel
        .paper_values()
        .into_iter()
        .map(|value| {
            let scenario = panel.apply(base, value);
            let mut sums = [0.0_f64; 3];
            for run in 0..runs.max(1) {
                let instance = BatchScenario {
                    seed: scenario.seed.wrapping_add(run),
                    ..scenario
                }
                .materialize();
                // This experiment runs under `EligibilityRule::ModelOnly`,
                // where every cell is feasible by definition — the catalog's
                // R-tree would never be queried, so the scan path is used
                // deliberately here.
                for (slot, algorithm) in [
                    BatchAlgorithm::BruteForce,
                    BatchAlgorithm::BatchStrat,
                    BatchAlgorithm::BaselineG,
                ]
                .into_iter()
                .enumerate()
                {
                    let outcome = BatchStrat::new(objective, AggregationMode::Max)
                        .with_algorithm(algorithm)
                        .with_eligibility(EligibilityRule::ModelOnly)
                        .recommend_with_models(
                            &instance.requests,
                            &instance.strategies,
                            &instance.models,
                            scenario.k,
                            instance.availability,
                        )
                        .expect("generated models cover every strategy");
                    sums[slot] += outcome.objective_value;
                }
            }
            let n = runs.max(1) as f64;
            let brute_force = sums[0] / n;
            let batchstrat = sums[1] / n;
            let baseline_g = sums[2] / n;
            ObjectivePoint {
                value,
                brute_force,
                batchstrat,
                baseline_g,
                approximation_factor: if brute_force <= f64::EPSILON {
                    1.0
                } else {
                    batchstrat / brute_force
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stratrec_workload::scenario::ParameterDistribution;

    fn base() -> BatchScenario {
        BatchScenario {
            distribution: ParameterDistribution::Uniform,
            k: 5,
            ..BatchScenario::brute_force_defaults()
        }
    }

    #[test]
    fn throughput_batchstrat_matches_brute_force() {
        // Theorem 2: BatchStrat is exact for throughput.
        for point in run_panel(BatchObjective::Throughput, Panel::BatchSize, base(), 3) {
            assert!(
                (point.batchstrat - point.brute_force).abs() < 1e-9,
                "value {}: {} vs {}",
                point.value,
                point.batchstrat,
                point.brute_force
            );
        }
    }

    #[test]
    fn payoff_approximation_factor_is_at_least_one_half() {
        for panel in [Panel::K, Panel::BatchSize, Panel::StrategyCount] {
            for point in run_panel(BatchObjective::Payoff, panel, base(), 3) {
                assert!(point.approximation_factor >= 0.5 - 1e-9);
                assert!(point.approximation_factor <= 1.0 + 1e-9);
                // Observation 1 of the paper: the empirical factor stays
                // above 0.9, far better than the theoretical 1/2.
                assert!(
                    point.approximation_factor > 0.85,
                    "panel {panel:?} value {}: factor {}",
                    point.value,
                    point.approximation_factor
                );
            }
        }
    }

    #[test]
    fn baseline_g_never_beats_brute_force() {
        for point in run_panel(BatchObjective::Payoff, Panel::K, base(), 3) {
            assert!(point.baseline_g <= point.brute_force + 1e-9);
        }
    }

    #[test]
    fn panels_expose_paper_values_and_labels() {
        assert_eq!(Panel::K.paper_values(), vec![10, 20, 30]);
        assert_eq!(Panel::StrategyCount.label(), "|S|");
        let points = run_panel(BatchObjective::Throughput, Panel::K, base(), 1);
        assert_eq!(points.len(), 3);
    }
}
