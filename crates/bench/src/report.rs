//! Plain-text table rendering for the figure binaries.

/// Renders a table with a header row and aligned columns, returning the
/// formatted string (one trailing newline).
#[must_use]
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                format!(
                    "{cell:<width$}",
                    width = widths.get(i).copied().unwrap_or(0)
                )
            })
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

/// Formats a float with three decimal places.
#[must_use]
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a duration in seconds with sub-millisecond resolution.
#[must_use]
pub fn fmt_secs(seconds: f64) -> String {
    if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_contains_all_cells() {
        let rows = vec![
            vec!["10".to_string(), "0.9".to_string()],
            vec!["10000".to_string(), "0.75".to_string()],
        ];
        let table = render_table("Figure X", &["k", "satisfied"], &rows);
        assert!(table.starts_with("Figure X\n"));
        assert!(table.contains("10000"));
        assert!(table.contains("satisfied"));
        let header_line = table.lines().nth(1).unwrap();
        assert!(header_line.starts_with("k    "));
    }

    #[test]
    fn float_and_duration_formatting() {
        assert_eq!(fmt3(0.5), "0.500");
        assert_eq!(fmt_secs(0.0015), "1.50 ms");
        assert_eq!(fmt_secs(2.5), "2.50 s");
    }
}
