//! Figure 18: scalability of `BatchStrat` and `ADPaR-Exact`.
//!
//! Measures wall-clock running times while sweeping the batch size `m`
//! (Figure 18a, `BatchStrat` vs `Brute Force`), the strategy-set size `|S|`
//! (Figure 18b, `ADPaR-Exact`) and the cardinality `k` (Figure 18c). Absolute
//! numbers obviously differ from the paper's Python-on-i9 setup; the point
//! reproduced is the *shape*: brute force explodes exponentially in `m` while
//! `BatchStrat` stays linear, and `ADPaR-Exact` grows polynomially but
//! remains practical for large `|S|` and `k`.
//!
//! The sweeps default to scaled-down grids so `cargo bench`/CI stay fast;
//! pass `--paper-scale` to the `fig18_scalability` binary for the full grids.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use stratrec_core::adpar::{AdparExact, AdparProblem, AdparSolver};
use stratrec_core::batch::{BatchAlgorithm, BatchObjective, BatchStrat};
use stratrec_core::workforce::AggregationMode;
use stratrec_workload::scenario::{AdparScenario, BatchScenario};

/// One timing measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingPoint {
    /// The swept value (`m`, `|S|` or `k`).
    pub value: usize,
    /// Wall-clock seconds of the primary algorithm (`BatchStrat` /
    /// `ADPaR-Exact`).
    pub primary_seconds: f64,
    /// Wall-clock seconds of the comparison algorithm (`Brute Force`), when
    /// measured.
    pub comparison_seconds: Option<f64>,
}

/// Sweep values for the three panels. `paper_scale` selects the paper's full
/// grids; otherwise reduced grids keep the run short.
#[must_use]
pub fn panel_values(panel: ScalabilityPanel, paper_scale: bool) -> Vec<usize> {
    match (panel, paper_scale) {
        (ScalabilityPanel::BatchSize, true) => vec![200, 400, 600, 800],
        (ScalabilityPanel::BatchSize, false) => vec![50, 100, 200],
        (ScalabilityPanel::StrategyCount, true) => vec![1_000, 5_000, 25_000],
        (ScalabilityPanel::StrategyCount, false) => vec![500, 1_000, 2_000],
        (ScalabilityPanel::K, true) => vec![10, 50, 250],
        (ScalabilityPanel::K, false) => vec![10, 25, 50],
    }
}

/// Which scalability panel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalabilityPanel {
    /// Figure 18a: batch deployment vs `m`.
    BatchSize,
    /// Figure 18b: `ADPaR-Exact` vs `|S|`.
    StrategyCount,
    /// Figure 18c: `ADPaR-Exact` vs `k`.
    K,
}

impl ScalabilityPanel {
    /// Axis label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::BatchSize => "m",
            Self::StrategyCount => "|S|",
            Self::K => "k",
        }
    }
}

/// Figure 18a: times `BatchStrat` for each batch size, and `Brute Force` as
/// long as it stays feasible (`m ≤ brute_force_cap`).
#[must_use]
pub fn batch_scalability(values: &[usize], brute_force_cap: usize, seed: u64) -> Vec<TimingPoint> {
    values
        .iter()
        .map(|&m| {
            // Figure 18a defaults: |S| = 30, k = 10, W = 0.75.
            let scenario = BatchScenario {
                batch_size: m,
                strategy_count: 30,
                k: 10,
                availability: 0.75,
                seed,
                ..BatchScenario::default()
            };
            let instance = scenario.materialize();
            // The catalog is built once outside the timed section, matching
            // the production shape: the index is amortized across batches.
            let catalog = instance.catalog();
            let run = |algorithm: BatchAlgorithm| {
                let engine = BatchStrat::new(BatchObjective::Payoff, AggregationMode::Max)
                    .with_algorithm(algorithm);
                let start = Instant::now();
                let outcome = engine
                    .recommend_with_catalog(
                        &instance.requests,
                        &catalog,
                        &instance.models,
                        scenario.k,
                        instance.availability,
                    )
                    .expect("generated models cover every strategy");
                let elapsed = start.elapsed().as_secs_f64();
                // Prevent the optimizer from discarding the computation.
                assert!(outcome.objective_value >= 0.0);
                elapsed
            };
            TimingPoint {
                value: m,
                primary_seconds: run(BatchAlgorithm::BatchStrat),
                comparison_seconds: (m <= brute_force_cap).then(|| run(BatchAlgorithm::BruteForce)),
            }
        })
        .collect()
}

/// Figures 18b and 18c: times `ADPaR-Exact` while sweeping `|S|` or `k`.
///
/// `base_strategy_count` is the fixed `|S|` used by the `k` panel (the paper
/// uses 10 000; smaller values keep tests and CI quick).
#[must_use]
pub fn adpar_scalability(
    panel: ScalabilityPanel,
    values: &[usize],
    base_strategy_count: usize,
    seed: u64,
) -> Vec<TimingPoint> {
    values
        .iter()
        .map(|&value| {
            let scenario = match panel {
                ScalabilityPanel::StrategyCount => AdparScenario {
                    strategy_count: value,
                    k: 5,
                    seed,
                    ..AdparScenario::default()
                },
                _ => AdparScenario {
                    strategy_count: base_strategy_count.max(value),
                    k: value,
                    seed,
                    ..AdparScenario::default()
                },
            };
            let instance = scenario.materialize();
            // The catalog index is amortizable across requests and stays
            // outside the timed section, but problem construction computes
            // the per-request O(|S|) relaxation vectors — that is work every
            // production request pays, so it belongs inside the timer.
            let catalog = instance.catalog();
            let start = Instant::now();
            let problem = AdparProblem::with_catalog(&instance.request, &catalog, instance.k);
            let solution = AdparExact.solve(&problem).expect("|S| >= k");
            let elapsed = start.elapsed().as_secs_f64();
            assert!(solution.distance >= 0.0);
            TimingPoint {
                value,
                primary_seconds: elapsed,
                comparison_seconds: None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_timings_cover_all_values_and_cap_brute_force() {
        let points = batch_scalability(&[5, 10, 40], 20, 7);
        assert_eq!(points.len(), 3);
        assert!(points[0].comparison_seconds.is_some());
        assert!(points[2].comparison_seconds.is_none());
        for p in &points {
            assert!(p.primary_seconds >= 0.0);
        }
    }

    #[test]
    fn adpar_timings_are_positive_and_grow_with_strategy_count() {
        let points = adpar_scalability(ScalabilityPanel::StrategyCount, &[100, 800], 200, 7);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.primary_seconds >= 0.0));
    }

    #[test]
    fn panel_values_and_labels() {
        assert_eq!(panel_values(ScalabilityPanel::K, true), vec![10, 50, 250]);
        assert!(panel_values(ScalabilityPanel::StrategyCount, false).len() >= 3);
        assert_eq!(ScalabilityPanel::BatchSize.label(), "m");
    }

    #[test]
    fn adpar_k_panel_uses_a_large_enough_strategy_set() {
        // k larger than the base strategy count must not panic: |S| grows to k.
        let points = adpar_scalability(ScalabilityPanel::K, &[150], 100, 3);
        assert_eq!(points.len(), 1);
    }
}
