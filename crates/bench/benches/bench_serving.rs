//! Serving throughput under churn: N lock-free snapshot readers racing one
//! writer.
//!
//! Reuses the workload crate's churn-vs-serve stress harness
//! ([`stratrec_workload::stress::run_churn_stress`]): one writer folds the
//! scenario's epoch stream into published snapshots while `N` reader
//! threads keep serving the standing batch from whatever epoch they have
//! pinned, migrating forward through the delta feed. The measurement is
//! **serves per second across all readers** as the reader count grows —
//! the scaling claim of the epoch-snapshot design is that readers never
//! block on the writer or on each other, so aggregate throughput should
//! grow with cores rather than flatten at one reader's rate.
//!
//! Emits `BENCH_serving.json` at the workspace root (reader-count sweep,
//! serves/sec, reads split per reader, writer epochs) and registers a
//! criterion smoke wrapper so the CI bench leg compiles and exercises the
//! same path. The sweep itself needs ≥ 2 hardware threads to say anything
//! about scaling; the JSON records `available_parallelism` so a cramped
//! runner's numbers are not mistaken for contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use stratrec_core::batch::BatchObjective;
use stratrec_core::catalog::RebuildPolicy;
use stratrec_core::stratrec::{StratRec, StratRecConfig};
use stratrec_core::workforce::AggregationMode;
use stratrec_workload::churn::{ChurnInstance, ChurnScenario, CompactPolicy};
use stratrec_workload::stress::run_churn_stress;

/// The serving scenario: enough catalog to make a serve non-trivial, enough
/// epochs that readers genuinely migrate mid-run.
fn serving_scenario() -> ChurnInstance {
    ChurnScenario {
        initial_strategies: 2_000,
        epochs: 6,
        inserts_per_epoch: 24,
        retires_per_epoch: 20,
        batch_size: 6,
        k: 5,
        compact: CompactPolicy::EveryNEpochs(3),
        ..ChurnScenario::default()
    }
    .materialize()
}

fn serving_layer(instance: &ChurnInstance) -> StratRec {
    StratRec::new(StratRecConfig {
        k: instance.k,
        objective: BatchObjective::Throughput,
        aggregation: AggregationMode::Sum,
    })
}

struct SweepPoint {
    readers: usize,
    serves_per_sec: f64,
    total_reads: usize,
    elapsed_ms: f64,
    final_epoch: u64,
    published_epochs: u64,
}

/// One stress run per rep; keeps the best (highest-throughput) rep, the
/// usual benchmarking discipline for throughput under scheduler noise.
fn measure_readers(
    instance: &ChurnInstance,
    layer: &StratRec,
    readers: usize,
    reps: usize,
) -> SweepPoint {
    let mut best: Option<SweepPoint> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let history =
            run_churn_stress(instance, layer, RebuildPolicy::threshold(6), readers).unwrap();
        let elapsed = start.elapsed();
        let total_reads = history.total_reads();
        let point = SweepPoint {
            readers,
            serves_per_sec: total_reads as f64 / elapsed.as_secs_f64(),
            total_reads,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            final_epoch: history.final_epoch,
            published_epochs: history.stats.published_epochs,
        };
        if best
            .as_ref()
            .is_none_or(|b| point.serves_per_sec > b.serves_per_sec)
        {
            best = Some(point);
        }
    }
    best.expect("at least one rep")
}

fn bench_serving_scaling(c: &mut Criterion) {
    let smoke = stratrec_bench::artifact::smoke_mode();
    let reps = if smoke { 1 } else { 3 };
    let instance = serving_scenario();
    let layer = serving_layer(&instance);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut json_rows = Vec::new();
    for readers in [1_usize, 2, 4] {
        let point = measure_readers(&instance, &layer, readers, reps);
        eprintln!(
            "serving_scaling/{} readers: {:.0} serves/s ({} serves in {:.1} ms, \
             final epoch {}, {} published)",
            point.readers,
            point.serves_per_sec,
            point.total_reads,
            point.elapsed_ms,
            point.final_epoch,
            point.published_epochs,
        );
        json_rows.push(format!(
            "    {{\"readers\": {}, \"serves_per_sec\": {:.0}, \"total_reads\": {}, \
             \"elapsed_ms\": {:.2}, \"final_epoch\": {}, \"published_epochs\": {}}}",
            point.readers,
            point.serves_per_sec,
            point.total_reads,
            point.elapsed_ms,
            point.final_epoch,
            point.published_epochs,
        ));
    }

    // Criterion-visible wrapper: times one full stress run at each reader
    // count so the regular bench leg tracks regressions in the serve path.
    let mut group = c.benchmark_group("serving_scaling");
    group.sample_size(10);
    for readers in [1_usize, 2] {
        group.bench_with_input(
            BenchmarkId::new("churn_stress", readers),
            &readers,
            |b, &readers| {
                b.iter(|| {
                    let history =
                        run_churn_stress(&instance, &layer, RebuildPolicy::threshold(6), readers)
                            .unwrap();
                    black_box(history.total_reads())
                });
            },
        );
    }
    group.finish();

    let json = format!(
        "{{\n  \"bench\": \"serving_scaling\",\n  \"scenario\": {{\"initial_strategies\": 2000, \
         \"epochs\": 6, \"standing_rows\": 6, \"k\": 5}},\n  \"smoke\": {smoke},\n  \
         \"available_parallelism\": {cores},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    // Guarded: a smoke run never overwrites a committed real-run artifact,
    // and a failed write panics rather than letting CI archive stale data.
    stratrec_bench::artifact::write_json_artifact(path, &json, smoke);
}

criterion_group!(benches, bench_serving_scaling);
criterion_main!(benches);
