//! Sharded aggregation at the paper's scale: shard-local top-k + k-way
//! merge vs the flat row scan, at `|S| = 10 000`, `m = 64`, `k = 10`.
//!
//! Three arms, all asserted **bit-identical** before anything is timed:
//!
//! * `flat` — `WorkforceMatrix::aggregate`, the single-pass baseline.
//! * `sharded/<s>` — `WorkforceMatrix::aggregate_sharded` on the calling
//!   thread: per-shard candidate top-k over each column sub-range, then
//!   `merge_k_smallest_into`. Measures the overhead/benefit of the
//!   two-level structure itself at shard counts {1, 2, 4, 8}.
//! * `engine/<s>x<t>` — `BatchEngine::with_threads(t).aggregate_sharded`:
//!   shard-local passes fanned across scoped threads, deterministic merge
//!   on the caller. The scaling claim (≥ 1.5× at 8 shards × 2 threads)
//!   only holds with ≥ 2 hardware threads; the JSON records
//!   `available_parallelism` so a cramped runner's numbers are not
//!   mistaken for a regression.
//!
//! Alongside the sweep the run re-checks the fairness floor invariant on a
//! 10× flooded tenant mix and emits `BENCH_sharding.json` at the workspace
//! root (guarded: a smoke run never overwrites a committed real run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use stratrec_core::catalog::ShardPlan;
use stratrec_core::engine::BatchEngine;
use stratrec_core::stratrec::{StratRec, StratRecConfig};
use stratrec_core::workforce::{AggregationMode, EligibilityRule, WorkforceMatrix};
use stratrec_workload::scenario::{BatchScenario, ParameterDistribution};
use stratrec_workload::tenants::TenantMixScenario;

const STRATEGY_COUNT: usize = 10_000;
const BATCH_SIZE: usize = 64;
const K: usize = 10;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const THREAD_COUNTS: [usize; 2] = [1, 2];

fn batch_instance() -> stratrec_workload::scenario::BatchInstance {
    BatchScenario {
        batch_size: BATCH_SIZE,
        strategy_count: STRATEGY_COUNT,
        k: K,
        availability: 0.5,
        distribution: ParameterDistribution::Uniform,
        seed: 2020,
    }
    .materialize()
}

/// Best-of-`reps` wall time per call, in microseconds (minimum over reps —
/// the usual discipline against scheduler noise).
fn best_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// The fairness floor check of the regression suite, rerun at bench scale:
/// returns the minimum over tenants of `granted / min(demand, floor ·
/// budget)` under a 10× flooding heavy tenant (≥ 1 means every floor held).
fn fairness_floor_ratio(
    instance: &stratrec_workload::scenario::BatchInstance,
    catalog: &stratrec_core::catalog::StrategyCatalog,
) -> f64 {
    let mix = TenantMixScenario {
        tenants: 4,
        zipf_s: 0.0,
        total_requests: 128,
        heavy_tenant: Some(0),
        heavy_factor: 10.0,
        floor: 0.2,
        seed: 7,
    }
    .materialize();
    let batches: Vec<&[_]> = mix.batches.iter().map(Vec::as_slice).collect();
    let availability = stratrec_core::availability::AvailabilityPdf::certain(0.85);
    let budget = availability.expectation().value();
    let layer = StratRec::new(StratRecConfig {
        k: K,
        ..StratRecConfig::default()
    })
    .with_shards(8);
    let outcomes = layer
        .process_tenant_batches(
            &batches,
            catalog,
            &instance.models,
            &availability,
            &mix.policy,
        )
        .expect("policy arity matches the mix");
    outcomes
        .iter()
        .map(|o| {
            let entitlement = (0.2 * budget).min(o.demand);
            if entitlement <= f64::EPSILON {
                1.0
            } else {
                o.granted.value() / entitlement
            }
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_sharded_aggregation(c: &mut Criterion) {
    let smoke = stratrec_bench::artifact::smoke_mode();
    let reps = if smoke { 2 } else { 30 };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let instance = batch_instance();
    let catalog = instance.catalog();
    let matrix = WorkforceMatrix::compute_with_catalog(
        &instance.requests,
        &catalog,
        &instance.models,
        EligibilityRule::StrategyParameters,
    )
    .expect("models cover the catalog");
    let mode = AggregationMode::Sum;

    // Parity gate before timing anything: every sharded arm must reproduce
    // the flat aggregation bit-for-bit.
    let flat = matrix.aggregate(K, mode);
    let flat_bits: Vec<_> = flat
        .iter()
        .map(|req| {
            req.as_ref()
                .map(|r| (r.workforce.to_bits(), &r.strategy_indices))
        })
        .collect();
    for &shards in &SHARD_COUNTS {
        let plan = ShardPlan::for_catalog(shards, &catalog);
        for &threads in &THREAD_COUNTS {
            let engine = BatchEngine::with_threads(threads);
            let sharded = engine.aggregate_sharded(&matrix, K, mode, &plan);
            let sharded_bits: Vec<_> = sharded
                .iter()
                .map(|req| {
                    req.as_ref()
                        .map(|r| (r.workforce.to_bits(), &r.strategy_indices))
                })
                .collect();
            assert_eq!(
                flat_bits, sharded_bits,
                "sharded aggregation diverged at {shards} shards x {threads} threads"
            );
        }
    }
    let floor_ratio = fairness_floor_ratio(&instance, &catalog);
    assert!(
        floor_ratio >= 1.0 - 1e-9,
        "fairness floor violated at bench scale: min ratio {floor_ratio}"
    );

    let mut json_rows = Vec::new();
    let flat_us = best_us(reps, || {
        black_box(matrix.aggregate(K, mode));
    });
    eprintln!("sharding/flat: {flat_us:.1} us");
    json_rows.push(format!(
        "    {{\"path\": \"flat\", \"shards\": 1, \"threads\": 1, \"elapsed_us\": {flat_us:.1}, \
         \"speedup_vs_flat\": 1.00}}"
    ));
    for &shards in &SHARD_COUNTS {
        let plan = ShardPlan::for_catalog(shards, &catalog);
        let us = best_us(reps, || {
            black_box(matrix.aggregate_sharded(K, mode, &plan));
        });
        eprintln!(
            "sharding/sharded/{shards}: {us:.1} us ({:.2}x vs flat)",
            flat_us / us
        );
        json_rows.push(format!(
            "    {{\"path\": \"sharded\", \"shards\": {shards}, \"threads\": 1, \
             \"elapsed_us\": {us:.1}, \"speedup_vs_flat\": {:.2}}}",
            flat_us / us
        ));
    }
    for &threads in &THREAD_COUNTS {
        let engine = BatchEngine::with_threads(threads);
        for &shards in &SHARD_COUNTS {
            let plan = ShardPlan::for_catalog(shards, &catalog);
            let us = best_us(reps, || {
                black_box(engine.aggregate_sharded(&matrix, K, mode, &plan));
            });
            eprintln!(
                "sharding/engine/{shards}x{threads}: {us:.1} us ({:.2}x vs flat)",
                flat_us / us
            );
            json_rows.push(format!(
                "    {{\"path\": \"engine\", \"shards\": {shards}, \"threads\": {threads}, \
                 \"elapsed_us\": {us:.1}, \"speedup_vs_flat\": {:.2}}}",
                flat_us / us
            ));
        }
    }

    // Criterion-visible wrapper so the regular bench leg tracks the same
    // paths for regressions.
    let mut group = c.benchmark_group("sharded_aggregation");
    group.sample_size(10);
    group.bench_function("flat", |b| {
        b.iter(|| black_box(matrix.aggregate(K, mode)));
    });
    for &shards in &[1_usize, 8] {
        let plan = ShardPlan::for_catalog(shards, &catalog);
        group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, _| {
            b.iter(|| black_box(matrix.aggregate_sharded(K, mode, &plan)));
        });
        let engine = BatchEngine::with_threads(2);
        group.bench_with_input(
            BenchmarkId::new("engine_2_threads", shards),
            &shards,
            |b, _| {
                b.iter(|| black_box(engine.aggregate_sharded(&matrix, K, mode, &plan)));
            },
        );
    }
    group.finish();

    let json = format!(
        "{{\n  \"bench\": \"sharding\",\n  \"scenario\": {{\"strategy_count\": {STRATEGY_COUNT}, \
         \"batch_size\": {BATCH_SIZE}, \"k\": {K}}},\n  \"smoke\": {smoke},\n  \
         \"available_parallelism\": {cores},\n  \"parity\": \"bit_identical\",\n  \
         \"fairness\": {{\"heavy_factor\": 10.0, \"floor\": 0.2, \
         \"min_floor_ratio\": {floor_ratio:.4}, \"floors_hold\": true}},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sharding.json");
    stratrec_bench::artifact::write_json_artifact(path, &json, smoke);
}

criterion_group!(benches, bench_sharded_aggregation);
criterion_main!(benches);
