//! Criterion micro-benchmarks for the substrate crates: top-k selection
//! (heap vs full sort ablation), knapsack solvers and R-tree queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use stratrec_geometry::{Aabb3, Point3, RTree};
use stratrec_optim::knapsack::{self, KnapsackItem};
use stratrec_optim::topk;

fn bench_topk_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let values: Vec<f64> = (0..100_000).map(|_| rng.gen::<f64>()).collect();
    let mut group = c.benchmark_group("topk_heap_vs_sort");
    group.sample_size(20);
    for &k in &[10_usize, 100] {
        group.bench_with_input(BenchmarkId::new("heap", k), &k, |b, &k| {
            b.iter(|| black_box(topk::k_smallest_indices(black_box(&values), k)));
        });
        group.bench_with_input(BenchmarkId::new("full_sort", k), &k, |b, &k| {
            b.iter(|| black_box(topk::k_smallest_indices_by_sort(black_box(&values), k)));
        });
    }
    group.finish();
}

fn bench_knapsack(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let items: Vec<KnapsackItem> = (0..1_000)
        .map(|_| KnapsackItem::new(rng.gen_range(0.01..0.2), rng.gen_range(0.1..1.0)))
        .collect();
    let mut group = c.benchmark_group("knapsack_greedy");
    group.sample_size(30);
    group.bench_function("half_approx_1000_items", |b| {
        b.iter(|| black_box(knapsack::solve_greedy_half_approx(black_box(&items), 5.0)));
    });
    group.bench_function("density_1000_items", |b| {
        b.iter(|| black_box(knapsack::solve_greedy_density(black_box(&items), 5.0)));
    });
    group.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let points: Vec<Point3> = (0..50_000)
        .map(|_| Point3::new(rng.gen(), rng.gen(), rng.gen()))
        .collect();
    let mut group = c.benchmark_group("rtree");
    group.sample_size(20);
    group.bench_function("bulk_load_50k", |b| {
        b.iter(|| black_box(RTree::bulk_load(black_box(&points))));
    });
    let tree = RTree::bulk_load(&points);
    let query = Aabb3::anchored_at_origin(Point3::new(0.3, 0.3, 0.3));
    group.bench_function("count_in_box_50k", |b| {
        b.iter(|| black_box(tree.count_in_box(black_box(&query))));
    });
    group.finish();
}

criterion_group!(benches, bench_topk_ablation, bench_knapsack, bench_rtree);
criterion_main!(benches);
