//! Benchmarks for the parallel batch engine: row-sharded workforce-matrix
//! construction and the ADPaR fan-out with catalog-resident axis orders, at
//! the paper's `|S| = 10 000` scale with batch sizes `m ∈ {64, 512}`.
//!
//! The comparisons of record (quoted in the README "Performance" section):
//!
//! * `engine_workforce_matrix/*`: sequential
//!   `WorkforceMatrix::compute_with_catalog` vs `BatchEngine::new()` row
//!   sharding — identical cells, wall-clock divided by the core count.
//! * `engine_adpar_exact/*`: one ADPaR-Exact solve on a plain problem
//!   (per-problem axis sorts) vs a catalog-backed problem driven through a
//!   reused `SolveScratch` (catalog-resident orders, zero steady-state
//!   allocation).
//! * `engine_adpar_fanout/*`: a whole unsatisfied-request fan-out,
//!   sequential vs parallel engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stratrec_core::adpar::{AdparExact, AdparProblem, AdparSolver, SolveScratch};
use stratrec_core::engine::BatchEngine;
use stratrec_core::workforce::{EligibilityRule, Precision, WorkforceMatrix};
use stratrec_workload::scenario::{AdparScenario, BatchScenario, ParameterDistribution};

const STRATEGY_COUNT: usize = 10_000;
const BATCH_SIZES: [usize; 2] = [64, 512];

fn batch_instance(m: usize) -> stratrec_workload::scenario::BatchInstance {
    BatchScenario {
        batch_size: m,
        strategy_count: STRATEGY_COUNT,
        k: 10,
        availability: 0.5,
        distribution: ParameterDistribution::Uniform,
        seed: 2020,
    }
    .materialize()
}

fn bench_workforce_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_workforce_matrix");
    group.sample_size(10);
    for &m in &BATCH_SIZES {
        let instance = batch_instance(m);
        let catalog = instance.catalog();
        group.bench_with_input(BenchmarkId::new("sequential", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    WorkforceMatrix::compute_with_catalog(
                        &instance.requests,
                        &catalog,
                        &instance.models,
                        EligibilityRule::StrategyParameters,
                    )
                    .expect("models cover the catalog"),
                )
            });
        });
        // Sequential scalar f64 above; the remaining arms pit row sharding
        // and the columnar f32 kernel (alone and sharded) against it — the
        // deep-dive numbers live in `bench_kernel` / `BENCH_kernel.json`.
        for (label, engine) in [
            ("parallel", BatchEngine::new()),
            (
                "kernel_f32",
                BatchEngine::sequential().with_precision(Precision::F32),
            ),
            (
                "kernel_f32_sharded",
                BatchEngine::new().with_precision(Precision::F32),
            ),
        ] {
            group.bench_with_input(BenchmarkId::new(label, m), &m, |b, _| {
                b.iter(|| {
                    black_box(
                        engine
                            .workforce_matrix(
                                &instance.requests,
                                &catalog,
                                &instance.models,
                                EligibilityRule::StrategyParameters,
                            )
                            .expect("models cover the catalog"),
                    )
                });
            });
        }
    }
    group.finish();
}

fn bench_adpar_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_adpar_exact");
    group.sample_size(10);
    let instance = AdparScenario {
        strategy_count: STRATEGY_COUNT,
        k: 10,
        ..AdparScenario::default()
    }
    .materialize();
    let catalog = instance.catalog();
    group.bench_function("plain_per_problem_sorts", |b| {
        let problem = AdparProblem::new(&instance.request, &instance.strategies, instance.k);
        b.iter(|| black_box(AdparExact.solve(black_box(&problem)).expect("|S| >= k")));
    });
    group.bench_function("catalog_orders_reused_scratch", |b| {
        let problem = AdparProblem::with_catalog(&instance.request, &catalog, instance.k);
        let mut scratch = SolveScratch::new();
        b.iter(|| {
            black_box(
                AdparExact
                    .solve_with_scratch(black_box(&problem), &mut scratch)
                    .expect("|S| >= k"),
            )
        });
    });
    group.finish();
}

fn bench_adpar_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_adpar_fanout");
    group.sample_size(10);
    let m = BATCH_SIZES[0];
    let instance = batch_instance(m);
    let catalog = instance.catalog();
    let indices: Vec<usize> = (0..instance.requests.len()).collect();
    for (label, engine) in [
        ("sequential", BatchEngine::sequential()),
        ("parallel", BatchEngine::new()),
    ] {
        group.bench_with_input(BenchmarkId::new(label, m), &m, |b, _| {
            b.iter(|| {
                black_box(engine.solve_adpar_batch(&instance.requests, &catalog, &indices, 10))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_workforce_matrix,
    bench_adpar_exact,
    bench_adpar_fanout
);
criterion_main!(benches);
