//! Criterion micro-benchmarks for the batch-deployment pipeline
//! (Figure 18a counterpart), including the sum-case vs max-case aggregation
//! ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stratrec_core::batch::{BatchAlgorithm, BatchObjective, BatchStrat};
use stratrec_core::workforce::{AggregationMode, WorkforceMatrix};
use stratrec_workload::scenario::BatchScenario;

fn bench_batch_recommendation(c: &mut Criterion) {
    let mut group = c.benchmark_group("batchstrat_vs_m");
    group.sample_size(20);
    for &m in &[50_usize, 200, 800] {
        let scenario = BatchScenario {
            batch_size: m,
            strategy_count: 30,
            k: 10,
            availability: 0.75,
            ..BatchScenario::default()
        };
        let instance = scenario.materialize();
        group.bench_with_input(BenchmarkId::new("BatchStrat", m), &m, |b, _| {
            let engine = BatchStrat::new(BatchObjective::Payoff, AggregationMode::Max);
            b.iter(|| {
                let outcome = engine
                    .recommend_with_models(
                        black_box(&instance.requests),
                        black_box(&instance.strategies),
                        &instance.models,
                        scenario.k,
                        instance.availability,
                    )
                    .expect("models cover every strategy");
                black_box(outcome.objective_value)
            });
        });
        if m <= 50 {
            // Brute force beyond ~25 requests is intractable; keep one point
            // for the exponential-vs-linear contrast of Figure 18a.
            group.bench_with_input(BenchmarkId::new("BruteForce", m), &m, |b, _| {
                let engine = BatchStrat::new(BatchObjective::Payoff, AggregationMode::Max)
                    .with_algorithm(BatchAlgorithm::BruteForce);
                b.iter(|| {
                    let outcome = engine
                        .recommend_with_models(
                            black_box(&instance.requests),
                            black_box(&instance.strategies),
                            &instance.models,
                            scenario.k,
                            instance.availability,
                        )
                        .expect("models cover every strategy");
                    black_box(outcome.objective_value)
                });
            });
        }
    }
    group.finish();
}

fn bench_aggregation_modes(c: &mut Criterion) {
    let scenario = BatchScenario {
        batch_size: 100,
        strategy_count: 5_000,
        k: 10,
        ..BatchScenario::default()
    };
    let instance = scenario.materialize();
    let matrix =
        WorkforceMatrix::compute(&instance.requests, &instance.strategies, &instance.models)
            .expect("models cover every strategy");
    let mut group = c.benchmark_group("workforce_aggregation_ablation");
    group.sample_size(20);
    for (label, mode) in [
        ("sum_case", AggregationMode::Sum),
        ("max_case", AggregationMode::Max),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(matrix.aggregate(black_box(10), mode)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_recommendation, bench_aggregation_modes);
criterion_main!(benches);
