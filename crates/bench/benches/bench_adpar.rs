//! Criterion micro-benchmarks for the ADPaR solvers (Figures 17–18
//! counterparts): ADPaR-Exact scaling in |S| and k, and the baseline solvers
//! on a fixed instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stratrec_core::adpar::{
    AdparBaseline2, AdparBaseline3, AdparExact, AdparProblem, AdparSolver, SolveScratch,
};
use stratrec_workload::scenario::AdparScenario;

fn bench_exact_vs_strategy_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("adpar_exact_vs_strategy_count");
    group.sample_size(10);
    for &s in &[500_usize, 1_000, 2_000] {
        let instance = AdparScenario {
            strategy_count: s,
            k: 5,
            ..AdparScenario::default()
        }
        .materialize();
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, _| {
            let problem = AdparProblem::new(&instance.request, &instance.strategies, instance.k);
            b.iter(|| black_box(AdparExact.solve(black_box(&problem)).expect("|S| >= k")));
        });
        // Catalog-backed problems sweep the catalog's pre-sorted axis
        // orders through a reused scratch: no per-problem sort at all.
        let catalog = instance.catalog();
        group.bench_with_input(BenchmarkId::new("catalog", s), &s, |b, _| {
            let problem = AdparProblem::with_catalog(&instance.request, &catalog, instance.k);
            let mut scratch = SolveScratch::new();
            b.iter(|| {
                black_box(
                    AdparExact
                        .solve_with_scratch(black_box(&problem), &mut scratch)
                        .expect("|S| >= k"),
                )
            });
        });
    }
    group.finish();
}

fn bench_exact_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("adpar_exact_vs_k");
    group.sample_size(10);
    for &k in &[5_usize, 25, 50] {
        let instance = AdparScenario {
            strategy_count: 1_000,
            k,
            ..AdparScenario::default()
        }
        .materialize();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            let problem = AdparProblem::new(&instance.request, &instance.strategies, instance.k);
            b.iter(|| black_box(AdparExact.solve(black_box(&problem)).expect("|S| >= k")));
        });
    }
    group.finish();
}

fn bench_solver_comparison(c: &mut Criterion) {
    let instance = AdparScenario::default().materialize();
    let problem = AdparProblem::new(&instance.request, &instance.strategies, instance.k);
    let mut group = c.benchmark_group("adpar_solver_comparison");
    group.sample_size(20);
    group.bench_function("adpar_exact", |b| {
        b.iter(|| black_box(AdparExact.solve(black_box(&problem)).expect("feasible")));
    });
    group.bench_function("baseline2", |b| {
        b.iter(|| black_box(AdparBaseline2.solve(black_box(&problem)).expect("feasible")));
    });
    group.bench_function("baseline3", |b| {
        b.iter(|| {
            black_box(
                AdparBaseline3::default()
                    .solve(black_box(&problem))
                    .expect("feasible"),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_vs_strategy_count,
    bench_exact_vs_k,
    bench_solver_comparison
);
criterion_main!(benches);
