//! Streaming front-end: sustainable throughput and admitted-request tails.
//!
//! Three measurements against the `stratrec-serve` service thread:
//!
//! 1. **Max sustainable throughput** — closed-loop flights of `max_batch`
//!    requests (each flight submitted only after the previous one fully
//!    resolved), so the server runs flat out without ever building a
//!    backlog. This is the capacity number the overload soak multiplies.
//! 2. **Admitted-request latency** — an open-loop Poisson stream at ~30 %
//!    of the measured capacity (the generator shares the CPU with the
//!    server, so this stays calm even on one hardware thread); p50/p99/p999
//!    of the served responses' submit-to-response latency.
//! 3. **Overload behavior** — the same stream at 2× capacity: the share of
//!    requests served full vs degraded vs typed-shed, and whether the
//!    controller recovered by shutdown.
//!
//! Emits `BENCH_streaming.json` at the workspace root through the
//! smoke-overwrite guard, plus a criterion smoke wrapper so the CI bench
//! leg compiles and exercises the submit→serve→respond path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stratrec_core::availability::AvailabilityPdf;
use stratrec_core::catalog::ConcurrentCatalog;
use stratrec_core::model::DeploymentRequest;
use stratrec_core::prelude::{ServiceQuality, StratRecConfig};
use stratrec_serve::{ServeConfig, ServerHandle, ServerStats, StreamRequest, StreamServer};
use stratrec_workload::{BatchScenario, OpenLoopScenario};

const STRATEGIES: usize = 1_000;
const K: usize = 5;

fn serve_config() -> ServeConfig {
    ServeConfig {
        stratrec: StratRecConfig {
            k: K,
            ..StratRecConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn start_server(config: ServeConfig) -> ServerHandle {
    let instance = BatchScenario {
        batch_size: 1,
        strategy_count: STRATEGIES,
        k: K,
        seed: 2_020,
        ..BatchScenario::default()
    }
    .materialize();
    let catalog = Arc::new(ConcurrentCatalog::new(instance.catalog()));
    StreamServer::new(config).start(catalog, instance.models, AvailabilityPdf::certain(0.5))
}

fn request(id: u64, deadline: Duration) -> StreamRequest {
    use stratrec_core::model::{DeploymentParameters, TaskType};
    #[allow(clippy::cast_precision_loss)]
    let quality = 0.625 + 0.3 * ((id % 11) as f64 / 11.0);
    StreamRequest {
        id,
        tenant: (id % 4) as usize,
        deadline,
        request: DeploymentRequest::new(
            id,
            TaskType::SentenceTranslation,
            DeploymentParameters::clamped(quality, 0.85, 0.9),
        ),
    }
}

/// Closed-loop capacity: flights of `max_batch`, next flight only after the
/// previous fully resolved. Returns served requests per second.
fn measure_sustainable_hz(handle: &ServerHandle, total: u64, flight: u64) -> f64 {
    let deadline = Duration::from_secs(60);
    let start = Instant::now();
    let mut submitted = 0_u64;
    let mut resolved = 0_u64;
    while submitted < total {
        for _ in 0..flight.min(total - submitted) {
            assert!(handle.submit(request(submitted, deadline)));
            submitted += 1;
        }
        while resolved < submitted {
            assert!(
                handle.recv_timeout(Duration::from_secs(10)).is_some(),
                "closed-loop response timed out"
            );
            resolved += 1;
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let hz = resolved as f64 / start.elapsed().as_secs_f64().max(1e-9);
    hz
}

struct OpenLoopOutcome {
    stats: ServerStats,
    arrivals: usize,
    responses: usize,
    /// Sorted submit-to-response latencies of served requests, in nanos.
    served_nanos: Vec<u128>,
}

/// Open-loop replay at `rate_hz` for `duration_ms` against a fresh server.
fn run_open_loop(rate_hz: f64, duration_ms: u64, deadline_ms: u64) -> OpenLoopOutcome {
    let arrivals = OpenLoopScenario {
        base_rate_hz: rate_hz,
        duration_ms,
        deadline_ms,
        seed: 77,
        ..OpenLoopScenario::default()
    }
    .materialize();
    let handle = start_server(serve_config());
    let mut responses = Vec::with_capacity(arrivals.len());
    let start = Instant::now();
    for arrival in &arrivals {
        let now = start.elapsed();
        if arrival.at > now {
            std::thread::sleep(arrival.at - now);
        }
        assert!(handle.submit(StreamRequest {
            id: arrival.id,
            tenant: arrival.tenant,
            deadline: arrival.deadline,
            request: arrival.request.clone(),
        }));
        responses.extend(handle.drain_responses());
    }
    let (stats, rest) = handle.shutdown();
    responses.extend(rest);
    let mut served_nanos: Vec<u128> = responses
        .iter()
        .filter(|r| r.outcome.is_served())
        .map(|r| r.latency.as_nanos())
        .collect();
    served_nanos.sort_unstable();
    OpenLoopOutcome {
        stats,
        arrivals: arrivals.len(),
        responses: responses.len(),
        served_nanos,
    }
}

fn percentile_ms(sorted_nanos: &[u128], q: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let index = (((sorted_nanos.len() - 1) as f64) * q).round() as usize;
    #[allow(clippy::cast_precision_loss)]
    let ms = sorted_nanos[index] as f64 / 1e6;
    ms
}

fn bench_streaming(c: &mut Criterion) {
    let smoke = stratrec_bench::artifact::smoke_mode();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // 1. Capacity.
    let config = serve_config();
    let handle = start_server(config);
    let calibrate_total: u64 = if smoke { 128 } else { 4_096 };
    let flight = config.admission.max_batch as u64;
    let sustainable_hz = measure_sustainable_hz(&handle, calibrate_total, flight);
    let (calib_stats, _) = handle.shutdown();
    assert_eq!(calib_stats.responses(), calibrate_total);
    eprintln!(
        "streaming: sustainable {sustainable_hz:.0} req/s (closed loop, flights of {flight})"
    );

    // 2. Tail latency at 30 % of closed-loop capacity. (Closed-loop flights
    // overlap submitter and server turn-taking, so on a single hardware
    // thread the concurrent open-loop capacity is roughly half the
    // closed-loop number; 30 % keeps the queue calm on any machine.)
    let latency_ms: u64 = if smoke { 250 } else { 2_000 };
    let latency_run = run_open_loop(sustainable_hz * 0.3, latency_ms, 1_000);
    assert_eq!(
        latency_run.arrivals, latency_run.responses,
        "no silent drops"
    );
    let (p50, p99, p999) = (
        percentile_ms(&latency_run.served_nanos, 0.50),
        percentile_ms(&latency_run.served_nanos, 0.99),
        percentile_ms(&latency_run.served_nanos, 0.999),
    );
    eprintln!(
        "streaming: 0.3x load — {} served, p50 {p50:.3} ms, p99 {p99:.3} ms, p999 {p999:.3} ms",
        latency_run.served_nanos.len()
    );

    // 3. Overload at 2×.
    let overload_ms: u64 = if smoke { 250 } else { 1_500 };
    let overload_run = run_open_loop(sustainable_hz * 2.0, overload_ms, 100);
    assert_eq!(
        overload_run.arrivals, overload_run.responses,
        "overload must not lose responses"
    );
    let o = &overload_run.stats;
    eprintln!(
        "streaming: 2.0x load — {} arrivals: {} full, {} degraded, {} shed-admission, \
         {} shed-deadline, {} failed, recovered={}",
        overload_run.arrivals,
        o.served_full,
        o.served_degraded,
        o.shed_admission,
        o.shed_deadline,
        o.failed,
        o.final_quality == ServiceQuality::Full,
    );

    // Criterion-visible wrapper: one closed-loop flight per iteration
    // against a standing server, so the regular bench leg tracks the
    // submit→window→serve→respond path.
    let handle = start_server(config);
    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    let mut next_id = 0_u64;
    group.bench_function("closed_loop_flight", |b| {
        b.iter(|| {
            for _ in 0..flight {
                assert!(handle.submit(request(next_id, Duration::from_secs(60))));
                next_id += 1;
            }
            for _ in 0..flight {
                black_box(handle.recv_timeout(Duration::from_secs(10)).unwrap());
            }
        });
    });
    group.finish();
    let _ = handle.shutdown();

    let json = format!(
        "{{\n  \"bench\": \"streaming\",\n  \"scenario\": {{\"strategies\": {STRATEGIES}, \
         \"k\": {K}, \"max_batch\": {flight}, \"max_wait_ms\": {}, \"queue_capacity\": {}}},\n  \
         \"smoke\": {smoke},\n  \"available_parallelism\": {cores},\n  \
         \"max_sustainable_hz\": {sustainable_hz:.1},\n  \"latency_at_0_3x\": {{\"served\": {}, \
         \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \"p999_ms\": {p999:.3}}},\n  \
         \"overload_at_2x\": {{\"arrivals\": {}, \"served_full\": {}, \"served_degraded\": {}, \
         \"shed_admission\": {}, \"shed_deadline\": {}, \"failed\": {}, \"degraded_windows\": {}, \
         \"peak_queue_depth\": {}, \"recovered\": {}}}\n}}\n",
        config.admission.max_wait_ms,
        config.admission.queue_capacity,
        latency_run.served_nanos.len(),
        overload_run.arrivals,
        o.served_full,
        o.served_degraded,
        o.shed_admission,
        o.shed_deadline,
        o.failed,
        o.degraded_windows,
        o.peak_queue_depth,
        o.final_quality == ServiceQuality::Full,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    stratrec_bench::artifact::write_json_artifact(path, &json, smoke);
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
