//! Scan vs. indexed triage at the paper's scale (`|S| = 10 000`): the
//! linear-scan workforce matrix against the `StrategyCatalog` R-tree path,
//! plus the underlying eligibility primitive and the one-off cost of
//! building the catalog.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stratrec_core::batch::{BatchObjective, BatchStrat};
use stratrec_core::workforce::{AggregationMode, EligibilityRule, WorkforceMatrix};
use stratrec_workload::scenario::BatchScenario;

fn paper_scale_scenario(strategy_count: usize) -> BatchScenario {
    BatchScenario {
        batch_size: 10,
        strategy_count,
        k: 10,
        availability: 0.5,
        ..BatchScenario::default()
    }
}

fn bench_triage_scan_vs_indexed(c: &mut Criterion) {
    let mut group = c.benchmark_group("triage_scan_vs_indexed");
    group.sample_size(20);
    for &s in &[1_000_usize, 10_000] {
        let instance = paper_scale_scenario(s).materialize();
        let catalog = instance.catalog();
        let engine = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Max);
        group.bench_with_input(BenchmarkId::new("scan", s), &s, |b, _| {
            b.iter(|| {
                engine
                    .recommend_with_models(
                        black_box(&instance.requests),
                        black_box(&instance.strategies),
                        &instance.models,
                        10,
                        instance.availability,
                    )
                    .expect("models cover every strategy")
            });
        });
        group.bench_with_input(BenchmarkId::new("indexed", s), &s, |b, _| {
            b.iter(|| {
                engine
                    .recommend_with_catalog(
                        black_box(&instance.requests),
                        black_box(&catalog),
                        &instance.models,
                        10,
                        instance.availability,
                    )
                    .expect("models cover every strategy")
            });
        });
    }
    group.finish();
}

fn bench_eligibility_primitive(c: &mut Criterion) {
    let instance = paper_scale_scenario(10_000).materialize();
    let catalog = instance.catalog();
    let request = &instance.requests[0];
    let mut group = c.benchmark_group("eligibility_10k");
    group.sample_size(30);
    group.bench_function("linear_scan", |b| {
        b.iter(|| black_box(request.eligible_strategies(black_box(&instance.strategies))));
    });
    group.bench_function("rtree_query", |b| {
        b.iter(|| black_box(catalog.eligible_for_request(black_box(request))));
    });
    group.finish();
}

fn bench_matrix_paths(c: &mut Criterion) {
    let instance = paper_scale_scenario(10_000).materialize();
    let catalog = instance.catalog();
    let mut group = c.benchmark_group("workforce_matrix_10k");
    group.sample_size(20);
    group.bench_function("scan", |b| {
        b.iter(|| {
            WorkforceMatrix::compute(
                black_box(&instance.requests),
                black_box(&instance.strategies),
                &instance.models,
            )
            .expect("models cover every strategy")
        });
    });
    group.bench_function("indexed", |b| {
        b.iter(|| {
            WorkforceMatrix::compute_with_catalog(
                black_box(&instance.requests),
                black_box(&catalog),
                &instance.models,
                EligibilityRule::default(),
            )
            .expect("models cover every strategy")
        });
    });
    group.finish();
}

fn bench_catalog_build(c: &mut Criterion) {
    let instance = paper_scale_scenario(10_000).materialize();
    let mut group = c.benchmark_group("catalog_build_10k");
    group.sample_size(10);
    group.bench_function("bulk_load", |b| {
        b.iter(|| black_box(instance.catalog()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_triage_scan_vs_indexed,
    bench_eligibility_primitive,
    bench_matrix_paths,
    bench_catalog_build
);
criterion_main!(benches);
