//! Catalog maintenance under churn at the paper's scale (`|S| = 10 000`):
//! per-epoch full rebuild vs the mutable catalog's log-structured overlay.
//!
//! Each measured iteration replays the same epoch stream — insert/retire
//! churn followed by the epoch's eligibility queries — through both
//! maintenance disciplines:
//!
//! * **rebuild** — maintain a plain live `Vec<Strategy>` and bulk-load a
//!   fresh `StrategyCatalog` every epoch (what a long-running service had to
//!   do before the catalog became mutable);
//! * **overlay** — mutate one long-lived catalog in place; the overlay
//!   absorbs the churn and is merged into the R-tree at the policy
//!   threshold.
//!
//! Both disciplines retire exactly the same strategies (`ChurnEpoch` stores
//! rank-based picks) and answer exactly the same queries, so the timing gap
//! is pure maintenance cost.
//!
//! A third group ([`bench_compaction_loop`]) runs the full churn → compact
//! → query lifecycle over 10 epochs under the `CompactPolicy` variants,
//! reporting slot growth and peak workforce-matrix bytes with and without
//! epoch-boundary compaction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};
use stratrec_core::catalog::{RebuildPolicy, StrategyCatalog};
use stratrec_core::engine::BatchEngine;
use stratrec_core::workforce::{
    AggregationCache, AggregationMode, EligibilityRule, WorkforceMatrix,
};
use stratrec_workload::churn::{ChurnInstance, ChurnScenario, CompactPolicy};

fn paper_scale_scenario(churn_rate: f64) -> ChurnScenario {
    ChurnScenario {
        initial_strategies: 10_000,
        epochs: 3,
        batch_size: 10,
        k: 10,
        ..ChurnScenario::default()
    }
    .with_churn_rate(churn_rate)
}

fn bench_rebuild_vs_overlay(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_10k");
    group.sample_size(10);
    for &churn_pct in &[1_usize, 5, 10] {
        let instance = paper_scale_scenario(churn_pct as f64 / 100.0).materialize();

        group.bench_with_input(
            BenchmarkId::new("rebuild_per_epoch", format!("{churn_pct}pct")),
            &instance,
            |b, instance| {
                b.iter(|| {
                    let mut live = instance.initial.clone();
                    let mut served = 0usize;
                    for epoch in &instance.epochs {
                        epoch.apply_to_vec(&mut live);
                        let catalog = StrategyCatalog::from_slice(&live);
                        for request in &epoch.requests {
                            served += catalog.eligible_for_request(request).len();
                        }
                    }
                    black_box(served)
                });
            },
        );

        // The long-lived catalog was built once, long before the measured
        // epochs; clone the prebuilt state per iteration instead of paying
        // the initial bulk load inside the measurement.
        let base = instance.catalog(RebuildPolicy::default());
        group.bench_with_input(
            BenchmarkId::new("overlay", format!("{churn_pct}pct")),
            &instance,
            |b, instance| {
                b.iter(|| {
                    let mut catalog = base.clone();
                    let mut served = 0usize;
                    for epoch in &instance.epochs {
                        epoch.apply(&mut catalog);
                        for request in &epoch.requests {
                            served += catalog.eligible_for_request(request).len();
                        }
                    }
                    black_box(served)
                });
            },
        );
    }
    group.finish();
}

/// The maintenance primitive in isolation (no query load): one epoch of 1 %
/// churn absorbed by the overlay vs paid as a full bulk reload, plus the
/// overlay across merge policies.
fn bench_maintenance_primitive(c: &mut Criterion) {
    let instance = paper_scale_scenario(0.01).materialize();
    let epoch = &instance.epochs[0];
    let mut group = c.benchmark_group("churn_maintenance_10k_1pct");
    group.sample_size(10);

    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            let mut live = instance.initial.clone();
            epoch.apply_to_vec(&mut live);
            black_box(StrategyCatalog::from_slice(&live).len())
        });
    });
    for (label, policy) in [
        ("overlay_merge_always", RebuildPolicy::always()),
        ("overlay_threshold_128", RebuildPolicy::default()),
        ("overlay_never_merge", RebuildPolicy::never()),
    ] {
        // Prebuilt long-lived catalog: each sample pays a clone plus the
        // epoch's incremental maintenance, never the initial bulk load.
        let base = instance.catalog(policy);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut catalog = base.clone();
                epoch.apply(&mut catalog);
                black_box(catalog.len())
            });
        });
    }
    group.finish();
}

/// The full churn → compact → query loop over ≥ 10 epochs: slot-shaped
/// memory stays bounded with an epoch-boundary [`CompactPolicy`] where the
/// never-compact discipline grows monotonically.
///
/// Besides the timing, each configuration reports (to stderr, outside the
/// timed region) the final/peak `slot_count` and the peak workforce-matrix
/// footprint (`batch_size × slot_count × 8` bytes) with and without
/// compaction — the memory claim the ROADMAP item asks the bench to pin.
fn bench_compaction_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_compaction_10k_10epochs");
    group.sample_size(10);
    for &churn_pct in &[1_usize, 5, 10] {
        for (label, policy) in [
            ("never_compact", CompactPolicy::Never),
            ("compact_every_2_epochs", CompactPolicy::EveryNEpochs(2)),
            (
                "compact_at_30pct_tombstones",
                CompactPolicy::TombstoneRatio(0.3),
            ),
        ] {
            // The compaction policy is a scenario knob: `apply_epoch` reads
            // it from the instance. Same seed per churn rate, so every
            // policy replays an identical epoch stream.
            let instance = ChurnScenario {
                epochs: 10,
                compact: policy,
                ..paper_scale_scenario(churn_pct as f64 / 100.0)
            }
            .materialize();
            let base = instance.catalog(RebuildPolicy::default());

            // Memory accounting pass (unmeasured): replay the loop once and
            // report the slot growth this policy allows.
            let mut catalog = base.clone();
            let mut peak_slots = 0_usize;
            let mut peak_matrix_bytes = 0_usize;
            let mut compactions = 0_usize;
            for (i, epoch) in instance.epochs.iter().enumerate() {
                let (_, remap) = instance.apply_epoch(i, &mut catalog);
                compactions += usize::from(remap.is_some());
                peak_slots = peak_slots.max(catalog.slot_count());
                peak_matrix_bytes = peak_matrix_bytes
                    .max(epoch.requests.len() * catalog.slot_count() * std::mem::size_of::<f64>());
            }
            eprintln!(
                "churn_compaction_10k_10epochs/{label}/{churn_pct}pct: \
                 final slot_count {} (live {}), peak slot_count {peak_slots}, \
                 peak matrix bytes {peak_matrix_bytes}, compactions {compactions}",
                catalog.slot_count(),
                catalog.len(),
            );

            group.bench_with_input(
                BenchmarkId::new(label, format!("{churn_pct}pct")),
                &instance,
                |b, instance| {
                    b.iter(|| {
                        let mut catalog = base.clone();
                        let mut served = 0_usize;
                        for (i, epoch) in instance.epochs.iter().enumerate() {
                            instance.apply_epoch(i, &mut catalog);
                            for request in &epoch.requests {
                                served += catalog.eligible_for_request(request).len();
                            }
                        }
                        black_box((served, catalog.slot_count()))
                    });
                },
            );
        }
    }
    group.finish();
}

/// One measured configuration of the incremental-vs-recompute comparison.
struct IncrementalConfig {
    label: &'static str,
    churn_pct: usize,
    compact: CompactPolicy,
    rule: EligibilityRule,
}

/// Maintenance-step timings (matrix + aggregation only; the catalog churn
/// itself is applied outside the timed region — it is identical in both
/// disciplines and already measured by the other groups).
struct IncrementalMeasurement {
    incremental_ns_per_epoch: f64,
    recompute_ns_per_epoch: f64,
    repaired_rows_per_epoch: f64,
    epochs: usize,
    rows: usize,
}

fn measure_incremental(
    instance: &ChurnInstance,
    base: &StrategyCatalog,
    rule: EligibilityRule,
    reps: usize,
) -> IncrementalMeasurement {
    let engine = BatchEngine::new();
    let k = instance.k;
    let mode = AggregationMode::Sum;
    let epochs = instance.epochs.len();
    let mut incremental = Duration::ZERO;
    let mut recompute = Duration::ZERO;
    let mut repaired_total = 0usize;
    for rep in 0..reps {
        // Incremental arm: one long-lived matrix + cache + subscription.
        let mut catalog = base.clone();
        let mut matrix = WorkforceMatrix::compute_with_catalog(
            &instance.standing,
            &catalog,
            &instance.models,
            rule,
        )
        .expect("churn instances model every strategy");
        let mut cache = AggregationCache::new(k, mode);
        cache.prime(&matrix);
        let sub = catalog.subscribe_delta();
        let mut model_buf = Vec::new();
        for i in 0..epochs {
            instance.apply_epoch(i, &mut catalog);
            let started = Instant::now();
            let delta = catalog.take_delta(&sub).unwrap();
            engine
                .apply_matrix_delta(
                    &mut matrix,
                    &delta,
                    &instance.standing,
                    &catalog,
                    &instance.models,
                    rule,
                    &mut model_buf,
                )
                .expect("deltas are drained and applied in lockstep");
            repaired_total += cache.repair(&matrix, &delta);
            incremental += started.elapsed();
        }
        // Parity guard (outside the timed region): the incrementally
        // maintained state must equal a fresh recompute, or the comparison
        // is meaningless.
        if rep == 0 {
            let fresh = WorkforceMatrix::compute_with_catalog(
                &instance.standing,
                &catalog,
                &instance.models,
                rule,
            )
            .unwrap();
            assert_eq!(matrix, fresh, "incremental matrix diverged");
            assert_eq!(
                cache.requirements(),
                &fresh.aggregate(k, mode)[..],
                "incremental aggregation diverged"
            );
        }

        // Recompute arm: rebuild matrix + aggregation from scratch per epoch.
        let mut catalog = base.clone();
        let mut model_buf = Vec::new();
        for i in 0..epochs {
            instance.apply_epoch(i, &mut catalog);
            let started = Instant::now();
            let matrix = WorkforceMatrix::compute_with_catalog_scratch(
                &instance.standing,
                &catalog,
                &instance.models,
                rule,
                &mut model_buf,
            )
            .unwrap();
            let requirements = matrix.aggregate(k, mode);
            recompute += started.elapsed();
            black_box(requirements);
        }
    }
    let samples = (reps * epochs) as f64;
    IncrementalMeasurement {
        incremental_ns_per_epoch: incremental.as_nanos() as f64 / samples,
        recompute_ns_per_epoch: recompute.as_nanos() as f64 / samples,
        repaired_rows_per_epoch: repaired_total as f64 / samples,
        epochs,
        rows: instance.standing.len(),
    }
}

/// Delta-maintained matrix + lazily repaired aggregation vs the per-epoch
/// full recompute, at the paper's scale. Reports the maintenance-step cost
/// per epoch (stderr) and emits the machine-readable
/// `BENCH_incremental.json` at the workspace root so future PRs can track
/// the regression trajectory.
fn bench_incremental_vs_recompute(c: &mut Criterion) {
    let configs = [
        IncrementalConfig {
            label: "1pct_params",
            churn_pct: 1,
            compact: CompactPolicy::Never,
            rule: EligibilityRule::StrategyParameters,
        },
        IncrementalConfig {
            label: "1pct_model_only",
            churn_pct: 1,
            compact: CompactPolicy::Never,
            rule: EligibilityRule::ModelOnly,
        },
        IncrementalConfig {
            label: "1pct_compact_every_2",
            churn_pct: 1,
            compact: CompactPolicy::EveryNEpochs(2),
            rule: EligibilityRule::StrategyParameters,
        },
        IncrementalConfig {
            label: "5pct_params",
            churn_pct: 5,
            compact: CompactPolicy::Never,
            rule: EligibilityRule::StrategyParameters,
        },
        IncrementalConfig {
            label: "10pct_params",
            churn_pct: 10,
            compact: CompactPolicy::Never,
            rule: EligibilityRule::StrategyParameters,
        },
    ];
    let smoke = std::env::var_os("STRATREC_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0");
    let reps = if smoke { 1 } else { 5 };

    let mut group = c.benchmark_group("incremental_vs_recompute");
    group.sample_size(10);
    let mut json_rows = Vec::new();
    for config in &configs {
        let instance = ChurnScenario {
            epochs: 5,
            compact: config.compact,
            ..paper_scale_scenario(config.churn_pct as f64 / 100.0)
        }
        .materialize();
        let base = instance.catalog(RebuildPolicy::default());

        let measured = measure_incremental(&instance, &base, config.rule, reps);
        let speedup = measured.recompute_ns_per_epoch / measured.incremental_ns_per_epoch;
        eprintln!(
            "incremental_vs_recompute/{}: recompute {:.3} ms/epoch, incremental {:.3} ms/epoch \
             ({speedup:.1}x), {:.1}/{} aggregation rows repaired per epoch",
            config.label,
            measured.recompute_ns_per_epoch / 1e6,
            measured.incremental_ns_per_epoch / 1e6,
            measured.repaired_rows_per_epoch,
            measured.rows,
        );
        json_rows.push(format!(
            "    {{\"config\": \"{}\", \"churn_pct\": {}, \"compact\": \"{}\", \"rule\": \"{}\", \
             \"epochs\": {}, \"rows\": {}, \"recompute_ns_per_epoch\": {:.0}, \
             \"incremental_ns_per_epoch\": {:.0}, \"speedup\": {:.2}, \
             \"repaired_rows_per_epoch\": {:.2}}}",
            config.label,
            config.churn_pct,
            match config.compact {
                CompactPolicy::Never => "never".to_string(),
                CompactPolicy::EveryNEpochs(n) => format!("every_{n}_epochs"),
                CompactPolicy::TombstoneRatio(r) => format!("tombstone_ratio_{r}"),
            },
            match config.rule {
                EligibilityRule::StrategyParameters => "strategy_parameters",
                EligibilityRule::ModelOnly => "model_only",
            },
            measured.epochs,
            measured.rows,
            measured.recompute_ns_per_epoch,
            measured.incremental_ns_per_epoch,
            speedup,
            measured.repaired_rows_per_epoch,
        ));

        // Criterion-visible wrappers (smoke coverage + regression timing of
        // the whole maintenance loop, churn included, both disciplines).
        group.bench_with_input(
            BenchmarkId::new("incremental", config.label),
            &instance,
            |b, instance| {
                let matrix = WorkforceMatrix::compute_with_catalog(
                    &instance.standing,
                    &base,
                    &instance.models,
                    config.rule,
                )
                .unwrap();
                let mut cache = AggregationCache::new(instance.k, AggregationMode::Sum);
                cache.prime(&matrix);
                let mut seeded = base.clone();
                let sub = seeded.subscribe_delta();
                let engine = BatchEngine::new();
                let mut model_buf = Vec::new();
                b.iter(|| {
                    let mut catalog = seeded.clone();
                    let mut matrix = matrix.clone();
                    let mut cache = cache.clone();
                    let mut repaired = 0usize;
                    for i in 0..instance.epochs.len() {
                        instance.apply_epoch(i, &mut catalog);
                        let delta = catalog.take_delta(&sub).unwrap();
                        engine
                            .apply_matrix_delta(
                                &mut matrix,
                                &delta,
                                &instance.standing,
                                &catalog,
                                &instance.models,
                                config.rule,
                                &mut model_buf,
                            )
                            .unwrap();
                        repaired += cache.repair(&matrix, &delta);
                    }
                    black_box((repaired, matrix.cols()))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("recompute", config.label),
            &instance,
            |b, instance| {
                let mut model_buf = Vec::new();
                b.iter(|| {
                    let mut catalog = base.clone();
                    let mut served = 0usize;
                    for i in 0..instance.epochs.len() {
                        instance.apply_epoch(i, &mut catalog);
                        let matrix = WorkforceMatrix::compute_with_catalog_scratch(
                            &instance.standing,
                            &catalog,
                            &instance.models,
                            config.rule,
                            &mut model_buf,
                        )
                        .unwrap();
                        served += matrix
                            .aggregate(instance.k, AggregationMode::Sum)
                            .iter()
                            .flatten()
                            .count();
                    }
                    black_box(served)
                });
            },
        );
    }
    group.finish();

    // Machine-readable trajectory for future PRs: one JSON file at the
    // workspace root, regenerated by every bench run (including the CI
    // smoke job, whose numbers are 1-rep and only indicative).
    let json = format!(
        "{{\n  \"bench\": \"incremental_vs_recompute\",\n  \"scenario\": {{\"initial_strategies\": 10000, \
         \"epochs\": 5, \"standing_rows\": 10, \"k\": 10}},\n  \"smoke\": {smoke},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    // Fail loudly: a silent write failure would let CI archive the stale
    // committed copy as if it were this run's trajectory.
    std::fs::write(path, json).unwrap_or_else(|error| panic!("could not write {path}: {error}"));
}

criterion_group!(
    benches,
    bench_rebuild_vs_overlay,
    bench_maintenance_primitive,
    bench_compaction_loop,
    bench_incremental_vs_recompute
);
criterion_main!(benches);
