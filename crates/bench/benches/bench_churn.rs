//! Catalog maintenance under churn at the paper's scale (`|S| = 10 000`):
//! per-epoch full rebuild vs the mutable catalog's log-structured overlay.
//!
//! Each measured iteration replays the same epoch stream — insert/retire
//! churn followed by the epoch's eligibility queries — through both
//! maintenance disciplines:
//!
//! * **rebuild** — maintain a plain live `Vec<Strategy>` and bulk-load a
//!   fresh `StrategyCatalog` every epoch (what a long-running service had to
//!   do before the catalog became mutable);
//! * **overlay** — mutate one long-lived catalog in place; the overlay
//!   absorbs the churn and is merged into the R-tree at the policy
//!   threshold.
//!
//! Both disciplines retire exactly the same strategies (`ChurnEpoch` stores
//! rank-based picks) and answer exactly the same queries, so the timing gap
//! is pure maintenance cost.
//!
//! A third group ([`bench_compaction_loop`]) runs the full churn → compact
//! → query lifecycle over 10 epochs under the `CompactPolicy` variants,
//! reporting slot growth and peak workforce-matrix bytes with and without
//! epoch-boundary compaction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stratrec_core::catalog::{RebuildPolicy, StrategyCatalog};
use stratrec_workload::churn::{ChurnScenario, CompactPolicy};

fn paper_scale_scenario(churn_rate: f64) -> ChurnScenario {
    ChurnScenario {
        initial_strategies: 10_000,
        epochs: 3,
        batch_size: 10,
        k: 10,
        ..ChurnScenario::default()
    }
    .with_churn_rate(churn_rate)
}

fn bench_rebuild_vs_overlay(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_10k");
    group.sample_size(10);
    for &churn_pct in &[1_usize, 5, 10] {
        let instance = paper_scale_scenario(churn_pct as f64 / 100.0).materialize();

        group.bench_with_input(
            BenchmarkId::new("rebuild_per_epoch", format!("{churn_pct}pct")),
            &instance,
            |b, instance| {
                b.iter(|| {
                    let mut live = instance.initial.clone();
                    let mut served = 0usize;
                    for epoch in &instance.epochs {
                        epoch.apply_to_vec(&mut live);
                        let catalog = StrategyCatalog::from_slice(&live);
                        for request in &epoch.requests {
                            served += catalog.eligible_for_request(request).len();
                        }
                    }
                    black_box(served)
                });
            },
        );

        // The long-lived catalog was built once, long before the measured
        // epochs; clone the prebuilt state per iteration instead of paying
        // the initial bulk load inside the measurement.
        let base = instance.catalog(RebuildPolicy::default());
        group.bench_with_input(
            BenchmarkId::new("overlay", format!("{churn_pct}pct")),
            &instance,
            |b, instance| {
                b.iter(|| {
                    let mut catalog = base.clone();
                    let mut served = 0usize;
                    for epoch in &instance.epochs {
                        epoch.apply(&mut catalog);
                        for request in &epoch.requests {
                            served += catalog.eligible_for_request(request).len();
                        }
                    }
                    black_box(served)
                });
            },
        );
    }
    group.finish();
}

/// The maintenance primitive in isolation (no query load): one epoch of 1 %
/// churn absorbed by the overlay vs paid as a full bulk reload, plus the
/// overlay across merge policies.
fn bench_maintenance_primitive(c: &mut Criterion) {
    let instance = paper_scale_scenario(0.01).materialize();
    let epoch = &instance.epochs[0];
    let mut group = c.benchmark_group("churn_maintenance_10k_1pct");
    group.sample_size(10);

    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            let mut live = instance.initial.clone();
            epoch.apply_to_vec(&mut live);
            black_box(StrategyCatalog::from_slice(&live).len())
        });
    });
    for (label, policy) in [
        ("overlay_merge_always", RebuildPolicy::always()),
        ("overlay_threshold_128", RebuildPolicy::default()),
        ("overlay_never_merge", RebuildPolicy::never()),
    ] {
        // Prebuilt long-lived catalog: each sample pays a clone plus the
        // epoch's incremental maintenance, never the initial bulk load.
        let base = instance.catalog(policy);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut catalog = base.clone();
                epoch.apply(&mut catalog);
                black_box(catalog.len())
            });
        });
    }
    group.finish();
}

/// The full churn → compact → query loop over ≥ 10 epochs: slot-shaped
/// memory stays bounded with an epoch-boundary [`CompactPolicy`] where the
/// never-compact discipline grows monotonically.
///
/// Besides the timing, each configuration reports (to stderr, outside the
/// timed region) the final/peak `slot_count` and the peak workforce-matrix
/// footprint (`batch_size × slot_count × 8` bytes) with and without
/// compaction — the memory claim the ROADMAP item asks the bench to pin.
fn bench_compaction_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_compaction_10k_10epochs");
    group.sample_size(10);
    for &churn_pct in &[1_usize, 5, 10] {
        for (label, policy) in [
            ("never_compact", CompactPolicy::Never),
            ("compact_every_2_epochs", CompactPolicy::EveryNEpochs(2)),
            (
                "compact_at_30pct_tombstones",
                CompactPolicy::TombstoneRatio(0.3),
            ),
        ] {
            // The compaction policy is a scenario knob: `apply_epoch` reads
            // it from the instance. Same seed per churn rate, so every
            // policy replays an identical epoch stream.
            let instance = ChurnScenario {
                epochs: 10,
                compact: policy,
                ..paper_scale_scenario(churn_pct as f64 / 100.0)
            }
            .materialize();
            let base = instance.catalog(RebuildPolicy::default());

            // Memory accounting pass (unmeasured): replay the loop once and
            // report the slot growth this policy allows.
            let mut catalog = base.clone();
            let mut peak_slots = 0_usize;
            let mut peak_matrix_bytes = 0_usize;
            let mut compactions = 0_usize;
            for (i, epoch) in instance.epochs.iter().enumerate() {
                let (_, remap) = instance.apply_epoch(i, &mut catalog);
                compactions += usize::from(remap.is_some());
                peak_slots = peak_slots.max(catalog.slot_count());
                peak_matrix_bytes = peak_matrix_bytes
                    .max(epoch.requests.len() * catalog.slot_count() * std::mem::size_of::<f64>());
            }
            eprintln!(
                "churn_compaction_10k_10epochs/{label}/{churn_pct}pct: \
                 final slot_count {} (live {}), peak slot_count {peak_slots}, \
                 peak matrix bytes {peak_matrix_bytes}, compactions {compactions}",
                catalog.slot_count(),
                catalog.len(),
            );

            group.bench_with_input(
                BenchmarkId::new(label, format!("{churn_pct}pct")),
                &instance,
                |b, instance| {
                    b.iter(|| {
                        let mut catalog = base.clone();
                        let mut served = 0_usize;
                        for (i, epoch) in instance.epochs.iter().enumerate() {
                            instance.apply_epoch(i, &mut catalog);
                            for request in &epoch.requests {
                                served += catalog.eligible_for_request(request).len();
                            }
                        }
                        black_box((served, catalog.slot_count()))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rebuild_vs_overlay,
    bench_maintenance_primitive,
    bench_compaction_loop
);
criterion_main!(benches);
