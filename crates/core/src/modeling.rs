//! Deployment-strategy modeling (paper §3.1).
//!
//! For every (strategy, parameter) pair the paper models the achieved
//! parameter as a **linear function of worker availability**,
//! `param = α·w + β` (Equation 4), with `(α, β)` fitted from historical
//! deployments. Its real-data experiments validate this linearity with 90 %
//! significance for two text-editing task types (Table 6): quality and cost
//! increase with availability, latency decreases.
//!
//! This module provides:
//!
//! * [`LinearModel`] — one `α·w + β` line, with forward estimation and the
//!   inversion that turns a deployment threshold into a minimum workforce
//!   requirement (the key primitive of §3.2).
//! * [`StrategyModel`] — the three lines (quality, cost, latency) of one
//!   strategy, plus fitting from observation data.
//! * [`ModelLibrary`] — the per-strategy model collection the Aggregator
//!   consults when a batch of requests arrives.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use stratrec_optim::regression::{fit_linear, LinearFit};

use crate::availability::WorkerAvailability;
use crate::error::StratRecError;
use crate::model::{DeploymentParameters, Strategy, StrategyId};

/// Which of the three deployment parameters a model refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParameterKind {
    /// Crowd-contribution quality (a lower bound in requests).
    Quality,
    /// Monetary cost (an upper bound in requests).
    Cost,
    /// Completion latency (an upper bound in requests).
    Latency,
}

impl ParameterKind {
    /// All three parameter kinds, in the paper's (quality, cost, latency)
    /// order.
    pub const ALL: [ParameterKind; 3] = [
        ParameterKind::Quality,
        ParameterKind::Cost,
        ParameterKind::Latency,
    ];

    /// Whether a request treats this parameter as a lower bound (quality) or
    /// an upper bound (cost, latency).
    #[must_use]
    pub fn is_lower_bound(self) -> bool {
        matches!(self, ParameterKind::Quality)
    }

    /// Extracts this parameter from a [`DeploymentParameters`] triple.
    #[must_use]
    pub fn of(self, params: &DeploymentParameters) -> f64 {
        match self {
            ParameterKind::Quality => params.quality,
            ParameterKind::Cost => params.cost,
            ParameterKind::Latency => params.latency,
        }
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ParameterKind::Quality => "quality",
            ParameterKind::Cost => "cost",
            ParameterKind::Latency => "latency",
        }
    }
}

/// The linear model `param = α · w + β` of Equation 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Slope `α` with respect to worker availability.
    pub alpha: f64,
    /// Intercept `β` (the parameter value with no available workers).
    pub beta: f64,
}

impl LinearModel {
    /// Creates a model from its coefficients.
    #[must_use]
    pub fn new(alpha: f64, beta: f64) -> Self {
        Self { alpha, beta }
    }

    /// Estimates the parameter value at availability `w`, clamped to `[0, 1]`
    /// because all parameters are normalized.
    #[must_use]
    pub fn estimate(&self, w: WorkerAvailability) -> f64 {
        (self.alpha * w.value() + self.beta).clamp(0.0, 1.0)
    }

    /// Estimates the parameter value at a raw availability fraction without
    /// clamping; used for curve plotting and fitting diagnostics.
    #[must_use]
    pub fn estimate_unclamped(&self, w: f64) -> f64 {
        self.alpha * w + self.beta
    }

    /// The minimum workforce `w ∈ [0, 1]` needed for the modeled parameter to
    /// meet `threshold`, taking the bound direction into account:
    ///
    /// * lower-bound parameters (quality) must reach **at least** the
    ///   threshold;
    /// * upper-bound parameters (cost, latency) must stay **at most** at the
    ///   threshold.
    ///
    /// Returns `f64::INFINITY` when no workforce in `[0, 1]` can meet the
    /// threshold (the strategy is infeasible for that request), and `0.0`
    /// when the threshold is already met with no workers. This is the
    /// "solving Equation 4 for w" step of §3.2.
    #[must_use]
    pub fn required_workforce(&self, threshold: f64, kind: ParameterKind) -> f64 {
        let satisfied_at = |w: f64| -> bool {
            let value = self.estimate_unclamped(w);
            if kind.is_lower_bound() {
                value + 1e-12 >= threshold
            } else {
                value <= threshold + 1e-12
            }
        };
        if satisfied_at(0.0) {
            return 0.0;
        }
        // Not satisfied at w = 0; a finite requirement exists only if the
        // line moves towards the threshold as w grows.
        if self.alpha.abs() <= 1e-12 {
            return f64::INFINITY;
        }
        let w = (threshold - self.beta) / self.alpha;
        if !w.is_finite() || !(0.0..=1.0 + 1e-9).contains(&w) || !satisfied_at(w.min(1.0)) {
            f64::INFINITY
        } else {
            w.clamp(0.0, 1.0)
        }
    }
}

/// The three fitted lines of one deployment strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyModel {
    /// Quality as a function of availability.
    pub quality: LinearModel,
    /// Cost as a function of availability.
    pub cost: LinearModel,
    /// Latency as a function of availability.
    pub latency: LinearModel,
}

impl StrategyModel {
    /// Creates a model from three lines.
    #[must_use]
    pub fn new(quality: LinearModel, cost: LinearModel, latency: LinearModel) -> Self {
        Self {
            quality,
            cost,
            latency,
        }
    }

    /// A model where all three parameters share the same line. The synthetic
    /// experiments of §5.2 generate one `(α, β = 1 − α)` pair per strategy,
    /// which corresponds to this constructor.
    #[must_use]
    pub fn uniform(alpha: f64, beta: f64) -> Self {
        let line = LinearModel::new(alpha, beta);
        // Latency decreases with availability in the paper's fits; the
        // uniform synthetic model keeps all three identical, matching §5.2.2.
        Self::new(line, line, line)
    }

    /// The line for a given parameter kind.
    #[must_use]
    pub fn line(&self, kind: ParameterKind) -> LinearModel {
        match kind {
            ParameterKind::Quality => self.quality,
            ParameterKind::Cost => self.cost,
            ParameterKind::Latency => self.latency,
        }
    }

    /// Estimated parameters of the strategy at availability `w`.
    #[must_use]
    pub fn estimate_parameters(&self, w: WorkerAvailability) -> DeploymentParameters {
        DeploymentParameters::clamped(
            self.quality.estimate(w),
            self.cost.estimate(w),
            self.latency.estimate(w),
        )
    }

    /// The minimum workforce needed for the strategy to satisfy *all three*
    /// thresholds of `request` — the maximum of the three per-parameter
    /// requirements (paper §3.2, the `max` in the definition of `w_ij`).
    #[must_use]
    pub fn required_workforce(&self, request: &DeploymentParameters) -> f64 {
        ParameterKind::ALL
            .iter()
            .map(|&kind| self.line(kind).required_workforce(kind.of(request), kind))
            .fold(0.0_f64, f64::max)
    }

    /// Fits a strategy model from `(availability, observed parameters)`
    /// pairs, e.g. the outcome of repeated deployments of the same strategy
    /// at different availability levels (how Table 6 is produced).
    ///
    /// Returns `None` when any of the three regressions is degenerate (fewer
    /// than two points or constant availability).
    #[must_use]
    pub fn fit(observations: &[(f64, DeploymentParameters)]) -> Option<Self> {
        let fits = Self::fit_with_diagnostics(observations)?;
        Some(Self::new(
            LinearModel::new(fits[0].slope, fits[0].intercept),
            LinearModel::new(fits[1].slope, fits[1].intercept),
            LinearModel::new(fits[2].slope, fits[2].intercept),
        ))
    }

    /// Like [`Self::fit`] but returns the full regression diagnostics
    /// (standard errors, R², confidence intervals) for the quality, cost and
    /// latency fits, in that order.
    #[must_use]
    pub fn fit_with_diagnostics(
        observations: &[(f64, DeploymentParameters)],
    ) -> Option<[LinearFit; 3]> {
        let xs: Vec<f64> = observations.iter().map(|(w, _)| *w).collect();
        let quality: Vec<f64> = observations.iter().map(|(_, p)| p.quality).collect();
        let cost: Vec<f64> = observations.iter().map(|(_, p)| p.cost).collect();
        let latency: Vec<f64> = observations.iter().map(|(_, p)| p.latency).collect();
        Some([
            fit_linear(&xs, &quality)?,
            fit_linear(&xs, &cost)?,
            fit_linear(&xs, &latency)?,
        ])
    }
}

/// A collection of fitted strategy models, keyed by strategy id.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelLibrary {
    models: HashMap<u64, StrategyModel>,
}

impl ModelLibrary {
    /// An empty library.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) the model of a strategy.
    pub fn insert(&mut self, id: StrategyId, model: StrategyModel) {
        self.models.insert(id.0, model);
    }

    /// Looks up the model of a strategy.
    #[must_use]
    pub fn get(&self, id: StrategyId) -> Option<&StrategyModel> {
        self.models.get(&id.0)
    }

    /// Looks up a model or returns [`StratRecError::MissingModel`].
    ///
    /// # Errors
    ///
    /// Returns an error when no model was fitted for `id`.
    pub fn require(&self, id: StrategyId) -> Result<&StrategyModel, StratRecError> {
        self.get(id)
            .ok_or(StratRecError::MissingModel { strategy: id.0 })
    }

    /// Number of models in the library.
    #[must_use]
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the library is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Builds a library that assigns the *same* model to every strategy in
    /// `strategies`.
    #[must_use]
    pub fn uniform_for(strategies: &[Strategy], model: StrategyModel) -> Self {
        let mut lib = Self::new();
        for s in strategies {
            lib.insert(s.id, model);
        }
        lib
    }

    /// Builds a library from parallel slices of strategies and models.
    #[must_use]
    pub fn from_pairs(pairs: impl IntoIterator<Item = (StrategyId, StrategyModel)>) -> Self {
        let mut lib = Self::new();
        for (id, model) in pairs {
            lib.insert(id, model);
        }
        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avail(w: f64) -> WorkerAvailability {
        WorkerAvailability::new(w).unwrap()
    }

    #[test]
    fn estimation_follows_the_line_and_clamps() {
        // Translation SEQ-IND-CRO quality from Table 6: α = 0.09, β = 0.85.
        let m = LinearModel::new(0.09, 0.85);
        assert!((m.estimate(avail(0.0)) - 0.85).abs() < 1e-12);
        assert!((m.estimate(avail(1.0)) - 0.94).abs() < 1e-12);
        // Latency model with a large intercept clamps at 1.
        let l = LinearModel::new(-0.98, 1.40);
        assert_eq!(l.estimate(avail(0.0)), 1.0);
        assert!((l.estimate(avail(1.0)) - 0.42).abs() < 1e-12);
        assert!((l.estimate_unclamped(0.0) - 1.40).abs() < 1e-12);
    }

    #[test]
    fn required_workforce_for_lower_bound_quality() {
        let m = LinearModel::new(0.5, 0.5); // quality from 0.5 to 1.0
        assert_eq!(m.required_workforce(0.4, ParameterKind::Quality), 0.0);
        assert!((m.required_workforce(0.75, ParameterKind::Quality) - 0.5).abs() < 1e-12);
        assert!((m.required_workforce(1.0, ParameterKind::Quality) - 1.0).abs() < 1e-12);
        // Unreachable threshold above the line's maximum.
        let m = LinearModel::new(0.2, 0.5);
        assert!(m
            .required_workforce(0.9, ParameterKind::Quality)
            .is_infinite());
    }

    #[test]
    fn required_workforce_for_upper_bound_latency() {
        // Latency decreases with availability: α < 0.
        let m = LinearModel::new(-0.98, 1.40);
        // Threshold 0.5 requires (0.5 - 1.40) / -0.98 ≈ 0.918.
        let w = m.required_workforce(0.5, ParameterKind::Latency);
        assert!((w - 0.9183673469).abs() < 1e-6);
        // Threshold 1.5 is already met at w = 0.
        assert_eq!(m.required_workforce(1.5, ParameterKind::Latency), 0.0);
        // Threshold 0.1 is unreachable even at w = 1 (latency 0.42).
        assert!(m
            .required_workforce(0.1, ParameterKind::Latency)
            .is_infinite());
    }

    #[test]
    fn required_workforce_for_increasing_cost_is_zero_or_infinite() {
        // Cost grows with availability (α = 1, β = 0): any cost budget is met
        // at w = 0 (zero cost), so the requirement is 0.
        let m = LinearModel::new(1.0, 0.0);
        assert_eq!(m.required_workforce(0.3, ParameterKind::Cost), 0.0);
        // A cost line that starts above the budget and only grows can never
        // meet it.
        let m = LinearModel::new(0.5, 0.6);
        assert!(m.required_workforce(0.3, ParameterKind::Cost).is_infinite());
    }

    #[test]
    fn flat_line_requirements() {
        let flat = LinearModel::new(0.0, 0.7);
        assert_eq!(flat.required_workforce(0.6, ParameterKind::Quality), 0.0);
        assert!(flat
            .required_workforce(0.8, ParameterKind::Quality)
            .is_infinite());
        assert_eq!(flat.required_workforce(0.8, ParameterKind::Cost), 0.0);
        assert!(flat
            .required_workforce(0.6, ParameterKind::Cost)
            .is_infinite());
    }

    #[test]
    fn strategy_model_takes_max_over_parameters() {
        let model = StrategyModel::new(
            LinearModel::new(0.5, 0.5),   // quality: needs w = 0.6 for 0.8
            LinearModel::new(1.0, 0.0),   // cost: always satisfiable at w = 0
            LinearModel::new(-0.5, 0.75), // latency: needs w = 0.5 for 0.5
        );
        let request = DeploymentParameters::new(0.8, 0.9, 0.5).unwrap();
        let w = model.required_workforce(&request);
        assert!((w - 0.6).abs() < 1e-12);
    }

    #[test]
    fn synthetic_uniform_model_matches_section_5_2() {
        // α ∈ [0.5, 1], β = 1 − α: requirement for a threshold d is
        // (d − β) / α, within [0, 1] for d ∈ [0.625, 1].
        let model = StrategyModel::uniform(0.8, 0.2);
        let request = DeploymentParameters::new(0.8, 1.0, 1.0).unwrap();
        let w = model.required_workforce(&request);
        assert!((w - 0.75).abs() < 1e-12);
    }

    #[test]
    fn estimate_parameters_combines_the_three_lines() {
        let model = StrategyModel::new(
            LinearModel::new(0.09, 0.85),
            LinearModel::new(1.0, 0.0),
            LinearModel::new(-0.98, 1.40),
        );
        let p = model.estimate_parameters(avail(0.8));
        assert!((p.quality - 0.922).abs() < 1e-9);
        assert!((p.cost - 0.8).abs() < 1e-9);
        assert!((p.latency - 0.616).abs() < 1e-9);
    }

    #[test]
    fn fitting_recovers_generating_model() {
        // Coefficients chosen so every observation stays inside [0, 1] over
        // the sampled availability range; otherwise the clamping in
        // `DeploymentParameters` would bias the regression.
        let truth = StrategyModel::new(
            LinearModel::new(0.10, 0.80),
            LinearModel::new(0.80, 0.10),
            LinearModel::new(-0.60, 0.90),
        );
        let observations: Vec<(f64, DeploymentParameters)> = (0..12)
            .map(|i| {
                let w = 0.4 + 0.05 * i as f64;
                (
                    w,
                    DeploymentParameters::clamped(
                        truth.quality.estimate_unclamped(w),
                        truth.cost.estimate_unclamped(w),
                        truth.latency.estimate_unclamped(w),
                    ),
                )
            })
            .collect();
        let fitted = StrategyModel::fit(&observations).unwrap();
        assert!((fitted.quality.alpha - 0.10).abs() < 1e-6);
        assert!((fitted.cost.alpha - 0.80).abs() < 1e-6);
        assert!((fitted.latency.alpha + 0.60).abs() < 1e-6);
        let diags = StrategyModel::fit_with_diagnostics(&observations).unwrap();
        assert!(diags[0].r_squared > 0.99);
    }

    #[test]
    fn fit_rejects_degenerate_observations() {
        assert!(StrategyModel::fit(&[]).is_none());
        let constant = vec![
            (0.5, DeploymentParameters::clamped(0.7, 0.3, 0.4)),
            (0.5, DeploymentParameters::clamped(0.8, 0.2, 0.5)),
        ];
        assert!(StrategyModel::fit(&constant).is_none());
    }

    #[test]
    fn model_library_lookup_and_errors() {
        let strategies = crate::examples_data::running_example_strategies();
        let lib = ModelLibrary::uniform_for(&strategies, StrategyModel::uniform(0.8, 0.2));
        assert_eq!(lib.len(), strategies.len());
        assert!(!lib.is_empty());
        assert!(lib.get(strategies[0].id).is_some());
        assert!(lib.require(strategies[0].id).is_ok());
        assert!(matches!(
            lib.require(StrategyId(999)),
            Err(StratRecError::MissingModel { strategy: 999 })
        ));
        let lib2 =
            ModelLibrary::from_pairs(vec![(StrategyId(1), StrategyModel::uniform(0.6, 0.4))]);
        assert_eq!(lib2.len(), 1);
        assert!(ModelLibrary::new().is_empty());
    }

    #[test]
    fn parameter_kind_helpers() {
        let p = DeploymentParameters::new(0.7, 0.2, 0.3).unwrap();
        assert_eq!(ParameterKind::Quality.of(&p), 0.7);
        assert_eq!(ParameterKind::Cost.of(&p), 0.2);
        assert_eq!(ParameterKind::Latency.of(&p), 0.3);
        assert!(ParameterKind::Quality.is_lower_bound());
        assert!(!ParameterKind::Cost.is_lower_bound());
        assert_eq!(ParameterKind::Latency.label(), "latency");
    }
}
