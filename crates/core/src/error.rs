//! Error types of the StratRec core library.

use serde::{Deserialize, Serialize};

/// Errors produced while building StratRec inputs or running its algorithms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StratRecError {
    /// A deployment parameter was outside the normalized `[0, 1]` range or
    /// not finite.
    ParameterOutOfRange {
        /// Name of the offending parameter (`"quality"`, `"cost"`,
        /// `"latency"` or `"availability"`).
        parameter: String,
        /// The offending value.
        value: f64,
    },
    /// A probability distribution over worker availability was invalid.
    InvalidDistribution(String),
    /// The cardinality constraint `k` was zero.
    ZeroCardinality,
    /// The strategy set was empty where at least one strategy is required.
    EmptyStrategySet,
    /// Fewer strategies exist than the requested cardinality `k`, so no
    /// relaxation of the deployment parameters can ever admit `k` strategies.
    NotEnoughStrategies {
        /// Number of strategies available.
        available: usize,
        /// Cardinality requested.
        requested: usize,
    },
    /// The requested operation needs a fitted model that is missing from the
    /// model library.
    MissingModel {
        /// Identifier of the strategy whose model is missing.
        strategy: u64,
    },
    /// A [`crate::catalog::DeltaSubscription`] handle no longer names a live
    /// tracker on this catalog: it was released by
    /// [`crate::catalog::StrategyCatalog::unsubscribe_delta`], evicted after
    /// lapsing past the catalog's
    /// [`delta_lapse_limit`](crate::catalog::StrategyCatalog::delta_lapse_limit),
    /// or issued by a different catalog. Handles are generation-tagged, so a
    /// stale copy can never silently drain a newer subscriber that recycled
    /// the same id — the drain fails with this error instead. Recover by
    /// re-subscribing and recomputing the derived state from scratch.
    StaleSubscription {
        /// The id carried by the rejected handle.
        id: usize,
    },
    /// Derived data was pinned at a catalog epoch the catalog has moved past
    /// (an insert, retire or compaction happened since): its slot references
    /// may be renumbered or reclaimed, so the operation refuses to run
    /// instead of silently using stale slots. Re-derive against the current
    /// catalog, or — after a compaction — renumber through the returned
    /// [`crate::catalog::SlotRemap`].
    StaleCatalog {
        /// The catalog epoch the derived data was captured at.
        expected: u64,
        /// The catalog's current epoch.
        found: u64,
    },
}

impl std::fmt::Display for StratRecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ParameterOutOfRange { parameter, value } => {
                write!(
                    f,
                    "{parameter} = {value} is outside the normalized [0, 1] range"
                )
            }
            Self::InvalidDistribution(msg) => write!(f, "invalid availability distribution: {msg}"),
            Self::ZeroCardinality => write!(f, "cardinality constraint k must be at least 1"),
            Self::EmptyStrategySet => write!(f, "the strategy set is empty"),
            Self::NotEnoughStrategies {
                available,
                requested,
            } => write!(
                f,
                "only {available} strategies exist but {requested} were requested"
            ),
            Self::MissingModel { strategy } => {
                write!(f, "no fitted model for strategy {strategy}")
            }
            Self::StaleSubscription { id } => write!(
                f,
                "delta subscription {id} is not registered with this catalog \
                 (released, evicted after lapsing, or issued elsewhere); \
                 re-subscribe and recompute the derived state"
            ),
            Self::StaleCatalog { expected, found } => write!(
                f,
                "catalog moved to epoch {found} but the problem was built at epoch {expected}; \
                 rebuild it (or remap through the compaction's SlotRemap)"
            ),
        }
    }
}

impl std::error::Error for StratRecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(StratRecError, &str)> = vec![
            (
                StratRecError::ParameterOutOfRange {
                    parameter: "quality".into(),
                    value: 1.5,
                },
                "quality",
            ),
            (
                StratRecError::InvalidDistribution("does not sum to 1".into()),
                "distribution",
            ),
            (StratRecError::ZeroCardinality, "cardinality"),
            (StratRecError::EmptyStrategySet, "empty"),
            (
                StratRecError::NotEnoughStrategies {
                    available: 2,
                    requested: 5,
                },
                "2 strategies",
            ),
            (StratRecError::MissingModel { strategy: 7 }, "strategy 7"),
            (StratRecError::StaleSubscription { id: 4 }, "subscription 4"),
            (
                StratRecError::StaleCatalog {
                    expected: 3,
                    found: 5,
                },
                "epoch 5",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                format!("{err}").contains(needle),
                "message for {err:?} should mention {needle}"
            );
        }
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let a = StratRecError::ZeroCardinality;
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, StratRecError::EmptyStrategySet);
    }
}
