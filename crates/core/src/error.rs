//! Error types of the StratRec core library.

use serde::{Deserialize, Serialize};

/// Errors produced while building StratRec inputs or running its algorithms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StratRecError {
    /// A deployment parameter was outside the normalized `[0, 1]` range or
    /// not finite.
    ParameterOutOfRange {
        /// Name of the offending parameter (`"quality"`, `"cost"`,
        /// `"latency"` or `"availability"`).
        parameter: String,
        /// The offending value.
        value: f64,
    },
    /// A probability distribution over worker availability was invalid.
    InvalidDistribution(String),
    /// A [`crate::fairness::FairnessPolicy`] was malformed: a floor or
    /// weight was negative or non-finite, the floors summed past the whole
    /// budget, or the policy named no tenants.
    InvalidFairnessPolicy(String),
    /// The cardinality constraint `k` was zero.
    ZeroCardinality,
    /// The strategy set was empty where at least one strategy is required.
    EmptyStrategySet,
    /// Fewer strategies exist than the requested cardinality `k`, so no
    /// relaxation of the deployment parameters can ever admit `k` strategies.
    NotEnoughStrategies {
        /// Number of strategies available.
        available: usize,
        /// Cardinality requested.
        requested: usize,
    },
    /// The requested operation needs a fitted model that is missing from the
    /// model library.
    MissingModel {
        /// Identifier of the strategy whose model is missing.
        strategy: u64,
    },
    /// A [`crate::catalog::DeltaSubscription`] handle no longer names a live
    /// tracker on this catalog: it was released by
    /// [`crate::catalog::StrategyCatalog::unsubscribe_delta`], evicted after
    /// lapsing past the catalog's
    /// [`delta_lapse_limit`](crate::catalog::StrategyCatalog::delta_lapse_limit),
    /// or issued by a different catalog. Handles are generation-tagged, so a
    /// stale copy can never silently drain a newer subscriber that recycled
    /// the same id — the drain fails with this error instead. Recover by
    /// re-subscribing and recomputing the derived state from scratch.
    StaleSubscription {
        /// The id carried by the rejected handle.
        id: usize,
    },
    /// Derived data was pinned at a catalog epoch the catalog has moved past
    /// (an insert, retire or compaction happened since): its slot references
    /// may be renumbered or reclaimed, so the operation refuses to run
    /// instead of silently using stale slots. Re-derive against the current
    /// catalog, or — after a compaction — renumber through the returned
    /// [`crate::catalog::SlotRemap`].
    StaleCatalog {
        /// The catalog epoch the derived data was captured at.
        expected: u64,
        /// The catalog's current epoch.
        found: u64,
    },
    /// A write-ahead-log record failed validation during recovery: the frame
    /// was torn (truncated mid-record), its checksum did not match the
    /// payload, the payload did not decode, or the record was out of
    /// sequence with the state being rebuilt (e.g. a duplicated tail
    /// record). Recovery stops at the last valid prefix — everything before
    /// `offset` is intact and has been applied — and surfaces this error so
    /// the operator knows exactly where the log went bad.
    WalCorrupt {
        /// Byte offset (from the start of the log file) of the first
        /// invalid record frame.
        offset: u64,
        /// What failed at that offset (`"torn record"`,
        /// `"checksum mismatch"`, `"bad magic"`, `"epoch out of sequence"`,
        /// ...).
        kind: String,
    },
    /// Replaying the write-ahead log produced a catalog state that
    /// contradicts what the log itself recorded (a replayed insert landed on
    /// a different slot, a compaction produced a different remap, a reenacted
    /// decision differs from the logged one). The log is internally
    /// inconsistent or was produced by an incompatible build — recovery
    /// refuses to continue past the contradiction.
    RecoveryMismatch {
        /// Catalog epoch at which the replay diverged from the log.
        epoch: u64,
        /// What diverged.
        detail: String,
    },
    /// The streaming front-end refused to admit a request: the service queue
    /// already holds `queue_depth` pending requests against a capacity of
    /// `capacity`, so enqueueing more would grow a backlog the backpressure
    /// controller can only shed later anyway. The request was never queued;
    /// resubmit after backing off. Always delivered as a typed response —
    /// the front-end never drops a request silently.
    AdmissionRejected {
        /// Pending requests in the service queue at rejection time.
        queue_depth: usize,
        /// The configured queue capacity that was exceeded.
        capacity: usize,
    },
    /// A request's latency budget cannot be met: the time remaining before
    /// its deadline is smaller than the service time the front-end currently
    /// estimates (or the deadline has already passed while the request
    /// queued), so it was shed instead of being served late. Always
    /// delivered as a typed response — never a silent drop.
    DeadlineExceeded {
        /// Remaining latency budget when the shed decision was made, in
        /// milliseconds (`0` when the deadline had already passed).
        remaining_ms: u64,
        /// The service time the front-end estimated it would need, in
        /// milliseconds.
        estimated_ms: u64,
    },
}

impl std::fmt::Display for StratRecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ParameterOutOfRange { parameter, value } => {
                write!(
                    f,
                    "{parameter} = {value} is outside the normalized [0, 1] range"
                )
            }
            Self::InvalidDistribution(msg) => write!(f, "invalid availability distribution: {msg}"),
            Self::InvalidFairnessPolicy(msg) => write!(f, "invalid fairness policy: {msg}"),
            Self::ZeroCardinality => write!(f, "cardinality constraint k must be at least 1"),
            Self::EmptyStrategySet => write!(f, "the strategy set is empty"),
            Self::NotEnoughStrategies {
                available,
                requested,
            } => write!(
                f,
                "only {available} strategies exist but {requested} were requested"
            ),
            Self::MissingModel { strategy } => {
                write!(f, "no fitted model for strategy {strategy}")
            }
            Self::StaleSubscription { id } => write!(
                f,
                "delta subscription {id} is not registered with this catalog \
                 (released, evicted after lapsing, or issued elsewhere); \
                 re-subscribe and recompute the derived state"
            ),
            Self::StaleCatalog { expected, found } => write!(
                f,
                "catalog moved to epoch {found} but the problem was built at epoch {expected}; \
                 rebuild it (or remap through the compaction's SlotRemap)"
            ),
            Self::WalCorrupt { offset, kind } => write!(
                f,
                "write-ahead log corrupt at byte offset {offset}: {kind}; \
                 recovery stops at the last valid prefix"
            ),
            Self::RecoveryMismatch { epoch, detail } => write!(
                f,
                "log replay diverged from the recorded state at epoch {epoch}: {detail}"
            ),
            Self::AdmissionRejected {
                queue_depth,
                capacity,
            } => write!(
                f,
                "admission rejected: the service queue holds {queue_depth} requests \
                 against a capacity of {capacity}; back off and resubmit"
            ),
            Self::DeadlineExceeded {
                remaining_ms,
                estimated_ms,
            } => write!(
                f,
                "deadline exceeded: {remaining_ms} ms of budget remain but the \
                 estimated service time is {estimated_ms} ms; the request was shed \
                 rather than served late"
            ),
        }
    }
}

impl std::error::Error for StratRecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(StratRecError, &str)> = vec![
            (
                StratRecError::ParameterOutOfRange {
                    parameter: "quality".into(),
                    value: 1.5,
                },
                "quality",
            ),
            (
                StratRecError::InvalidDistribution("does not sum to 1".into()),
                "distribution",
            ),
            (
                StratRecError::InvalidFairnessPolicy("floors sum to 1.2".into()),
                "fairness",
            ),
            (StratRecError::ZeroCardinality, "cardinality"),
            (StratRecError::EmptyStrategySet, "empty"),
            (
                StratRecError::NotEnoughStrategies {
                    available: 2,
                    requested: 5,
                },
                "2 strategies",
            ),
            (StratRecError::MissingModel { strategy: 7 }, "strategy 7"),
            (StratRecError::StaleSubscription { id: 4 }, "subscription 4"),
            (
                StratRecError::StaleCatalog {
                    expected: 3,
                    found: 5,
                },
                "epoch 5",
            ),
            (
                StratRecError::WalCorrupt {
                    offset: 1337,
                    kind: "checksum mismatch".into(),
                },
                "offset 1337",
            ),
            (
                StratRecError::WalCorrupt {
                    offset: 8,
                    kind: "torn record".into(),
                },
                "torn record",
            ),
            (
                StratRecError::RecoveryMismatch {
                    epoch: 12,
                    detail: "insert landed on slot 4, log says 3".into(),
                },
                "epoch 12",
            ),
            (
                StratRecError::AdmissionRejected {
                    queue_depth: 128,
                    capacity: 64,
                },
                "capacity of 64",
            ),
            (
                StratRecError::AdmissionRejected {
                    queue_depth: 128,
                    capacity: 64,
                },
                "128 requests",
            ),
            (
                StratRecError::DeadlineExceeded {
                    remaining_ms: 3,
                    estimated_ms: 40,
                },
                "40 ms",
            ),
            (
                StratRecError::DeadlineExceeded {
                    remaining_ms: 3,
                    estimated_ms: 40,
                },
                "shed",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                format!("{err}").contains(needle),
                "message for {err:?} should mention {needle}"
            );
        }
    }

    /// Compile-time-exhaustive variant census: adding a variant breaks this
    /// match, which forces the display audit above to grow with it.
    fn variant_tag(err: &StratRecError) -> &'static str {
        match err {
            StratRecError::ParameterOutOfRange { .. } => "ParameterOutOfRange",
            StratRecError::InvalidDistribution(_) => "InvalidDistribution",
            StratRecError::InvalidFairnessPolicy(_) => "InvalidFairnessPolicy",
            StratRecError::ZeroCardinality => "ZeroCardinality",
            StratRecError::EmptyStrategySet => "EmptyStrategySet",
            StratRecError::NotEnoughStrategies { .. } => "NotEnoughStrategies",
            StratRecError::MissingModel { .. } => "MissingModel",
            StratRecError::StaleSubscription { .. } => "StaleSubscription",
            StratRecError::StaleCatalog { .. } => "StaleCatalog",
            StratRecError::WalCorrupt { .. } => "WalCorrupt",
            StratRecError::RecoveryMismatch { .. } => "RecoveryMismatch",
            StratRecError::AdmissionRejected { .. } => "AdmissionRejected",
            StratRecError::DeadlineExceeded { .. } => "DeadlineExceeded",
        }
    }

    #[test]
    fn the_display_audit_covers_every_variant() {
        let audited: std::collections::BTreeSet<&str> = [
            StratRecError::ParameterOutOfRange {
                parameter: "quality".into(),
                value: 1.5,
            },
            StratRecError::InvalidDistribution(String::new()),
            StratRecError::InvalidFairnessPolicy(String::new()),
            StratRecError::ZeroCardinality,
            StratRecError::EmptyStrategySet,
            StratRecError::NotEnoughStrategies {
                available: 2,
                requested: 5,
            },
            StratRecError::MissingModel { strategy: 7 },
            StratRecError::StaleSubscription { id: 4 },
            StratRecError::StaleCatalog {
                expected: 3,
                found: 5,
            },
            StratRecError::WalCorrupt {
                offset: 0,
                kind: String::new(),
            },
            StratRecError::RecoveryMismatch {
                epoch: 0,
                detail: String::new(),
            },
            StratRecError::AdmissionRejected {
                queue_depth: 0,
                capacity: 0,
            },
            StratRecError::DeadlineExceeded {
                remaining_ms: 0,
                estimated_ms: 0,
            },
        ]
        .iter()
        .map(variant_tag)
        .collect();
        assert_eq!(audited.len(), 13, "one sample per variant, no duplicates");
    }

    #[test]
    fn errors_are_std_error_trait_objects() {
        // Leaf errors: no deeper cause, and the Display text survives the
        // `dyn Error` indirection (the durable tier chains onto this via
        // `DurableError::source`).
        let err: Box<dyn std::error::Error> = Box::new(StratRecError::WalCorrupt {
            offset: 9,
            kind: "torn record".into(),
        });
        assert!(err.source().is_none());
        assert!(err.to_string().contains("offset 9"));
        // The streaming shed responses are leaves too: callers chaining them
        // into service-level errors own the chain, the variants themselves
        // terminate it, and their Display text survives the indirection.
        let shed: Box<dyn std::error::Error> = Box::new(StratRecError::AdmissionRejected {
            queue_depth: 12,
            capacity: 8,
        });
        assert!(shed.source().is_none());
        assert!(shed.to_string().contains("capacity of 8"));
        let late: Box<dyn std::error::Error> = Box::new(StratRecError::DeadlineExceeded {
            remaining_ms: 1,
            estimated_ms: 17,
        });
        assert!(late.source().is_none());
        assert!(late.to_string().contains("17 ms"));
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let a = StratRecError::ZeroCardinality;
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, StratRecError::EmptyStrategySet);
    }
}
