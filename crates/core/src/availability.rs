//! Worker-availability modeling (paper §2.1).
//!
//! Worker availability is "a discrete random variable … represented by its
//! corresponding distribution function (pdf), which gives the probability of
//! the proportion of workers who are suitable and available to undertake
//! tasks of a certain type". StratRec computes the expected value of that pdf
//! and works with the expectation, normalized into `[0, 1]`.

use serde::{Deserialize, Serialize};
use stratrec_optim::distributions::DiscreteDistribution;

use crate::error::StratRecError;

/// Expected worker availability, a normalized value in `[0, 1]`.
///
/// `0.0` means no suitable worker is expected to be available within the
/// deployment horizon; `1.0` means the whole suitable worker pool is
/// expected.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct WorkerAvailability(f64);

impl WorkerAvailability {
    /// Creates a validated availability value.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::ParameterOutOfRange`] if the value is not
    /// finite or lies outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, StratRecError> {
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            return Err(StratRecError::ParameterOutOfRange {
                parameter: "availability".into(),
                value,
            });
        }
        Ok(Self(value))
    }

    /// Creates an availability value clamping into `[0, 1]`.
    #[must_use]
    pub fn clamped(value: f64) -> Self {
        Self(value.clamp(0.0, 1.0))
    }

    /// Full availability (`1.0`).
    #[must_use]
    pub fn full() -> Self {
        Self(1.0)
    }

    /// The underlying fraction in `[0, 1]`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Number of workers this availability corresponds to for a pool of
    /// `pool_size` suitable workers (the paper's example: availability 0.055
    /// over 4 000 workers ⇒ 220 workers in expectation).
    #[must_use]
    pub fn expected_workers(self, pool_size: usize) -> f64 {
        self.0 * pool_size as f64
    }
}

/// A probability distribution over worker-availability proportions, from
/// which StratRec derives the expectation it plans with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityPdf {
    distribution: DiscreteDistribution,
}

impl AvailabilityPdf {
    /// Builds a pdf from `(proportion, probability)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::InvalidDistribution`] when probabilities are
    /// invalid, and [`StratRecError::ParameterOutOfRange`] when a proportion
    /// falls outside `[0, 1]`.
    pub fn new(outcomes: &[(f64, f64)]) -> Result<Self, StratRecError> {
        for &(proportion, _) in outcomes {
            if !proportion.is_finite() || !(0.0..=1.0).contains(&proportion) {
                return Err(StratRecError::ParameterOutOfRange {
                    parameter: "availability".into(),
                    value: proportion,
                });
            }
        }
        let (values, probs): (Vec<f64>, Vec<f64>) = outcomes.iter().copied().unzip();
        let distribution = DiscreteDistribution::new(&values, &probs)
            .map_err(|e| StratRecError::InvalidDistribution(e.to_string()))?;
        Ok(Self { distribution })
    }

    /// A pdf with all mass on a single availability proportion.
    #[must_use]
    pub fn certain(proportion: f64) -> Self {
        Self {
            distribution: DiscreteDistribution::degenerate(proportion.clamp(0.0, 1.0)),
        }
    }

    /// Expected availability — the value StratRec plans with.
    #[must_use]
    pub fn expectation(&self) -> WorkerAvailability {
        WorkerAvailability::clamped(self.distribution.expectation())
    }

    /// Variance of the distribution (useful when reporting error bars, as in
    /// the paper's Figure 11).
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.distribution.variance()
    }

    /// The underlying discrete distribution.
    #[must_use]
    pub fn distribution(&self) -> &DiscreteDistribution {
        &self.distribution
    }

    /// Draws an availability proportion from the pdf given a uniform sample
    /// `u ∈ [0, 1)`; used by the platform simulator.
    #[must_use]
    pub fn sample_with_uniform(&self, u: f64) -> WorkerAvailability {
        WorkerAvailability::clamped(self.distribution.sample_with_uniform(u))
    }

    /// Estimates a pdf from historical observations of availability
    /// proportions (each observation weighted equally). This mirrors how the
    /// paper estimates availability "from historical data on workers' arrival
    /// and departure on a platform".
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::InvalidDistribution`] when `observations` is
    /// empty.
    pub fn from_observations(observations: &[f64]) -> Result<Self, StratRecError> {
        if observations.is_empty() {
            return Err(StratRecError::InvalidDistribution(
                "no availability observations".into(),
            ));
        }
        let p = 1.0 / observations.len() as f64;
        let pairs: Vec<(f64, f64)> = observations
            .iter()
            .map(|&o| (o.clamp(0.0, 1.0), p))
            .collect();
        Self::new(&pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_is_validated() {
        assert!(WorkerAvailability::new(0.5).is_ok());
        assert!(WorkerAvailability::new(0.0).is_ok());
        assert!(WorkerAvailability::new(1.0).is_ok());
        assert!(WorkerAvailability::new(1.2).is_err());
        assert!(WorkerAvailability::new(-0.1).is_err());
        assert!(WorkerAvailability::new(f64::NAN).is_err());
        assert_eq!(WorkerAvailability::clamped(7.0).value(), 1.0);
        assert_eq!(WorkerAvailability::full().value(), 1.0);
    }

    #[test]
    fn expected_workers_matches_paper_example() {
        // 70% chance of 7% + 30% chance of 2% = 5.5% of 4000 workers = 220.
        let pdf = AvailabilityPdf::new(&[(0.07, 0.7), (0.02, 0.3)]).unwrap();
        let availability = pdf.expectation();
        assert!((availability.value() - 0.055).abs() < 1e-12);
        assert!((availability.expected_workers(4000) - 220.0).abs() < 1e-9);
    }

    #[test]
    fn illustration_example_gives_point_eight() {
        // 50% of 700/1000 + 50% of 900/1000 = 0.8 (paper §2.2).
        let pdf = AvailabilityPdf::new(&[(0.7, 0.5), (0.9, 0.5)]).unwrap();
        assert!((pdf.expectation().value() - 0.8).abs() < 1e-12);
        assert!(pdf.variance() > 0.0);
    }

    #[test]
    fn invalid_pdfs_are_rejected() {
        assert!(matches!(
            AvailabilityPdf::new(&[(1.5, 1.0)]),
            Err(StratRecError::ParameterOutOfRange { .. })
        ));
        assert!(matches!(
            AvailabilityPdf::new(&[(0.5, 0.4), (0.6, 0.4)]),
            Err(StratRecError::InvalidDistribution(_))
        ));
        assert!(matches!(
            AvailabilityPdf::from_observations(&[]),
            Err(StratRecError::InvalidDistribution(_))
        ));
    }

    #[test]
    fn certain_pdf_has_zero_variance() {
        let pdf = AvailabilityPdf::certain(0.65);
        assert_eq!(pdf.expectation().value(), 0.65);
        assert_eq!(pdf.variance(), 0.0);
        assert_eq!(pdf.sample_with_uniform(0.3).value(), 0.65);
        assert_eq!(pdf.distribution().outcomes().len(), 1);
    }

    #[test]
    fn observation_based_estimation_averages() {
        let pdf = AvailabilityPdf::from_observations(&[0.6, 0.8, 1.0]).unwrap();
        assert!((pdf.expectation().value() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn sampling_maps_uniform_draws_to_outcomes() {
        let pdf = AvailabilityPdf::new(&[(0.2, 0.5), (0.9, 0.5)]).unwrap();
        assert_eq!(pdf.sample_with_uniform(0.1).value(), 0.2);
        assert_eq!(pdf.sample_with_uniform(0.9).value(), 0.9);
    }
}
