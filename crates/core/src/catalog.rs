//! Shared, indexed view of the platform's strategy set.
//!
//! The seed implementation re-derived everything per request: `BatchStrat`
//! decided eligibility by scanning all `|S|` strategies for every deployment
//! request (`O(m · |S|)` parameter comparisons per batch), and every ADPaR
//! problem re-normalized the full strategy set from scratch — `Baseline3`
//! even bulk-loaded a fresh R-tree per call. A [`StrategyCatalog`] performs
//! that work **once**: strategies are normalized into the minimization space
//! (`quality` inverted so smaller is better on every axis, exactly as ADPaR's
//! §4.1 normalization does) and bulk-loaded into a
//! [`stratrec_geometry::RTree`]. The catalog is then shared by reference
//! across the whole pipeline:
//!
//! * per-request eligibility becomes an R-tree box query
//!   ([`Self::eligible_for`]) instead of a linear scan;
//! * ADPaR problems built with [`crate::adpar::AdparProblem::with_catalog`]
//!   reuse the pre-normalized points and the shared index (`Baseline3` skips
//!   its per-solve bulk load entirely);
//! * [`crate::stratrec::StratRec`] fans unsatisfied requests out to ADPaR in
//!   parallel over the same shared catalog.
//!
//! All catalog-backed paths return results **identical** to the linear-scan
//! paths (the R-tree query is a conservative candidate filter followed by the
//! exact [`DeploymentParameters::satisfies`] predicate); the parity tests in
//! `tests/catalog_parity.rs` pin this down.

use serde::{Deserialize, Serialize};
use stratrec_geometry::{Aabb3, Point3, RTree};

use crate::model::{DeploymentParameters, DeploymentRequest, Strategy};

/// A strategy set normalized once and indexed for box queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyCatalog {
    strategies: Vec<Strategy>,
    points: Vec<Point3>,
    index: RTree,
}

/// Margin added to eligibility query boxes so the R-tree pass is a strict
/// superset of [`DeploymentParameters::satisfies`] (which tolerates `1e-9`
/// on every axis); candidates are then confirmed with the exact predicate,
/// so catalog eligibility is identical to the linear scan.
const QUERY_MARGIN: f64 = 2e-9;

impl StrategyCatalog {
    /// Builds a catalog owning `strategies`, normalizing every strategy into
    /// the minimization space and bulk-loading the R-tree index.
    #[must_use]
    pub fn new(strategies: Vec<Strategy>) -> Self {
        let points: Vec<Point3> = strategies
            .iter()
            .map(Strategy::to_normalized_point)
            .collect();
        let index = RTree::bulk_load(&points);
        Self {
            strategies,
            points,
            index,
        }
    }

    /// Builds a catalog from a borrowed strategy slice (cloning it).
    #[must_use]
    pub fn from_slice(strategies: &[Strategy]) -> Self {
        Self::new(strategies.to_vec())
    }

    /// The indexed strategies, in their original order.
    #[must_use]
    pub fn strategies(&self) -> &[Strategy] {
        &self.strategies
    }

    /// The pre-normalized strategy points (parallel to
    /// [`Self::strategies`]): `(1 − quality, cost, latency)`.
    #[must_use]
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// The shared R-tree over [`Self::points`].
    #[must_use]
    pub fn index(&self) -> &RTree {
        &self.index
    }

    /// Number of strategies in the catalog.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strategies.len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strategies.is_empty()
    }

    /// Indices of the strategies satisfying the request thresholds `params`,
    /// ascending — exactly the set (and order) of
    /// [`DeploymentRequest::eligible_strategies`], found through the index.
    ///
    /// A strategy satisfies a request when, in the normalized minimization
    /// space, its point is covered by the request's point. That makes
    /// eligibility an origin-anchored box query whose top-right corner is the
    /// request point; the box is inflated by [`QUERY_MARGIN`] and candidates
    /// are confirmed with the exact epsilon-tolerant predicate.
    #[must_use]
    pub fn eligible_for(&self, params: &DeploymentParameters) -> Vec<usize> {
        let corner = params.to_normalized_point();
        let query = Aabb3::anchored_at_origin(Point3::new(
            corner.x + QUERY_MARGIN,
            corner.y + QUERY_MARGIN,
            corner.z + QUERY_MARGIN,
        ));
        let mut eligible = self.index.query_box(&query);
        eligible.retain(|&i| self.strategies[i].params.satisfies(params));
        eligible
    }

    /// [`Self::eligible_for`] over a deployment request.
    #[must_use]
    pub fn eligible_for_request(&self, request: &DeploymentRequest) -> Vec<usize> {
        self.eligible_for(&request.params)
    }
}

impl From<Vec<Strategy>> for StrategyCatalog {
    fn from(strategies: Vec<Strategy>) -> Self {
        Self::new(strategies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_mirrors_the_strategy_set() {
        let strategies = crate::examples_data::running_example_strategies();
        let catalog = StrategyCatalog::from_slice(&strategies);
        assert_eq!(catalog.len(), 4);
        assert!(!catalog.is_empty());
        assert_eq!(catalog.strategies(), &strategies[..]);
        assert_eq!(catalog.points().len(), 4);
        assert_eq!(catalog.index().len(), 4);
        for (strategy, point) in strategies.iter().zip(catalog.points()) {
            assert_eq!(strategy.to_normalized_point(), *point);
        }
    }

    #[test]
    fn eligibility_matches_linear_scan_on_running_example() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let catalog = StrategyCatalog::from_slice(&strategies);
        for request in &requests {
            assert_eq!(
                catalog.eligible_for_request(request),
                request.eligible_strategies(&strategies),
                "request {:?}",
                request.id
            );
        }
    }

    #[test]
    fn empty_catalog_behaves() {
        let catalog = StrategyCatalog::new(Vec::new());
        assert!(catalog.is_empty());
        assert_eq!(catalog.len(), 0);
        let loosest = DeploymentParameters::default();
        assert!(catalog.eligible_for(&loosest).is_empty());
    }

    #[test]
    fn boundary_strategies_stay_eligible() {
        // A strategy exactly on the request's thresholds is eligible under
        // the epsilon-tolerant predicate; the inflated query box must not
        // lose it.
        let params = DeploymentParameters::clamped(0.7, 0.3, 0.4);
        let strategies = vec![Strategy::from_params(0, params)];
        let catalog = StrategyCatalog::from_slice(&strategies);
        assert_eq!(catalog.eligible_for(&params), vec![0]);
    }

    #[test]
    fn from_conversions_agree() {
        let strategies = crate::examples_data::running_example_strategies();
        let a = StrategyCatalog::from_slice(&strategies);
        let b: StrategyCatalog = strategies.into();
        assert_eq!(a, b);
    }
}
