//! Shared, indexed view of the platform's strategy set.
//!
//! The seed implementation re-derived everything per request: `BatchStrat`
//! decided eligibility by scanning all `|S|` strategies for every deployment
//! request (`O(m · |S|)` parameter comparisons per batch), and every ADPaR
//! problem re-normalized the full strategy set from scratch — `Baseline3`
//! even bulk-loaded a fresh R-tree per call. A [`StrategyCatalog`] performs
//! that work **once**: strategies are normalized into the minimization space
//! (`quality` inverted so smaller is better on every axis, exactly as ADPaR's
//! §4.1 normalization does) and bulk-loaded into a
//! [`stratrec_geometry::RTree`]. The catalog is then shared by reference
//! across the whole pipeline:
//!
//! * per-request eligibility becomes an R-tree box query
//!   ([`Self::eligible_for`]) instead of a linear scan;
//! * ADPaR problems built with [`crate::adpar::AdparProblem::with_catalog`]
//!   reuse the pre-normalized points and the shared index (`Baseline3` skips
//!   its per-solve bulk load entirely);
//! * [`crate::stratrec::StratRec`] fans unsatisfied requests out to ADPaR in
//!   parallel over the same shared catalog.
//!
//! # Live churn: insert / retire with a log-structured overlay
//!
//! A crowdsourcing platform adds and retires strategies continuously, so the
//! catalog is **mutable**: [`Self::insert`] appends a strategy to a small
//! unindexed *tail* and [`Self::retire`] marks a slot with a *tombstone*.
//! Queries answer `index ∪ tail − tombstones`: the R-tree reports candidates
//! from the last merge (tombstoned hits are filtered out), the tail is
//! scanned linearly, and every candidate is confirmed with the exact
//! predicate — so results are **exact at every point of the churn stream**.
//! When the overlay (tail + pending tombstones) outgrows the
//! [`RebuildPolicy`] threshold it is merged into the R-tree incrementally
//! (`RTree::remove` for tombstones, `RTree::insert` with node splits for the
//! tail), which is far cheaper than the per-epoch full rebuild a long-running
//! service would otherwise pay; [`Self::force_rebuild`] re-packs the tree
//! from scratch when desired.
//!
//! Slot indices are **stable**: retiring never renumbers, so
//! `strategy_indices` in recommendations stay valid across churn.
//! [`Self::epoch`] increments on every mutation and is captured by
//! catalog-backed [`crate::adpar::AdparProblem`]s, giving external caches a
//! key to invalidate on.
//!
//! The price of stability is that retired slots are tombstoned, not
//! reclaimed: [`Self::slot_count`] grows monotonically with churn while
//! [`Self::len`] tracks the live set, and slot-shaped allocations
//! (workforce-matrix columns, per-slot relaxations) scale with it. For
//! services churning indefinitely, periodically rebuild a fresh compacted
//! catalog from [`Self::live_indices`] at a natural epoch boundary and
//! remap any retained slot references (a first-class `compact()` with a
//! slot remap is on the roadmap).
//!
//! All catalog-backed paths return results **identical** to the linear-scan
//! paths over the live strategies (the R-tree query is a conservative
//! candidate filter followed by the exact
//! [`DeploymentParameters::satisfies`] predicate); the parity tests in
//! `tests/catalog_parity.rs` and the property-based churn suite in
//! `tests/catalog_churn.rs` pin this down.

use serde::{Deserialize, Serialize};
use stratrec_geometry::{Aabb3, Axis, Point3, RTree};

use crate::model::{DeploymentParameters, DeploymentRequest, Strategy};

/// Default overlay size above which the catalog merges into its R-tree.
pub const DEFAULT_REBUILD_THRESHOLD: usize = 128;

/// When the catalog merges its log-structured overlay into the R-tree.
///
/// The overlay is the unindexed tail of recent inserts plus the tombstones
/// still present in the index; a merge is triggered as soon as the overlay
/// size *exceeds* the limit. [`RebuildPolicy::always`] (limit 0) keeps the
/// index exact after every mutation, [`RebuildPolicy::never`] leaves the
/// overlay to grow unboundedly (queries stay exact either way — the overlay
/// is scanned linearly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RebuildPolicy {
    overlay_limit: usize,
}

impl RebuildPolicy {
    /// Merge once the overlay holds more than `limit` entries.
    #[must_use]
    pub const fn threshold(limit: usize) -> Self {
        Self {
            overlay_limit: limit,
        }
    }

    /// Merge after every mutation (threshold 0): the index always reflects
    /// the full live set.
    #[must_use]
    pub const fn always() -> Self {
        Self::threshold(0)
    }

    /// Never merge: the tail and tombstone set absorb all churn.
    #[must_use]
    pub const fn never() -> Self {
        Self::threshold(usize::MAX)
    }

    /// The overlay size above which a merge is triggered.
    #[must_use]
    pub const fn overlay_limit(self) -> usize {
        self.overlay_limit
    }
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        Self::threshold(DEFAULT_REBUILD_THRESHOLD)
    }
}

/// A strategy set normalized once and indexed for box queries, absorbing
/// live insert/retire churn through a log-structured overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyCatalog {
    /// Every slot ever inserted, retired ones included (stable indices).
    strategies: Vec<Strategy>,
    /// Normalized points, parallel to `strategies`.
    points: Vec<Point3>,
    /// Liveness per slot; `false` marks a retired (tombstoned) slot.
    live: Vec<bool>,
    /// Number of live slots.
    live_count: usize,
    /// R-tree over the slots present at the last merge.
    index: RTree,
    /// Live slots inserted since the last merge (ascending, not indexed).
    tail: Vec<usize>,
    /// Retired slots still present in `index`.
    pending_tombstones: Vec<usize>,
    /// Overlay merge policy.
    policy: RebuildPolicy,
    /// Bumped on every `insert` / `retire`; cache-invalidation key.
    epoch: u64,
    /// Number of overlay merges / full rebuilds performed.
    merges: u64,
    /// Whether `index` is still a deterministic STR bulk load (set by
    /// construction and `force_rebuild`, cleared by incremental merges).
    packed: bool,
    /// Per-axis slot permutations sorted ascending by `(coordinate, slot)`,
    /// covering exactly the slots present in `index` (the slots live at the
    /// last merge). Tail slots are merged in and tombstones filtered out at
    /// query time ([`Self::axis_order_into`]), same log-structured
    /// discipline as the R-tree.
    axis_base: [Vec<usize>; 3],
    /// The tail, kept sorted per axis by `(coordinate, slot)` while
    /// `axis_tail_sorted` holds, letting [`Self::axis_order_into`] merge
    /// without sorting or allocating.
    axis_tail: [Vec<usize>; 3],
    /// Whether `axis_tail` mirrors `tail`. The per-insert sorted
    /// maintenance shifts `O(tail)` elements, so it is abandoned (the three
    /// vectors are cleared, this flag drops) once the tail outgrows
    /// [`SORTED_TAIL_LIMIT`] — only reachable with rebuild thresholds above
    /// the limit, e.g. [`RebuildPolicy::never`] — keeping inserts `O(1)`
    /// amortized there instead of quadratic; [`Self::axis_order_into`]
    /// then falls back to sorting a tail copy per call. Restored whenever
    /// the tail empties (merge, rebuild, or retiring the last tail slot).
    axis_tail_sorted: bool,
}

/// Tail size up to which the per-axis sorted tails are maintained
/// incrementally. Far above [`DEFAULT_REBUILD_THRESHOLD`]; only unbounded
/// policies ever cross it.
const SORTED_TAIL_LIMIT: usize = 1024;

/// Margin added to eligibility query boxes so the R-tree pass is a strict
/// superset of [`DeploymentParameters::satisfies`] (which tolerates `1e-9`
/// on every axis); candidates are then confirmed with the exact predicate,
/// so catalog eligibility is identical to the linear scan.
const QUERY_MARGIN: f64 = 2e-9;

impl StrategyCatalog {
    /// Builds a catalog owning `strategies`, normalizing every strategy into
    /// the minimization space and bulk-loading the R-tree index. Accepts
    /// anything convertible into a `Vec<Strategy>` (an owned vector moves in
    /// without a copy; a borrowed slice is cloned once).
    #[must_use]
    pub fn new(strategies: impl Into<Vec<Strategy>>) -> Self {
        Self::with_policy(strategies, RebuildPolicy::default())
    }

    /// Builds a catalog with an explicit overlay merge policy.
    #[must_use]
    pub fn with_policy(strategies: impl Into<Vec<Strategy>>, policy: RebuildPolicy) -> Self {
        let strategies: Vec<Strategy> = strategies.into();
        let points: Vec<Point3> = strategies
            .iter()
            .map(Strategy::to_normalized_point)
            .collect();
        let index = RTree::bulk_load(&points);
        let live_count = strategies.len();
        let axis_base = sorted_axis_orders(&points, (0..strategies.len()).collect());
        Self {
            live: vec![true; live_count],
            live_count,
            strategies,
            points,
            index,
            tail: Vec::new(),
            pending_tombstones: Vec::new(),
            policy,
            epoch: 0,
            merges: 0,
            packed: true,
            axis_base,
            axis_tail: [Vec::new(), Vec::new(), Vec::new()],
            axis_tail_sorted: true,
        }
    }

    /// Builds a catalog from a borrowed strategy slice (cloning it once).
    #[must_use]
    pub fn from_slice(strategies: &[Strategy]) -> Self {
        Self::new(strategies)
    }

    /// Inserts a strategy, returning its stable slot index. The strategy
    /// lands in the unindexed tail and is merged into the R-tree when the
    /// overlay crosses the rebuild threshold; it is eligible for queries
    /// immediately either way.
    pub fn insert(&mut self, strategy: Strategy) -> usize {
        let slot = self.strategies.len();
        let point = strategy.to_normalized_point();
        self.strategies.push(strategy);
        self.points.push(point);
        self.live.push(true);
        self.live_count += 1;
        self.tail.push(slot);
        if self.axis_tail_sorted {
            if self.tail.len() > SORTED_TAIL_LIMIT {
                self.axis_tail_sorted = false;
                for order in &mut self.axis_tail {
                    order.clear();
                }
            } else {
                for axis in Axis::ALL {
                    let order = &mut self.axis_tail[axis.index()];
                    let pos =
                        order.partition_point(|&s| axis_cmp(&self.points, axis, s, slot).is_lt());
                    order.insert(pos, slot);
                }
            }
        }
        self.epoch += 1;
        self.maybe_merge();
        slot
    }

    /// Retires the strategy at `slot`, returning whether a live strategy was
    /// retired (`false` for out-of-range or already-retired slots). The slot
    /// index is never reused; queries stop reporting it immediately.
    pub fn retire(&mut self, slot: usize) -> bool {
        if slot >= self.strategies.len() || !self.live[slot] {
            return false;
        }
        self.live[slot] = false;
        self.live_count -= 1;
        if let Ok(pos) = self.tail.binary_search(&slot) {
            // Never indexed: drop it from the tail and we are done.
            self.tail.remove(pos);
            if self.axis_tail_sorted {
                for order in &mut self.axis_tail {
                    let pos = order
                        .iter()
                        .position(|&s| s == slot)
                        .expect("tail slots are present in every axis tail");
                    order.remove(pos);
                }
            } else if self.tail.is_empty() {
                // An emptied tail trivially mirrors the (empty) axis tails.
                self.axis_tail_sorted = true;
            }
        } else {
            self.pending_tombstones.push(slot);
        }
        self.epoch += 1;
        self.maybe_merge();
        true
    }

    /// Merges the overlay when it outgrows the policy threshold.
    fn maybe_merge(&mut self) {
        if self.overlay_len() > self.policy.overlay_limit() {
            self.merge_overlay();
        }
    }

    /// Merges the overlay into the R-tree incrementally: pending tombstones
    /// are removed, tail entries inserted (with node splits). No-op when the
    /// overlay is empty.
    pub fn merge_overlay(&mut self) {
        if self.overlay_is_empty() {
            return;
        }
        for slot in std::mem::take(&mut self.pending_tombstones) {
            let removed = self.index.remove(slot, &self.points[slot]);
            debug_assert!(removed, "tombstoned slot {slot} was not in the index");
        }
        let tail = std::mem::take(&mut self.tail);
        for &slot in &tail {
            self.index.insert(slot, self.points[slot]);
        }
        // The sorted axis orders absorb the same overlay: tombstoned slots
        // are filtered out of each base, the sorted tail is merged in —
        // O(|S|) per axis (plus a tail sort if the incremental sorted tails
        // were abandoned past SORTED_TAIL_LIMIT) instead of a full re-sort.
        for axis in Axis::ALL {
            let tail_sorted = if self.axis_tail_sorted {
                std::mem::take(&mut self.axis_tail[axis.index()])
            } else {
                sorted_axis_tail(&self.points, &tail, axis)
            };
            let base = std::mem::take(&mut self.axis_base[axis.index()]);
            let mut merged = Vec::new();
            merge_axis_order_into(
                &base,
                &tail_sorted,
                &self.live,
                &self.points,
                axis,
                &mut merged,
            );
            self.axis_base[axis.index()] = merged;
        }
        for order in &mut self.axis_tail {
            order.clear();
        }
        self.axis_tail_sorted = true;
        self.merges += 1;
        self.packed = false;
    }

    /// Re-packs the R-tree from scratch over the live slots (STR bulk load)
    /// and clears the overlay. Use after heavy churn to restore the packed
    /// structure incremental merges slowly degrade.
    pub fn force_rebuild(&mut self) {
        self.index = RTree::bulk_load_entries(self.live_entries(), self.index.node_capacity());
        self.tail.clear();
        self.pending_tombstones.clear();
        self.axis_base = sorted_axis_orders(&self.points, self.live_indices());
        for order in &mut self.axis_tail {
            order.clear();
        }
        self.axis_tail_sorted = true;
        self.merges += 1;
        self.packed = true;
    }

    /// Every slot ever inserted, in slot order — **including retired
    /// slots**; check [`Self::is_live`] or use [`Self::live_indices`] when
    /// liveness matters. Pristine catalogs (no churn) contain live slots
    /// only.
    #[must_use]
    pub fn strategies(&self) -> &[Strategy] {
        &self.strategies
    }

    /// The strategy at `slot` (retired slots included — their metadata stays
    /// addressable for reporting).
    ///
    /// # Panics
    ///
    /// Panics when `slot >= self.slot_count()`.
    #[must_use]
    pub fn strategy(&self, slot: usize) -> &Strategy {
        &self.strategies[slot]
    }

    /// Whether `slot` refers to a live (non-retired) strategy; `false` for
    /// out-of-range slots.
    #[must_use]
    pub fn is_live(&self, slot: usize) -> bool {
        self.live.get(slot).copied().unwrap_or(false)
    }

    /// The live slot indices, ascending.
    #[must_use]
    pub fn live_indices(&self) -> Vec<usize> {
        (0..self.strategies.len())
            .filter(|&i| self.live[i])
            .collect()
    }

    /// The live `(slot, normalized point)` entries, ascending by slot.
    #[must_use]
    pub fn live_entries(&self) -> Vec<(usize, Point3)> {
        (0..self.strategies.len())
            .filter(|&i| self.live[i])
            .map(|i| (i, self.points[i]))
            .collect()
    }

    /// The pre-normalized points of **all** slots (parallel to
    /// [`Self::strategies`]): `(1 − quality, cost, latency)`.
    #[must_use]
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// The shared R-tree. Between merges it covers the slots live at the
    /// last merge — use [`Self::eligible_for`] for exact answers, or check
    /// [`Self::is_pristine`] before treating the tree as the full live set.
    #[must_use]
    pub fn index(&self) -> &RTree {
        &self.index
    }

    /// Number of **live** strategies in the catalog.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether the catalog has no live strategies.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Total number of slots ever allocated (live + retired).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.strategies.len()
    }

    /// Size of the log-structured overlay: unindexed tail entries plus
    /// tombstones still present in the index.
    #[must_use]
    pub fn overlay_len(&self) -> usize {
        self.tail.len() + self.pending_tombstones.len()
    }

    /// Whether the overlay is empty (the R-tree covers exactly the live
    /// set).
    #[must_use]
    pub fn overlay_is_empty(&self) -> bool {
        self.tail.is_empty() && self.pending_tombstones.is_empty()
    }

    /// Whether the catalog has never been mutated — its R-tree is still the
    /// pristine STR bulk load over slots `0..n`.
    #[must_use]
    pub fn is_pristine(&self) -> bool {
        self.epoch == 0
    }

    /// Whether the R-tree is a deterministic STR bulk load covering exactly
    /// the live slots (true at construction and after
    /// [`Self::force_rebuild`] with no overlay since; false once an
    /// incremental merge reshaped the tree). `Baseline3` shares the index
    /// only in this state — its MBB heuristic is pinned to the packed
    /// structure.
    #[must_use]
    pub fn index_is_packed_live(&self) -> bool {
        self.packed && self.overlay_is_empty()
    }

    /// Mutation counter: bumped by every [`Self::insert`] / [`Self::retire`].
    /// Derived data (cached ADPaR relaxations, memoized solutions) keyed by
    /// an epoch must be discarded when the catalog's epoch moves past it.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of overlay merges / full rebuilds performed so far.
    #[must_use]
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// The overlay merge policy.
    #[must_use]
    pub fn rebuild_policy(&self) -> RebuildPolicy {
        self.policy
    }

    /// Indices of the live strategies satisfying the request thresholds
    /// `params`, ascending — exactly the set (and order) of
    /// [`DeploymentRequest::eligible_strategies`] over the live slots, found
    /// through the index plus the overlay.
    ///
    /// A strategy satisfies a request when, in the normalized minimization
    /// space, its point is covered by the request's point. That makes
    /// eligibility an origin-anchored box query whose top-right corner is the
    /// request point; the box is inflated by [`QUERY_MARGIN`], tombstoned
    /// hits are dropped, the unindexed tail is scanned, and candidates are
    /// confirmed with the exact epsilon-tolerant predicate.
    #[must_use]
    pub fn eligible_for(&self, params: &DeploymentParameters) -> Vec<usize> {
        let corner = params.to_normalized_point();
        let query = Aabb3::anchored_at_origin(Point3::new(
            corner.x + QUERY_MARGIN,
            corner.y + QUERY_MARGIN,
            corner.z + QUERY_MARGIN,
        ));
        let mut eligible = self.index.query_box(&query);
        eligible.retain(|&i| self.live[i] && self.strategies[i].params.satisfies(params));
        // Tail slots are always newer than every indexed slot, so appending
        // the (ascending) tail keeps the result sorted.
        eligible.extend(
            self.tail
                .iter()
                .copied()
                .filter(|&i| self.strategies[i].params.satisfies(params)),
        );
        eligible
    }

    /// [`Self::eligible_for`] over a deployment request.
    #[must_use]
    pub fn eligible_for_request(&self, request: &DeploymentRequest) -> Vec<usize> {
        self.eligible_for(&request.params)
    }

    /// Writes the **live** slots into `out`, sorted ascending by
    /// `(normalized coordinate on axis, slot)` — exact at every churn point.
    ///
    /// The order is merged on the fly from the pre-sorted per-axis base
    /// permutation (rebuilt at every overlay merge) and the per-axis sorted
    /// tail (maintained on every insert), filtering tombstones — `O(live)`
    /// with **no allocation beyond `out`**, instead of a full
    /// `O(|S| log |S|)` sort. (If the tail has outgrown the incremental
    /// sorted-tail regime — possible only with rebuild thresholds above
    /// `SORTED_TAIL_LIMIT` — a tail copy is sorted per call instead.)
    /// Because the ADPaR relaxation `max(0, coord − threshold)` is monotone
    /// in the coordinate, this order **is** the ascending per-axis
    /// relaxation order of any request — catalog-backed
    /// [`crate::adpar::AdparProblem`]s derive their sweep orders from it
    /// without sorting.
    pub fn axis_order_into(&self, axis: Axis, out: &mut Vec<usize>) {
        let overflow_tail = if self.axis_tail_sorted {
            None
        } else {
            Some(sorted_axis_tail(&self.points, &self.tail, axis))
        };
        let tail_sorted = overflow_tail
            .as_deref()
            .unwrap_or(&self.axis_tail[axis.index()]);
        merge_axis_order_into(
            &self.axis_base[axis.index()],
            tail_sorted,
            &self.live,
            &self.points,
            axis,
            out,
        );
    }

    /// Allocating convenience for [`Self::axis_order_into`].
    #[must_use]
    pub fn axis_order(&self, axis: Axis) -> Vec<usize> {
        let mut out = Vec::new();
        self.axis_order_into(axis, &mut out);
        out
    }
}

/// Total order of two slots on one axis: `(coordinate, slot)` under
/// `f64::total_cmp`, so ties break deterministically by slot number and
/// every comparison site agrees on edge values like `-0.0` vs `0.0` (a
/// `PartialOrd` tuple comparison would call those coordinates equal while
/// the sorts would not, desynchronizing the merged orders).
fn axis_cmp(points: &[Point3], axis: Axis, a: usize, b: usize) -> std::cmp::Ordering {
    points[a]
        .coord(axis)
        .total_cmp(&points[b].coord(axis))
        .then(a.cmp(&b))
}

/// A copy of `slots` sorted ascending by `(coordinate on axis, slot)`.
fn sorted_axis_tail(points: &[Point3], slots: &[usize], axis: Axis) -> Vec<usize> {
    let mut order = slots.to_vec();
    order.sort_unstable_by(|&a, &b| axis_cmp(points, axis, a, b));
    order
}

/// Builds the three per-axis permutations of `slots` sorted ascending by
/// `(coordinate, slot)`.
fn sorted_axis_orders(points: &[Point3], slots: Vec<usize>) -> [Vec<usize>; 3] {
    Axis::ALL.map(|axis| sorted_axis_tail(points, &slots, axis))
}

/// Merges a sorted axis base with a sorted tail into `out` (cleared first),
/// dropping non-live base slots. Tail slots are always live — retiring a
/// tail slot removes it from the tail instead of tombstoning — so only the
/// base needs filtering. Serves both the query path
/// ([`StrategyCatalog::axis_order_into`]) and the overlay merge, keeping
/// the two orderings identical by construction.
fn merge_axis_order_into(
    base: &[usize],
    tail_sorted: &[usize],
    live: &[bool],
    points: &[Point3],
    axis: Axis,
    out: &mut Vec<usize>,
) {
    out.clear();
    out.reserve(base.len() + tail_sorted.len());
    let mut tail_iter = tail_sorted.iter().copied().peekable();
    for slot in base.iter().copied().filter(|&slot| live[slot]) {
        while let Some(&t) = tail_iter.peek() {
            if axis_cmp(points, axis, t, slot).is_lt() {
                out.push(t);
                tail_iter.next();
            } else {
                break;
            }
        }
        out.push(slot);
    }
    out.extend(tail_iter);
}

impl From<Vec<Strategy>> for StrategyCatalog {
    fn from(strategies: Vec<Strategy>) -> Self {
        Self::new(strategies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_mirrors_the_strategy_set() {
        let strategies = crate::examples_data::running_example_strategies();
        let catalog = StrategyCatalog::from_slice(&strategies);
        assert_eq!(catalog.len(), 4);
        assert_eq!(catalog.slot_count(), 4);
        assert!(!catalog.is_empty());
        assert!(catalog.is_pristine());
        assert_eq!(catalog.epoch(), 0);
        assert_eq!(catalog.strategies(), &strategies[..]);
        assert_eq!(catalog.points().len(), 4);
        assert_eq!(catalog.index().len(), 4);
        for (i, (strategy, point)) in strategies.iter().zip(catalog.points()).enumerate() {
            assert_eq!(strategy.to_normalized_point(), *point);
            assert_eq!(catalog.strategy(i), strategy);
            assert!(catalog.is_live(i));
        }
        assert!(!catalog.is_live(4));
    }

    #[test]
    fn eligibility_matches_linear_scan_on_running_example() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let catalog = StrategyCatalog::from_slice(&strategies);
        for request in &requests {
            assert_eq!(
                catalog.eligible_for_request(request),
                request.eligible_strategies(&strategies),
                "request {:?}",
                request.id
            );
        }
    }

    #[test]
    fn empty_catalog_behaves() {
        let catalog = StrategyCatalog::new(Vec::new());
        assert!(catalog.is_empty());
        assert_eq!(catalog.len(), 0);
        let loosest = DeploymentParameters::default();
        assert!(catalog.eligible_for(&loosest).is_empty());
    }

    #[test]
    fn boundary_strategies_stay_eligible() {
        // A strategy exactly on the request's thresholds is eligible under
        // the epsilon-tolerant predicate; the inflated query box must not
        // lose it.
        let params = DeploymentParameters::clamped(0.7, 0.3, 0.4);
        let strategies = vec![Strategy::from_params(0, params)];
        let catalog = StrategyCatalog::from_slice(&strategies);
        assert_eq!(catalog.eligible_for(&params), vec![0]);
    }

    #[test]
    fn from_conversions_agree() {
        let strategies = crate::examples_data::running_example_strategies();
        let a = StrategyCatalog::from_slice(&strategies);
        let b: StrategyCatalog = strategies.into();
        assert_eq!(a, b);
    }

    #[test]
    fn insert_appends_a_live_slot_and_bumps_the_epoch() {
        let strategies = crate::examples_data::running_example_strategies();
        let mut catalog = StrategyCatalog::from_slice(&strategies);
        let loosest = DeploymentParameters::default();
        let slot = catalog.insert(Strategy::from_params(
            99,
            DeploymentParameters::clamped(0.9, 0.1, 0.1),
        ));
        assert_eq!(slot, 4);
        assert_eq!(catalog.len(), 5);
        assert_eq!(catalog.slot_count(), 5);
        assert_eq!(catalog.epoch(), 1);
        assert!(!catalog.is_pristine());
        assert!(catalog.is_live(slot));
        // Immediately visible to queries even while still in the tail.
        assert!(catalog.eligible_for(&loosest).contains(&slot));
    }

    #[test]
    fn retire_tombstones_without_renumbering() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let mut catalog = StrategyCatalog::from_slice(&strategies);
        // d3's eligible set is {1, 2, 3}; retiring slot 2 must drop exactly
        // that slot while 1 and 3 keep their numbers.
        assert!(catalog.retire(2));
        assert!(!catalog.retire(2), "double retirement is a no-op");
        assert!(!catalog.retire(42), "out-of-range retirement is a no-op");
        assert_eq!(catalog.len(), 3);
        assert_eq!(catalog.slot_count(), 4);
        assert!(!catalog.is_live(2));
        assert_eq!(catalog.eligible_for_request(&requests[2]), vec![1, 3]);
        assert_eq!(catalog.live_indices(), vec![0, 1, 3]);
        assert_eq!(catalog.epoch(), 1);
    }

    #[test]
    fn retiring_a_tail_slot_never_touches_the_index() {
        let mut catalog = StrategyCatalog::with_policy(Vec::new(), RebuildPolicy::never());
        let a = catalog.insert(Strategy::from_params(
            0,
            DeploymentParameters::clamped(0.8, 0.2, 0.2),
        ));
        let b = catalog.insert(Strategy::from_params(
            1,
            DeploymentParameters::clamped(0.9, 0.1, 0.1),
        ));
        assert_eq!(catalog.overlay_len(), 2);
        assert!(catalog.retire(a));
        // The retired slot was still in the tail: overlay shrinks instead of
        // gaining a tombstone.
        assert_eq!(catalog.overlay_len(), 1);
        assert_eq!(catalog.index().len(), 0);
        let loosest = DeploymentParameters::default();
        assert_eq!(catalog.eligible_for(&loosest), vec![b]);
    }

    #[test]
    fn rebuild_policies_control_merging() {
        let strategies = crate::examples_data::running_example_strategies();
        let strategy = |id| Strategy::from_params(id, DeploymentParameters::clamped(0.8, 0.3, 0.3));

        let mut always = StrategyCatalog::with_policy(strategies.clone(), RebuildPolicy::always());
        always.insert(strategy(10));
        assert!(
            always.overlay_is_empty(),
            "always-policy merges immediately"
        );
        assert_eq!(always.index().len(), 5);
        assert_eq!(always.merge_count(), 1);

        let mut never = StrategyCatalog::with_policy(strategies.clone(), RebuildPolicy::never());
        never.insert(strategy(10));
        never.retire(0);
        assert_eq!(never.overlay_len(), 2);
        assert_eq!(never.index().len(), 4, "never-policy leaves the tree alone");
        assert_eq!(never.merge_count(), 0);

        let mut thresholded = StrategyCatalog::with_policy(strategies, RebuildPolicy::threshold(2));
        thresholded.insert(strategy(10));
        thresholded.retire(0);
        assert_eq!(thresholded.overlay_len(), 2, "at the limit, no merge yet");
        thresholded.insert(strategy(11));
        assert!(thresholded.overlay_is_empty(), "crossing the limit merges");
        // Tombstone removed, two inserts applied: 4 - 1 + 2.
        assert_eq!(thresholded.index().len(), 5);
    }

    #[test]
    fn packed_live_tracking_follows_merges_and_rebuilds() {
        let strategies = crate::examples_data::running_example_strategies();
        let mut catalog = StrategyCatalog::with_policy(strategies, RebuildPolicy::threshold(1));
        assert!(
            catalog.index_is_packed_live(),
            "pristine catalogs are packed"
        );
        catalog.insert(Strategy::from_params(
            10,
            DeploymentParameters::clamped(0.8, 0.3, 0.3),
        ));
        assert!(
            !catalog.index_is_packed_live(),
            "an unmerged tail breaks the packed-live state"
        );
        catalog.insert(Strategy::from_params(
            11,
            DeploymentParameters::clamped(0.8, 0.3, 0.3),
        ));
        assert!(
            catalog.overlay_is_empty(),
            "threshold 1 merged at 2 entries"
        );
        assert!(
            !catalog.index_is_packed_live(),
            "incremental merges reshape the tree away from the STR packing"
        );
        catalog.force_rebuild();
        assert!(
            catalog.index_is_packed_live(),
            "force_rebuild restores a packed live index"
        );
    }

    /// Reference: live slots sorted ascending by `(coordinate, slot)`.
    fn scan_axis_order(catalog: &StrategyCatalog, axis: Axis) -> Vec<usize> {
        let mut slots = catalog.live_indices();
        slots.sort_by(|&a, &b| {
            catalog.points()[a]
                .coord(axis)
                .total_cmp(&catalog.points()[b].coord(axis))
                .then(a.cmp(&b))
        });
        slots
    }

    #[test]
    fn axis_orders_match_a_sorted_scan() {
        let strategies = crate::examples_data::running_example_strategies();
        let catalog = StrategyCatalog::from_slice(&strategies);
        for axis in Axis::ALL {
            assert_eq!(catalog.axis_order(axis), scan_axis_order(&catalog, axis));
        }
        // Spot-check the quality axis: ascending 1 - quality means
        // descending quality, and the running example's qualities ascend
        // from s1 to s4.
        assert_eq!(catalog.axis_order(Axis::X), vec![3, 2, 1, 0]);
    }

    #[test]
    fn axis_orders_stay_exact_under_churn() {
        for policy in [
            RebuildPolicy::always(),
            RebuildPolicy::threshold(2),
            RebuildPolicy::never(),
        ] {
            let strategies = crate::examples_data::running_example_strategies();
            let mut catalog = StrategyCatalog::with_policy(strategies, policy);
            catalog.insert(Strategy::from_params(
                10,
                DeploymentParameters::clamped(0.8, 0.25, 0.31),
            ));
            catalog.retire(1);
            catalog.insert(Strategy::from_params(
                11,
                DeploymentParameters::clamped(0.65, 0.4, 0.1),
            ));
            for axis in Axis::ALL {
                assert_eq!(
                    catalog.axis_order(axis),
                    scan_axis_order(&catalog, axis),
                    "{policy:?}, {axis:?}, pre-merge"
                );
            }
            catalog.merge_overlay();
            catalog.retire(3);
            for axis in Axis::ALL {
                assert_eq!(
                    catalog.axis_order(axis),
                    scan_axis_order(&catalog, axis),
                    "{policy:?}, {axis:?}, post-merge"
                );
            }
            catalog.force_rebuild();
            for axis in Axis::ALL {
                assert_eq!(
                    catalog.axis_order(axis),
                    scan_axis_order(&catalog, axis),
                    "{policy:?}, {axis:?}, post-rebuild"
                );
            }
        }
    }

    #[test]
    fn axis_orders_survive_tail_overflow_under_never_policy() {
        // Past SORTED_TAIL_LIMIT the incremental sorted tails are abandoned
        // (keeping inserts O(1) amortized under unbounded policies) and the
        // query path sorts a tail copy instead; orders must stay exact
        // through the overflow, through retires inside it, and after the
        // merge that restores the incremental regime.
        let mut catalog = StrategyCatalog::with_policy(Vec::new(), RebuildPolicy::never());
        for i in 0..(SORTED_TAIL_LIMIT + 40) {
            let q = 0.3 + 0.4 * ((i % 97) as f64 / 97.0);
            catalog.insert(Strategy::from_params(
                i as u64,
                DeploymentParameters::clamped(q, 1.0 - q, (i % 13) as f64 / 13.0),
            ));
        }
        for axis in Axis::ALL {
            assert_eq!(
                catalog.axis_order(axis),
                scan_axis_order(&catalog, axis),
                "{axis:?}, overflowed tail"
            );
        }
        for slot in [0, 7, SORTED_TAIL_LIMIT + 5] {
            assert!(catalog.retire(slot));
        }
        for axis in Axis::ALL {
            assert_eq!(
                catalog.axis_order(axis),
                scan_axis_order(&catalog, axis),
                "{axis:?}, retires while overflowed"
            );
        }
        catalog.merge_overlay();
        assert!(catalog.overlay_is_empty());
        catalog.insert(Strategy::from_params(
            90_000,
            DeploymentParameters::clamped(0.5, 0.5, 0.5),
        ));
        for axis in Axis::ALL {
            assert_eq!(
                catalog.axis_order(axis),
                scan_axis_order(&catalog, axis),
                "{axis:?}, post-merge incremental regime"
            );
        }
    }

    #[test]
    fn axis_order_ties_break_by_slot() {
        let params = DeploymentParameters::clamped(0.7, 0.3, 0.4);
        let strategies = vec![
            Strategy::from_params(0, params),
            Strategy::from_params(1, params),
            Strategy::from_params(2, params),
        ];
        let catalog = StrategyCatalog::from_slice(&strategies);
        for axis in Axis::ALL {
            assert_eq!(catalog.axis_order(axis), vec![0, 1, 2]);
        }
    }

    #[test]
    fn negative_zero_coordinates_keep_the_total_order() {
        // clamped() preserves -0.0 (since -0.0 < 0.0 is false) and
        // total_cmp orders -0.0 before +0.0. Every comparison site — the
        // base sort, the insert-time partition point and the query-time
        // merge — must agree on that, or a -0.0 tail insert desynchronizes
        // the merged order from the documented (coordinate, slot) sort.
        let mut catalog = StrategyCatalog::with_policy(
            vec![Strategy::from_params(
                0,
                DeploymentParameters::clamped(0.7, 0.0, 0.4),
            )],
            RebuildPolicy::never(),
        );
        catalog.insert(Strategy::from_params(
            1,
            DeploymentParameters::clamped(0.7, -0.0, 0.4),
        ));
        assert_eq!(
            catalog.axis_order(Axis::Y),
            scan_axis_order(&catalog, Axis::Y)
        );
        assert_eq!(catalog.axis_order(Axis::Y), vec![1, 0]);
        catalog.merge_overlay();
        assert_eq!(catalog.axis_order(Axis::Y), vec![1, 0]);
    }

    #[test]
    fn merge_and_force_rebuild_preserve_eligibility() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let mut catalog = StrategyCatalog::with_policy(strategies.clone(), RebuildPolicy::never());
        catalog.retire(1);
        let slot = catalog.insert(Strategy::from_params(
            50,
            DeploymentParameters::clamped(0.72, 0.5, 0.2),
        ));
        let before: Vec<Vec<usize>> = requests
            .iter()
            .map(|r| catalog.eligible_for_request(r))
            .collect();
        catalog.merge_overlay();
        assert!(catalog.overlay_is_empty());
        assert_eq!(catalog.index().len(), 4); // 4 - 1 tombstone + 1 insert
        for (request, expected) in requests.iter().zip(&before) {
            assert_eq!(&catalog.eligible_for_request(request), expected);
        }
        catalog.force_rebuild();
        for (request, expected) in requests.iter().zip(&before) {
            assert_eq!(&catalog.eligible_for_request(request), expected);
        }
        assert!(catalog.is_live(slot));
        assert_eq!(catalog.live_entries().len(), 4);
    }
}
