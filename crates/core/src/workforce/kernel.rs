//! The columnar `f32` workforce kernel: cache-layout + SIMD-shaped cold fill.
//!
//! The scalar cold path ([`WorkforceMatrix::compute_with_catalog`]) walks an
//! R-tree per request and inverts three branchy `f64` lines per eligible
//! cell. At `|S| = 10 000` that is the per-epoch floor the ROADMAP names:
//! pointer-chasing through tree nodes, then `Strategy`-sized row-of-structs
//! loads, then data-dependent branches per cell. This module restructures
//! the fill for the memory system instead:
//!
//! * **Eligibility as bitmask predicates over SoA columns.** The catalog
//!   keeps a columnar mirror of its slot-parallel state
//!   ([`crate::catalog::soa`]): three contiguous per-axis `f64` parameter
//!   columns plus a packed liveness bitmap. Per [`LANES`]-slot chunk the
//!   kernel evaluates the exact [`satisfies`] predicate (same
//!   [`SATISFIES_EPS`] tolerance — the columns stay `f64` precisely so the
//!   `1e-9` comparison is reproduced bit for bit) as a branchless per-lane
//!   compare. The only data-dependent branch left is the catalog-shaped
//!   one — a chunk whose liveness word is all-dead splats `∞` and moves
//!   on; everything request-dependent is a select, because on real
//!   catalogs per-chunk eligibility is scattered and an "any survivor?"
//!   branch mispredicts its way to ~2× slower fills.
//! * **Model inversion as fixed-width chunk loops.** Chunks are inverted
//!   over nine contiguous `f32` coefficient columns ([`KernelCoeffs`]:
//!   α, 1/α, β per axis — the reciprocal is precomputed once per fill so
//!   the lane loop multiplies instead of divides); every lane computes the
//!   full branch-free inversion ([`invert_line_f32`] — comparisons and
//!   selects, no data-dependent control flow) over fixed-size
//!   `[f32; LANES]` array windows (no bounds checks), and a final select
//!   stores either the widened value or `∞` into the cell. Dead slots and
//!   flat lines are *NaN-poisoned* at collection time (NaN coefficients /
//!   NaN reciprocals) so they fail every feasibility compare arithmetically
//!   — the eligibility mask needs no integer liveness test and the
//!   `ModelOnly` rule needs no mask at all. Every cell is written exactly
//!   once (a finite value or `∞`), so the fill needs no `∞` prefill and a
//!   cold fill can start from a zeroed allocation. Rows are processed in
//!   [`ROW_TILE`]-row tiles (row-outer, chunk-inner within the tile) so
//!   each pass over the coefficient columns is amortized across the tile
//!   while per-row threshold broadcasts stay hoisted. The `scalar-kernel`
//!   cargo feature swaps the chunk walk for a per-slot scalar walk of the
//!   *same* per-cell computation — a `std::simd`-style manual fallback
//!   that is bit-identical by construction, kept for debugging codegen
//!   regressions.
//!
//! # Precision contract
//!
//! [`Precision`] selects between this kernel and the scalar `f64` reference
//! path, and the matrix records which one filled it. The contract, pinned by
//! `tests/kernel_parity.rs`:
//!
//! * **Bit-exact:** eligibility masks (the predicate runs in `f64` off the
//!   SoA columns), the `∞` marking of ineligible/infeasible cells away from
//!   satisfaction boundaries, and top-k tie-breaking by ascending index
//!   (finite `f32` cells widen exactly into the `f64` row, and widening is
//!   monotone, so a top-k over the widened cells is the top-k over the
//!   `f32` cells).
//! * **ULP-bounded:** finite cell values. Inputs are cast once
//!   (`f64 as f32`, correctly rounded), the root is one rounded subtraction
//!   and one rounded multiply by the precomputed reciprocal
//!   `(t − β) · (1/α)`, and the clamp is exact — for the unit-interval
//!   parameter domain with `|α| ≥ 0.25` the finite cells stay within a few
//!   `f32` ULPs (≲ `1e-6` absolute) of the `f64` reference; `2e-6` is the
//!   documented bound.
//! * **Boundary tolerance:** the `f64` path accepts a root whose probe
//!   evaluation sits within `1e-12` of the threshold. `1e-12` is far below
//!   `f32` rounding error, so the kernel widens that probe tolerance to
//!   [`PROBE_EPS`] (`1e-5`, ≈ 84 ULPs at magnitude 1 — comfortably above
//!   rounding noise, far below the data's scale). Within `1e-5` of a
//!   satisfaction boundary the two paths may classify a cell differently;
//!   the parity suite's generators stay on a `1/64` grid where this band is
//!   empty and classification is provably identical.
//!
//! [`WorkforceMatrix::compute_with_catalog`]: super::WorkforceMatrix::compute_with_catalog
//! [`satisfies`]: crate::model::DeploymentParameters::satisfies
//! [`SATISFIES_EPS`]: crate::model::SATISFIES_EPS

use serde::{Deserialize, Serialize};

use crate::catalog::soa::WORD_BITS;
use crate::catalog::StrategyCatalog;
use crate::model::{DeploymentParameters, DeploymentRequest, SATISFIES_EPS};
use crate::modeling::StrategyModel;
use crate::workforce::EligibilityRule;

/// Which implementation fills (and filled) a workforce matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// The scalar `f64` reference path — bit-exact with the pre-kernel
    /// [`WorkforceMatrix::compute_with_catalog`] results.
    ///
    /// [`WorkforceMatrix::compute_with_catalog`]: super::WorkforceMatrix::compute_with_catalog
    #[default]
    F64,
    /// The columnar `f32` kernel of this module (cells are stored exactly
    /// widened to `f64`, so all downstream aggregation is shared).
    F32,
}

impl Precision {
    /// Both precisions, reference first — handy for parity loops.
    pub const ALL: [Precision; 2] = [Precision::F64, Precision::F32];

    /// Label used in benchmark output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::F64 => "f64",
            Self::F32 => "f32",
        }
    }
}

/// Chunk width of the vectorizable inversion loop: 16 lanes of `f32` span
/// two 256-bit vector registers (or one 512-bit register), one liveness
/// word covers 4 chunks, and the chunk's live bits extract as a `u16`.
/// Measured faster than 8 on AVX2/AVX-512 targets — fewer loop-carried
/// counters per slot processed.
#[cfg_attr(feature = "scalar-kernel", allow(dead_code))] // the scalar walk has no chunk loop
pub(crate) const LANES: usize = 16;

/// `f32` counterpart of the model inversion's `1e-12` probe tolerance
/// (see the module docs' precision contract).
const PROBE_EPS: f32 = 1e-5;

/// The `f64` path's shared `1e-12` tolerance, kept verbatim where the
/// compared quantities carry no `f32` rounding error: the flat-line slope
/// check and the value-at-zero check (which compares β itself).
const EXACT_EPS: f32 = 1e-12;

/// The `f64` path accepts roots up to `1.0 + 1e-9`; at `f32` resolution the
/// slack is sub-ULP (`1.0 + 1e-9` rounds to `1.0`), kept for structural
/// symmetry with the reference.
const RANGE_SLACK: f32 = 1e-9;

/// A request's thresholds cast once to `f32` for the kernel lanes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Thresholds {
    quality: f32,
    cost: f32,
    latency: f32,
}

impl Thresholds {
    pub(crate) fn of(params: &DeploymentParameters) -> Self {
        Self {
            quality: params.quality as f32,
            cost: params.cost as f32,
            latency: params.latency as f32,
        }
    }
}

/// One axis's slot-parallel coefficient columns: slope, **precomputed
/// reciprocal slope** (the lane loop multiplies by `1/α` instead of paying a
/// hardware division per lane — the reciprocal is rounded once here, so the
/// cold fill and the delta path compute bit-identical roots), and intercept.
#[derive(Debug, Clone, Default)]
struct AxisColumns {
    alpha: Vec<f32>,
    inv_alpha: Vec<f32>,
    beta: Vec<f32>,
}

impl AxisColumns {
    fn clear_and_reserve(&mut self, len: usize) {
        self.alpha.clear();
        self.inv_alpha.clear();
        self.beta.clear();
        self.alpha.reserve(len);
        self.inv_alpha.reserve(len);
        self.beta.reserve(len);
    }

    fn push(&mut self, line: crate::modeling::LinearModel) {
        let alpha = line.alpha as f32;
        self.alpha.push(alpha);
        // A flat line can never be inverted (the f64 path rejects
        // `|α| ≤ 1e-12` outright), and flatness is a per-slot constant — so
        // the check runs once here, as NaN poison on the reciprocal, instead
        // of per lane in the fill: a NaN root fails every feasibility
        // compare. Satisfied-at-zero still short-circuits first, off the
        // intact β column, exactly like the reference.
        self.inv_alpha.push(if alpha.abs() > EXACT_EPS {
            1.0 / alpha
        } else {
            f32::NAN
        });
        self.beta.push(line.beta as f32);
    }
}

/// A fixed-size [`LANES`]-wide borrow of a column starting at `slot` — the
/// array type lets the lane loops compile without per-lane bounds checks.
#[cfg(not(feature = "scalar-kernel"))]
#[inline(always)]
fn window<T>(column: &[T], slot: usize) -> &[T; LANES] {
    column[slot..slot + LANES]
        .try_into()
        .expect("window is LANES wide")
}

/// A `LANES`-wide window over one axis's coefficient columns.
#[cfg(not(feature = "scalar-kernel"))]
#[derive(Clone, Copy)]
struct AxisChunk<'a> {
    alpha: &'a [f32; LANES],
    inv_alpha: &'a [f32; LANES],
    beta: &'a [f32; LANES],
}

/// The nine slot-parallel `f32` coefficient columns (α, 1/α, β per axis) the
/// inversion lanes stream. Models live in the [`crate::modeling::ModelLibrary`]
/// and move independently of the catalog, so the columns are (re)collected
/// from the per-batch model buffer — one `O(|S|)` pass per cold fill,
/// amortized over all `m` rows. Slots without a model (retired) carry **NaN
/// poison coefficients**: every feasibility compare in
/// [`invert_line_f32`] is false on NaN, so a dead lane yields `∞` through
/// the same arithmetic as everything else and the lane loops never need to
/// consult the liveness bitmap (which would mix integer bit tests into the
/// float dataflow and wreck its vectorization).
#[derive(Debug, Clone, Default)]
pub(crate) struct KernelCoeffs {
    quality: AxisColumns,
    cost: AxisColumns,
    latency: AxisColumns,
}

impl KernelCoeffs {
    /// Collects the coefficient columns from a slot-parallel model buffer
    /// ([`super::collect_live_models_into`]).
    pub(crate) fn collect(models: &[Option<StrategyModel>]) -> Self {
        let mut coeffs = Self::default();
        coeffs.recollect(models);
        coeffs
    }

    /// [`Self::collect`] into `self`, reusing the nine allocations.
    pub(crate) fn recollect(&mut self, models: &[Option<StrategyModel>]) {
        self.quality.clear_and_reserve(models.len());
        self.cost.clear_and_reserve(models.len());
        self.latency.clear_and_reserve(models.len());
        for model in models {
            // NaN poison for retired slots — see the struct docs.
            let model = model.unwrap_or(StrategyModel::uniform(f64::NAN, f64::NAN));
            self.quality.push(model.quality);
            self.cost.push(model.cost);
            self.latency.push(model.latency);
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.quality.alpha.len()
    }
}

/// Branch-free `f32` mirror of [`LinearModel::required_workforce`]: same
/// decisions (already-satisfied short-circuit, flat-line and range checks,
/// probe confirmation — the reference's clamps are subsumed by the range
/// pair), with every condition evaluated as a select so a lane loop over it
/// vectorizes. `LOWER` is a const generic so each axis monomorphizes to
/// straight-line code.
///
/// [`LinearModel::required_workforce`]: crate::modeling::LinearModel::required_workforce
#[inline(always)]
fn invert_line_f32<const LOWER: bool>(
    alpha: f32,
    inv_alpha: f32,
    beta: f32,
    threshold: f32,
) -> f32 {
    // Satisfied with zero workforce? The value at w = 0 is β exactly, so the
    // f64 path's 1e-12 tolerance (sub-ULP here) keeps its meaning: a true
    // tie counts as satisfied.
    let satisfied_at_zero = if LOWER {
        beta + EXACT_EPS >= threshold
    } else {
        beta <= threshold + EXACT_EPS
    };
    // Multiply by the precomputed reciprocal instead of dividing. Flat
    // lines carry a NaN reciprocal ([`AxisColumns::push`]), so their root
    // is NaN and fails every feasibility compare — the f64 path's explicit
    // `|α| ≤ 1e-12` rejection, paid per slot at collection time instead of
    // per lane here.
    let w = (threshold - beta) * inv_alpha;
    // Probe the root directly, without the reference's `min(w, 1.0)` clamp:
    // a lane with `w > 1` fails the range check below no matter what its
    // probe says, so clamping before the probe cannot change any surviving
    // lane — and NaN/overflowing probes belong to lanes the range pair
    // rejects anyway.
    let probe = alpha * w + beta;
    let probe_satisfied = if LOWER {
        probe + PROBE_EPS >= threshold
    } else {
        probe <= threshold + PROBE_EPS
    };
    // Non-short-circuit `&` keeps this a pure dataflow of compares and
    // selects — no data-dependent branches for the lane loop to trip over.
    // The range pair also rejects NaN and ±∞ roots (every compare on them
    // is false), subsuming the f64 path's `is_finite` check, and makes both
    // of the reference's clamps redundant: a surviving `w` already lies in
    // `[0, 1]` (`RANGE_SLACK` is sub-ULP at 1.0 in f32).
    #[allow(clippy::manual_range_contains)]
    // `contains` short-circuits; this must stay a dataflow of `&`s
    let feasible = (w >= 0.0) & (w <= 1.0 + RANGE_SLACK) & probe_satisfied;
    let inverted = if feasible { w } else { f32::INFINITY };
    if satisfied_at_zero {
        0.0
    } else {
        inverted
    }
}

/// Max fold for the axis requirements: inversion outputs are never NaN
/// (infeasible lanes come out `∞`), so the NaN-aware semantics of
/// `f32::max` are dead weight — this select form lowers to a single packed
/// max instruction (x86 `maxps` implements exactly `a > b ? a : b`), where
/// `f32::max` costs an extra compare and blend per fold. Used by every
/// path that folds axis inversions so they stay bit-identical.
#[inline(always)]
fn fold_max(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// `f32` mirror of [`StrategyModel::required_workforce`] over the coefficient
/// columns: the max of the three per-axis inversions, floored at zero like
/// the reference's `fold(0.0, f64::max)`.
#[inline(always)]
fn cell_requirement_f32(coeffs: &KernelCoeffs, slot: usize, t: Thresholds) -> f32 {
    let axis = |col: &AxisColumns| (col.alpha[slot], col.inv_alpha[slot], col.beta[slot]);
    let (qa, qi, qb) = axis(&coeffs.quality);
    let (ca, ci, cb) = axis(&coeffs.cost);
    let (la, li, lb) = axis(&coeffs.latency);
    let q = invert_line_f32::<true>(qa, qi, qb, t.quality);
    let c = invert_line_f32::<false>(ca, ci, cb, t.cost);
    let l = invert_line_f32::<false>(la, li, lb, t.latency);
    fold_max(fold_max(fold_max(q, c), l), 0.0)
}

/// [`cell_requirement_f32`] from a single model (no columns): the delta
/// path's per-inserted-slot fill. The casts are the same `f64 as f32`
/// [`KernelCoeffs::recollect`] performs, so a delta-filled cell is
/// bit-identical to the cold kernel's cell for the same slot.
#[inline]
pub(crate) fn model_requirement_f32(model: &StrategyModel, t: Thresholds) -> f32 {
    // The casts, the `1.0 / α` reciprocal and the flat-line NaN poison are
    // exactly what [`AxisColumns::push`] computes, so the root comes out
    // bit-identical.
    let axis = |line: crate::modeling::LinearModel| {
        let alpha = line.alpha as f32;
        let inv_alpha = if alpha.abs() > EXACT_EPS {
            1.0 / alpha
        } else {
            f32::NAN
        };
        (alpha, inv_alpha, line.beta as f32)
    };
    let (qa, qi, qb) = axis(model.quality);
    let (ca, ci, cb) = axis(model.cost);
    let (la, li, lb) = axis(model.latency);
    let q = invert_line_f32::<true>(qa, qi, qb, t.quality);
    let c = invert_line_f32::<false>(ca, ci, cb, t.cost);
    let l = invert_line_f32::<false>(la, li, lb, t.latency);
    fold_max(fold_max(fold_max(q, c), l), 0.0)
}

/// Inverts one [`LANES`]-wide chunk: every lane computes the full
/// branch-free three-axis inversion over the fixed-size coefficient windows
/// (no lane-dependent control flow, no bounds checks — auto-vectorizable),
/// then a select store writes each lane's exactly-widened value or `∞`.
// The explicit `0..LANES` index loops mirror the lane structure the
// vectorizer must prove; iterator chains over three zipped arrays obscure
// it without removing a single bounds check (the arrays are `[_; LANES]`).
#[allow(clippy::needless_range_loop)]
#[cfg(not(feature = "scalar-kernel"))]
#[inline(always)]
fn invert_chunk(
    keep: &[bool; LANES],
    quality: AxisChunk<'_>,
    cost: AxisChunk<'_>,
    latency: AxisChunk<'_>,
    t: Thresholds,
    out: &mut [f64; LANES],
) {
    let mut values = [0.0_f32; LANES];
    for lane in 0..LANES {
        let q = invert_line_f32::<true>(
            quality.alpha[lane],
            quality.inv_alpha[lane],
            quality.beta[lane],
            t.quality,
        );
        let c = invert_line_f32::<false>(
            cost.alpha[lane],
            cost.inv_alpha[lane],
            cost.beta[lane],
            t.cost,
        );
        let l = invert_line_f32::<false>(
            latency.alpha[lane],
            latency.inv_alpha[lane],
            latency.beta[lane],
            t.latency,
        );
        values[lane] = fold_max(fold_max(fold_max(q, c), l), 0.0);
    }
    for lane in 0..LANES {
        out[lane] = if keep[lane] {
            f64::from(values[lane])
        } else {
            f64::INFINITY
        };
    }
}

/// Rows per tile of the chunked fill: per [`LANES`]-slot chunk the kernel
/// serves [`ROW_TILE`] requests before moving on, so a chunk's column loads
/// (three `f64` parameter windows, nine `f32` coefficient windows) are
/// L1-resident for all but the first row of the tile. Without tiling every
/// row re-streams the full ~600 KB column set at `|S| = 10 000`; with it
/// the column traffic divides by the tile height while the per-cell
/// arithmetic — and therefore every cell bit — stays identical.
const ROW_TILE: usize = 8;

/// Fills a block of workforce rows (requests × catalog slots, row-major)
/// through the kernel: per [`LANES`]-slot chunk and row, evaluate the exact
/// `f64` eligibility predicate into a per-lane keep mask (dead slots are
/// NaN-poisoned and fail it arithmetically) and invert the chunk through
/// [`invert_chunk`]; only a chunk whose liveness word is entirely dead
/// short-circuits to a plain `∞` splat. **Every cell is written exactly
/// once** — unlike the scalar [`super::fill_catalog_row`], the rows need no
/// `∞` pre-fill, which lets the cold path allocate its cells zeroed
/// (`alloc_zeroed` maps pages without a write pass) and touch the matrix
/// memory only here. Cell values are independent of the tiling, so any
/// row-sharded split of the batch ([`crate::engine::BatchEngine`]) produces
/// bit-identical cells.
pub(crate) fn fill_catalog_rows_f32(
    requests: &[DeploymentRequest],
    catalog: &StrategyCatalog,
    coeffs: &KernelCoeffs,
    rule: EligibilityRule,
    rows: &mut [f64],
) {
    let soa = catalog.soa();
    let n = soa.len();
    debug_assert_eq!(rows.len(), requests.len() * n);
    debug_assert_eq!(n, coeffs.len());
    if n == 0 {
        return;
    }
    for (tile_requests, tile_rows) in requests.chunks(ROW_TILE).zip(rows.chunks_mut(ROW_TILE * n)) {
        fill_tile(tile_requests, catalog, coeffs, rule, tile_rows, n);
    }
}

/// One [`ROW_TILE`]-high tile of [`fill_catalog_rows_f32`].
fn fill_tile(
    requests: &[DeploymentRequest],
    catalog: &StrategyCatalog,
    coeffs: &KernelCoeffs,
    rule: EligibilityRule,
    rows: &mut [f64],
    n: usize,
) {
    let soa = catalog.soa();
    let quality = soa.quality();
    let cost = soa.cost();
    let latency = soa.latency();
    let words = soa.live_words();
    let check_params = matches!(rule, EligibilityRule::StrategyParameters);
    let mut thresholds = [Thresholds {
        quality: 0.0,
        cost: 0.0,
        latency: 0.0,
    }; ROW_TILE];
    for (t, request) in thresholds.iter_mut().zip(requests) {
        *t = Thresholds::of(&request.params);
    }
    let slot_live = |slot: usize| (words[slot / WORD_BITS] >> (slot % WORD_BITS)) & 1 == 1;
    // The exact f64 predicate, identical to `DeploymentParameters::satisfies`
    // per slot (scalar tail + manual-fallback walk).
    let eligible = |slot: usize, params: &crate::model::DeploymentParameters| {
        !check_params
            || ((quality[slot] + SATISFIES_EPS >= params.quality)
                && (cost[slot] <= params.cost + SATISFIES_EPS)
                && (latency[slot] <= params.latency + SATISFIES_EPS))
    };

    // Re-slice every column (and below, every row) to exactly `n` elements:
    // with all lengths provably equal, the `slot + LANES <= n` loop bound
    // covers every window and LLVM drops the per-column bounds checks from
    // the chunk loop (~13 compare+branch pairs per iteration otherwise).
    #[cfg(not(feature = "scalar-kernel"))]
    let (quality_n, cost_n, latency_n) = (&quality[..n], &cost[..n], &latency[..n]);
    #[cfg(not(feature = "scalar-kernel"))]
    let [qa, qi, qb, ca, ci, cb, la, li, lb] = [
        &coeffs.quality.alpha,
        &coeffs.quality.inv_alpha,
        &coeffs.quality.beta,
        &coeffs.cost.alpha,
        &coeffs.cost.inv_alpha,
        &coeffs.cost.beta,
        &coeffs.latency.alpha,
        &coeffs.latency.inv_alpha,
        &coeffs.latency.beta,
    ]
    .map(|column| &column[..n]);

    #[cfg(not(feature = "scalar-kernel"))]
    for ((row, request), &t) in rows.chunks_mut(n).zip(requests).zip(&thresholds) {
        let row = &mut row[..n];
        let params = &request.params;
        let mut slot = 0;
        while slot + LANES <= n {
            // LANES divides WORD_BITS, so a chunk never straddles liveness
            // words; the u16 cast keeps exactly this chunk's 16 bits.
            let live = (words[slot / WORD_BITS] >> (slot % WORD_BITS)) as u16;
            let out: &mut [f64; LANES] = (&mut row[slot..slot + LANES])
                .try_into()
                .expect("window is LANES wide");
            if live == 0 {
                // Dead chunk: a plain splat store keeps the full-coverage
                // invariant without inversion work. Liveness is a property
                // of the catalog (not the request), so this branch repeats
                // identically for every row of the batch — dead regions
                // cluster after compaction and the predictor learns them.
                *out = [f64::INFINITY; LANES];
                slot += LANES;
                continue;
            }
            // No liveness test in the mask: dead lanes carry NaN poison
            // coefficients and come out `∞` through the inversion itself,
            // so the keep mask is a pure float dataflow — three packed f64
            // compares, nothing else. And no "does any lane survive?"
            // fast-path either: that branch is request-dependent and
            // mispredicts on scattered catalogs; inverting unconditionally
            // and letting the mask select `∞` per lane is cheaper than the
            // mispredicts it replaces.
            let mut keep = [true; LANES];
            if check_params {
                let (sq, sc, sl) = (
                    window(quality_n, slot),
                    window(cost_n, slot),
                    window(latency_n, slot),
                );
                for lane in 0..LANES {
                    // Same predicate as `eligible`, as non-short-circuit
                    // `&` so the lane loop stays branchless.
                    keep[lane] = (sq[lane] + SATISFIES_EPS >= params.quality)
                        & (sc[lane] <= params.cost + SATISFIES_EPS)
                        & (sl[lane] <= params.latency + SATISFIES_EPS);
                }
            }
            invert_chunk(
                &keep,
                AxisChunk {
                    alpha: window(qa, slot),
                    inv_alpha: window(qi, slot),
                    beta: window(qb, slot),
                },
                AxisChunk {
                    alpha: window(ca, slot),
                    inv_alpha: window(ci, slot),
                    beta: window(cb, slot),
                },
                AxisChunk {
                    alpha: window(la, slot),
                    inv_alpha: window(li, slot),
                    beta: window(lb, slot),
                },
                t,
                out,
            );
            slot += LANES;
        }
        // Partial trailing chunk: same per-cell function, walked per slot —
        // bit-identical to the chunked lanes.
        #[allow(clippy::needless_range_loop)]
        // `slot` indexes the shared columns too, not just `row`
        for slot in slot..n {
            row[slot] = if slot_live(slot) && eligible(slot, params) {
                f64::from(cell_requirement_f32(coeffs, slot, t))
            } else {
                f64::INFINITY
            };
        }
    }

    // The `std::simd`-style manual fallback behind the `scalar-kernel`
    // feature: a per-slot scalar walk of the same per-cell inversion.
    // Bit-identical to the chunked walk by construction (same function per
    // slot); exists to isolate auto-vectorization regressions.
    #[cfg(feature = "scalar-kernel")]
    for ((row, request), &t) in rows.chunks_mut(n).zip(requests).zip(&thresholds) {
        // `slot` indexes the shared coefficient columns too, not just `row`.
        #[allow(clippy::needless_range_loop)]
        for slot in 0..n {
            row[slot] = if slot_live(slot) && eligible(slot, &request.params) {
                f64::from(cell_requirement_f32(coeffs, slot, t))
            } else {
                f64::INFINITY
            };
        }
    }
}

/// `f32` twin of [`super::fill_inserted_cells`]: computes the freshly
/// appended columns of one row through [`model_requirement_f32`], so a
/// delta-maintained `F32` matrix stays bit-identical to a cold kernel fill
/// over the updated catalog.
pub(crate) fn fill_inserted_cells_f32(
    request: &DeploymentRequest,
    catalog: &StrategyCatalog,
    inserted: &[usize],
    inserted_models: &[Option<StrategyModel>],
    rule: EligibilityRule,
    row: &mut [f64],
) {
    let t = Thresholds::of(&request.params);
    for (&slot, model) in inserted.iter().zip(inserted_models) {
        let Some(model) = model else {
            continue; // retired within the window: the column stays infinite
        };
        let eligible = match rule {
            EligibilityRule::StrategyParameters => {
                catalog.strategy(slot).params.satisfies(&request.params)
            }
            EligibilityRule::ModelOnly => true,
        };
        if eligible {
            row[slot] = f64::from(model_requirement_f32(model, t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modeling::{LinearModel, ParameterKind};

    fn line(alpha: f64, beta: f64) -> LinearModel {
        LinearModel::new(alpha, beta)
    }

    /// On inputs away from satisfaction boundaries the f32 inversion and the
    /// f64 reference agree on classification and land within a few ULPs.
    #[test]
    fn inversion_mirrors_the_f64_reference() {
        let cases = [
            (0.5, 0.5, 0.75),   // root at 0.5
            (0.5, 0.5, 0.25),   // satisfied at zero
            (0.5, 0.5, 1.0),    // root exactly at 1.0
            (0.25, 0.5, 0.875), // root at 1.5 -> infeasible
            (-0.5, 1.0, 0.75),  // falling line, upper bounds reachable
            (0.0, 0.5, 0.75),   // flat line, unsatisfied -> infeasible
        ];
        for (alpha, beta, threshold) in cases {
            let (a, inv_a) = (alpha as f32, 1.0 / (alpha as f32));
            let reference = line(alpha, beta).required_workforce(threshold, ParameterKind::Quality);
            let kernel = invert_line_f32::<true>(a, inv_a, beta as f32, threshold as f32);
            assert_eq!(
                reference.is_finite(),
                kernel.is_finite(),
                "classification for ({alpha}, {beta}, {threshold})"
            );
            if reference.is_finite() {
                assert!(
                    (f64::from(kernel) - reference).abs() <= 2e-6,
                    "({alpha}, {beta}, {threshold}): {kernel} vs {reference}"
                );
            }
            let upper_ref = line(alpha, beta).required_workforce(threshold, ParameterKind::Cost);
            let upper = invert_line_f32::<false>(a, inv_a, beta as f32, threshold as f32);
            assert_eq!(upper_ref.is_finite(), upper.is_finite());
            if upper_ref.is_finite() {
                assert!((f64::from(upper) - upper_ref).abs() <= 2e-6);
            }
        }
    }

    /// The delta-path per-model fill and the columnar per-slot fill are the
    /// same computation bit for bit.
    #[test]
    fn model_and_columnar_cells_are_bit_identical() {
        let models: Vec<Option<StrategyModel>> = (0..9)
            .map(|i| {
                Some(StrategyModel::new(
                    line(0.3 + 0.05 * f64::from(i), 0.4),
                    line(-0.4, 0.9 - 0.03 * f64::from(i)),
                    line(-0.25, 0.8),
                ))
            })
            .collect();
        let coeffs = KernelCoeffs::collect(&models);
        let t = Thresholds::of(&DeploymentParameters::clamped(0.7, 0.55, 0.6));
        for (slot, model) in models.iter().enumerate() {
            let columnar = cell_requirement_f32(&coeffs, slot, t);
            let scalar = model_requirement_f32(&model.unwrap(), t);
            assert_eq!(columnar.to_bits(), scalar.to_bits(), "slot {slot}");
        }
    }

    #[test]
    fn precision_labels_are_stable() {
        assert_eq!(Precision::F64.label(), "f64");
        assert_eq!(Precision::F32.label(), "f32");
        assert_eq!(Precision::default(), Precision::F64);
        assert_eq!(Precision::ALL, [Precision::F64, Precision::F32]);
    }
}
