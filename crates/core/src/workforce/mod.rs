//! Workforce-requirement computation (paper §3.2).
//!
//! Given `m` deployment requests and `|S|` strategies, the Aggregator builds
//! the matrix `W` whose cell `w_ij` is the minimum workforce needed to
//! deploy request `d_i` with strategy `s_j` (the maximum over the three
//! per-parameter requirements obtained by inverting the linear model of
//! Equation 4). The per-request requirement is then aggregated over the `k`
//! cheapest strategies, either as their sum (*sum-case*: the requester will
//! run all `k` recommended strategies) or as the `k`-th smallest value
//! (*max-case*: only one of the `k` will be run).
//!
//! The cold fill exists in two implementations selected by a [`Precision`]
//! knob: the scalar `f64` reference path of this module and the columnar
//! `f32` [`kernel`], which streams the catalog's SoA block with bitmask
//! eligibility and vectorizable chunk loops (see the kernel module docs for
//! the precision contract). Everything downstream of the fill — aggregation,
//! caching, delta repair — is shared: `f32` cells are stored exactly widened
//! to `f64`, so one [`topk::k_smallest_aggregates_into`] code path serves
//! both precisions.

pub mod kernel;

pub use kernel::Precision;

use serde::{Deserialize, Serialize};
use stratrec_optim::topk::{self, TopKScratch};

use crate::catalog::{CatalogDelta, ShardPlan, SlotRemap, StrategyCatalog};
use crate::error::StratRecError;
use crate::model::{DeploymentRequest, Strategy};
use crate::modeling::{ModelLibrary, StrategyModel};

/// How the workforce requirement of the `k` recommended strategies is
/// aggregated into a single per-request requirement (paper §3.2, step 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AggregationMode {
    /// The requester intends to run **all** `k` strategies: the requirement
    /// is the sum of the `k` smallest cells of the request's row.
    #[default]
    Sum,
    /// The requester will run **one** of the `k` strategies: the requirement
    /// is the `k`-th smallest cell of the request's row.
    Max,
}

/// How a strategy's basic eligibility for a request is decided before any
/// workforce consideration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EligibilityRule {
    /// A strategy is eligible only when its estimated parameters satisfy the
    /// request's thresholds (`s.quality ≥ d.quality`, `s.cost ≤ d.cost`,
    /// `s.latency ≤ d.latency`) — the rule used throughout the paper's
    /// examples and synthetic experiments.
    #[default]
    StrategyParameters,
    /// Every strategy is eligible; feasibility is decided purely by whether
    /// the model inversion yields a finite workforce requirement. Useful when
    /// strategy parameter estimates are unavailable and only models exist.
    ModelOnly,
}

/// The workforce requirement of one deployment request: which `k` strategies
/// are recommended and how much of the worker pool they need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRequirement {
    /// Index of the request in the input batch.
    pub request_index: usize,
    /// Indices of the `k` recommended strategies, cheapest first.
    pub strategy_indices: Vec<usize>,
    /// Aggregated workforce requirement in `[0, 1]` (fraction of the suitable
    /// worker pool).
    pub workforce: f64,
}

impl RequestRequirement {
    /// Renumbers the recommended slots through a catalog compaction's
    /// [`SlotRemap`]. Returns `None` when any recommended slot was reclaimed
    /// — the requirement predates a retirement and must be re-aggregated.
    #[must_use]
    pub fn remap(&self, remap: &SlotRemap) -> Option<Self> {
        let strategy_indices = remap.remap_slots(&self.strategy_indices)?;
        Some(Self {
            request_index: self.request_index,
            strategy_indices,
            workforce: self.workforce,
        })
    }
}

/// The `m × |S|` workforce-requirement matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkforceMatrix {
    rows: usize,
    cols: usize,
    /// Row-major cells; `f64::INFINITY` marks an infeasible (request,
    /// strategy) pair. Under [`Precision::F32`] each finite cell is an
    /// exactly-widened `f32` kernel result.
    cells: Vec<f64>,
    /// Which fill implementation produced (and maintains) the cells.
    precision: Precision,
}

impl WorkforceMatrix {
    /// Computes the matrix for a batch of requests against a strategy set,
    /// consulting `models` for the per-strategy linear models and using the
    /// default [`EligibilityRule::StrategyParameters`].
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a strategy has no fitted
    /// model in `models`.
    pub fn compute(
        requests: &[DeploymentRequest],
        strategies: &[Strategy],
        models: &ModelLibrary,
    ) -> Result<Self, StratRecError> {
        Self::compute_with_rule(requests, strategies, models, EligibilityRule::default())
    }

    /// Computes the matrix with an explicit eligibility rule.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a strategy has no fitted
    /// model in `models`.
    pub fn compute_with_rule(
        requests: &[DeploymentRequest],
        strategies: &[Strategy],
        models: &ModelLibrary,
        rule: EligibilityRule,
    ) -> Result<Self, StratRecError> {
        let mut cells = Vec::with_capacity(requests.len() * strategies.len());
        for request in requests {
            for strategy in strategies {
                let model = models.require(strategy.id)?;
                let eligible = match rule {
                    EligibilityRule::StrategyParameters => strategy.satisfies(request),
                    EligibilityRule::ModelOnly => true,
                };
                let cell = if eligible {
                    model.required_workforce(&request.params)
                } else {
                    f64::INFINITY
                };
                cells.push(cell);
            }
        }
        Ok(Self {
            rows: requests.len(),
            cols: strategies.len(),
            cells,
            precision: Precision::F64,
        })
    }

    /// Computes the matrix through a [`StrategyCatalog`], answering
    /// per-request eligibility with an R-tree box query instead of scanning
    /// all `|S|` strategies. The resulting matrix is **identical** to
    /// [`Self::compute_with_rule`] on the catalog's strategies: the index
    /// only prunes which cells need the model inversion; ineligible cells
    /// stay at `f64::INFINITY` exactly as in the scan path.
    ///
    /// Columns are catalog **slots** (live and retired), so column numbers
    /// stay stable across churn; retired slots are infeasible
    /// (`f64::INFINITY`) in every row and never consult the model library.
    ///
    /// With [`EligibilityRule::ModelOnly`] every **live** cell is feasible
    /// by definition, so the index offers nothing and all live cells are
    /// computed.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when any **live** catalog
    /// strategy has no fitted model in `models` (the scan path's contract,
    /// preserved even for strategies that are never eligible). As in the
    /// scan path, an empty batch never consults the model library and always
    /// succeeds.
    pub fn compute_with_catalog(
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        rule: EligibilityRule,
    ) -> Result<Self, StratRecError> {
        let mut model_buf = Vec::new();
        Self::compute_with_catalog_scratch(requests, catalog, models, rule, &mut model_buf)
    }

    /// [`Self::compute_with_catalog`] reusing a caller-provided model buffer
    /// ([`collect_live_models_into`]), so repeated computations allocate no
    /// model-collection memory in steady state.
    ///
    /// # Errors
    ///
    /// As [`Self::compute_with_catalog`].
    pub fn compute_with_catalog_scratch(
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        rule: EligibilityRule,
        model_buf: &mut Vec<Option<StrategyModel>>,
    ) -> Result<Self, StratRecError> {
        Self::compute_with_catalog_scratch_precision(
            requests,
            catalog,
            models,
            rule,
            Precision::F64,
            model_buf,
        )
    }

    /// [`Self::compute_with_catalog`] with an explicit [`Precision`]:
    /// `F64` runs the scalar reference path (bit-identical to
    /// [`Self::compute_with_catalog`]), `F32` runs the columnar
    /// [`kernel`] over the catalog's SoA block. Either way the resulting
    /// matrix equals the chosen path's fill over the same live set —
    /// eligibility masks are identical between precisions, finite cells
    /// differ within the kernel's documented ULP bound.
    ///
    /// # Errors
    ///
    /// As [`Self::compute_with_catalog`].
    pub fn compute_with_catalog_precision(
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        rule: EligibilityRule,
        precision: Precision,
    ) -> Result<Self, StratRecError> {
        let mut model_buf = Vec::new();
        Self::compute_with_catalog_scratch_precision(
            requests,
            catalog,
            models,
            rule,
            precision,
            &mut model_buf,
        )
    }

    /// [`Self::compute_with_catalog_precision`] reusing a caller-provided
    /// model buffer.
    ///
    /// # Errors
    ///
    /// As [`Self::compute_with_catalog`].
    pub fn compute_with_catalog_scratch_precision(
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        rule: EligibilityRule,
        precision: Precision,
        model_buf: &mut Vec<Option<StrategyModel>>,
    ) -> Result<Self, StratRecError> {
        let mut matrix = Self {
            rows: 0,
            cols: 0,
            cells: Vec::new(),
            precision,
        };
        matrix.refill_with_catalog(requests, catalog, models, rule, precision, model_buf)?;
        Ok(matrix)
    }

    /// Recomputes `self` from scratch — a cold fill with the same semantics
    /// as [`Self::compute_with_catalog_scratch_precision`], cell for cell —
    /// while **reusing `self`'s cell allocation**. Rebuilding a `m × 10 000`
    /// matrix allocates tens of megabytes; refilling in place skips the
    /// allocator round-trip and its page faults, which is the steady-state
    /// shape of epoch loops that rebuild their matrix on a rebuild trigger.
    ///
    /// The previous contents, shape, and precision of `self` are discarded.
    ///
    /// # Errors
    ///
    /// As [`Self::compute_with_catalog`]; `self` is left empty (0 × cols)
    /// when a model is missing.
    pub fn refill_with_catalog(
        &mut self,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        rule: EligibilityRule,
        precision: Precision,
        model_buf: &mut Vec<Option<StrategyModel>>,
    ) -> Result<(), StratRecError> {
        let cols = catalog.strategies().len();
        self.rows = 0;
        self.cols = cols;
        self.precision = precision;
        self.cells.clear();
        if requests.is_empty() {
            return Ok(());
        }
        collect_live_models_into(catalog, models, model_buf)?;
        let len = requests.len() * cols;
        match precision {
            Precision::F64 => {
                // The scalar path writes only eligible cells, so its rows
                // must start at `∞`.
                self.cells.resize(len, f64::INFINITY);
                for (request, row) in requests.iter().zip(self.cells.chunks_mut(cols.max(1))) {
                    fill_catalog_row(request, catalog, model_buf, rule, row);
                }
            }
            Precision::F32 => {
                // The kernel writes every cell exactly once, so the buffer
                // needs no `∞` pre-fill. Fresh matrices allocate through
                // `vec![0.0; _]` — an `alloc_zeroed`, i.e. pre-zeroed pages
                // with no write pass — while reused buffers just take a
                // cheap zero-memset over warm pages before being overwritten.
                if self.cells.capacity() < len {
                    self.cells = vec![0.0; len];
                } else {
                    self.cells.resize(len, 0.0);
                }
                let coeffs = kernel::KernelCoeffs::collect(model_buf);
                kernel::fill_catalog_rows_f32(requests, catalog, &coeffs, rule, &mut self.cells);
            }
        }
        self.rows = requests.len();
        Ok(())
    }

    /// Builds a matrix directly from row-major cells (used in tests and by
    /// callers that estimate requirements through other means). The matrix
    /// is marked [`Precision::F64`].
    ///
    /// # Panics
    ///
    /// Panics when `cells.len() != rows * cols` (with full row/column
    /// context, matching the style of [`Self::get`] / [`Self::row`]).
    #[must_use]
    pub fn from_cells(rows: usize, cols: usize, cells: Vec<f64>) -> Self {
        Self::from_cells_with_precision(rows, cols, cells, Precision::F64)
    }

    /// [`Self::from_cells`] tagging the matrix with the precision whose fill
    /// produced `cells` — the constructor behind
    /// [`crate::engine::BatchEngine`]'s sharded kernel fills.
    pub(crate) fn from_cells_with_precision(
        rows: usize,
        cols: usize,
        cells: Vec<f64>,
        precision: Precision,
    ) -> Self {
        assert!(
            cells.len() == rows * cols,
            "cell count {} does not fill a {rows}x{cols} workforce matrix ({} cells needed)",
            cells.len(),
            rows * cols
        );
        Self {
            rows,
            cols,
            cells,
            precision,
        }
    }

    /// Number of requests (rows).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of strategies (columns).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Which fill implementation produced (and maintains) the cells.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The workforce requirement of deploying request `i` with strategy `j`.
    ///
    /// # Panics
    ///
    /// Panics when `request >= self.rows()` or `strategy >= self.cols()`
    /// (with full row/column context in debug builds).
    #[must_use]
    pub fn get(&self, request: usize, strategy: usize) -> f64 {
        debug_assert!(
            request < self.rows,
            "request row {request} out of bounds for a {}x{} workforce matrix",
            self.rows,
            self.cols
        );
        debug_assert!(
            strategy < self.cols,
            "strategy column {strategy} out of bounds for a {}x{} workforce matrix",
            self.rows,
            self.cols
        );
        self.cells[request * self.cols + strategy]
    }

    /// The full row of request `i`.
    ///
    /// # Panics
    ///
    /// Panics when `request >= self.rows()` (with full row context in debug
    /// builds).
    #[must_use]
    pub fn row(&self, request: usize) -> &[f64] {
        debug_assert!(
            request < self.rows,
            "request row {request} out of bounds for a {}x{} workforce matrix",
            self.rows,
            self.cols
        );
        &self.cells[request * self.cols..(request + 1) * self.cols]
    }

    /// Mutable view of the row-major cell buffer — for
    /// [`crate::engine::BatchEngine`]'s row-sharded fills.
    pub(crate) fn cells_mut(&mut self) -> &mut [f64] {
        &mut self.cells
    }

    /// Takes the cell buffer out of the matrix (leaving it empty `0 × 0`),
    /// so [`crate::engine::BatchEngine`]'s refill can reuse the allocation
    /// for its sharded workers and hand it back through
    /// [`Self::from_cells_with_precision`].
    pub(crate) fn take_cells(&mut self) -> Vec<f64> {
        self.rows = 0;
        self.cols = 0;
        std::mem::take(&mut self.cells)
    }

    /// Renumbers the matrix columns through a catalog compaction's
    /// [`SlotRemap`]: column `old` moves to `remap.forward[old]` and the
    /// columns of reclaimed slots — retired, therefore `f64::INFINITY` in
    /// every row — are shed. A long-lived matrix thus follows its catalog
    /// through [`StrategyCatalog::compact`] instead of being recomputed:
    /// the result is **identical** to [`Self::compute_with_catalog`] over
    /// the compacted catalog (same requests, models and rule), which the
    /// engine regression tests pin.
    ///
    /// # Panics
    ///
    /// Panics when the matrix width does not match the remap's
    /// pre-compaction slot count.
    #[must_use]
    pub fn remap_columns(&self, remap: &SlotRemap) -> Self {
        assert_eq!(
            self.cols,
            remap.len(),
            "matrix width must equal the remap's pre-compaction slot count"
        );
        let cols = remap.live_len;
        let mut cells = vec![f64::INFINITY; self.rows * cols];
        for row in 0..self.rows {
            let src = &self.cells[row * self.cols..(row + 1) * self.cols];
            let dst = &mut cells[row * cols..(row + 1) * cols];
            for (old, new) in remap.mapped_pairs() {
                dst[new] = src[old];
            }
        }
        Self {
            rows: self.rows,
            cols,
            cells,
            precision: self.precision,
        }
    }

    /// Applies a [`CatalogDelta`] drained from the catalog this matrix was
    /// computed over, bringing it to the state a fresh
    /// [`Self::compute_with_catalog`] over the **updated** catalog would
    /// produce — bit for bit (pinned by the `tests/catalog_churn.rs`
    /// replay) — while touching only the changed columns:
    ///
    /// 1. the window's composed compaction remap (if any) renumbers the
    ///    columns ([`Self::remap_columns`], shedding reclaimed slots);
    /// 2. one column is appended per inserted slot and **only those**
    ///    columns are computed (eligibility by the exact per-strategy
    ///    predicate, the model inversion per eligible cell); slots retired
    ///    again within the window append as all-`∞`;
    /// 3. `f64::INFINITY` is written into the retired columns in place.
    ///
    /// The missing-model contract is enforced for the **inserted** live
    /// slots (pre-existing columns were validated when first computed), and
    /// the check runs before any mutation, so a failed apply leaves the
    /// matrix unchanged. An empty request batch never consults the model
    /// library, exactly like the fresh-compute path.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::StaleCatalog`] when `delta.to_epoch` is not
    /// the catalog's current epoch (the delta was not drained against this
    /// catalog state), and [`StratRecError::MissingModel`] when an inserted
    /// live slot has no fitted model.
    ///
    /// # Panics
    ///
    /// Panics when the matrix shape does not match `requests` and the
    /// delta's source slot count.
    pub fn apply_delta(
        &mut self,
        delta: &CatalogDelta,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        rule: EligibilityRule,
    ) -> Result<(), StratRecError> {
        let mut model_buf = Vec::new();
        self.apply_delta_with_scratch(delta, requests, catalog, models, rule, &mut model_buf)
    }

    /// [`Self::apply_delta`] reusing a caller-provided model buffer
    /// ([`collect_slot_models_into`] over the inserted slots), so
    /// steady-state epochs do zero model-collection allocation.
    ///
    /// # Errors
    ///
    /// As [`Self::apply_delta`].
    pub fn apply_delta_with_scratch(
        &mut self,
        delta: &CatalogDelta,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        rule: EligibilityRule,
        model_buf: &mut Vec<Option<StrategyModel>>,
    ) -> Result<(), StratRecError> {
        self.apply_delta_structure(delta, requests, catalog, models, model_buf)?;
        let cols = self.cols;
        // The inserted-cell fill follows the matrix's own precision, so a
        // delta-maintained matrix stays identical to a fresh fill of the
        // same precision over the updated catalog.
        match self.precision {
            Precision::F64 => {
                for (request, row) in requests.iter().zip(self.cells.chunks_mut(cols.max(1))) {
                    fill_inserted_cells(request, catalog, &delta.inserted, model_buf, rule, row);
                }
            }
            Precision::F32 => {
                for (request, row) in requests.iter().zip(self.cells.chunks_mut(cols.max(1))) {
                    kernel::fill_inserted_cells_f32(
                        request,
                        catalog,
                        &delta.inserted,
                        model_buf,
                        rule,
                        row,
                    );
                }
            }
        }
        Ok(())
    }

    /// Everything of [`Self::apply_delta`] except the inserted-cell model
    /// fill: validation, model collection (into `model_buf`, parallel to
    /// `delta.inserted`), the remap, the widening and the retired-column
    /// `∞` writes. [`crate::engine::BatchEngine::apply_matrix_delta`] runs
    /// this sequentially and shards the remaining fill across threads.
    pub(crate) fn apply_delta_structure(
        &mut self,
        delta: &CatalogDelta,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        model_buf: &mut Vec<Option<StrategyModel>>,
    ) -> Result<(), StratRecError> {
        if delta.to_epoch != catalog.epoch() {
            return Err(StratRecError::StaleCatalog {
                expected: delta.to_epoch,
                found: catalog.epoch(),
            });
        }
        assert_eq!(
            self.rows,
            requests.len(),
            "request count must equal the matrix row count"
        );
        assert_eq!(
            self.cols, delta.source_cols,
            "matrix width must equal the delta's source slot count"
        );
        // Enforce the missing-model contract before any mutation, so a
        // failed apply leaves the matrix untouched. The fresh-compute path
        // never consults the library for an empty batch; neither does this.
        model_buf.clear();
        if !requests.is_empty() {
            collect_slot_models_into(catalog, models, &delta.inserted, model_buf)?;
        }
        if let Some(remap) = &delta.remap {
            *self = self.remap_columns(remap);
        }
        debug_assert_eq!(self.cols + delta.inserted.len(), delta.target_cols);
        self.widen(delta.target_cols);
        for row in 0..self.rows {
            let base = row * self.cols;
            for &slot in &delta.retired {
                self.cells[base + slot] = f64::INFINITY;
            }
        }
        Ok(())
    }

    /// Grows the matrix to `new_cols` columns in place (backward row
    /// shifts), initializing the appended cells to `f64::INFINITY`.
    fn widen(&mut self, new_cols: usize) {
        let old_cols = self.cols;
        debug_assert!(new_cols >= old_cols, "widen never shrinks");
        if new_cols == old_cols {
            return;
        }
        self.cells.resize(self.rows * new_cols, f64::INFINITY);
        for row in (0..self.rows).rev() {
            self.cells
                .copy_within(row * old_cols..(row + 1) * old_cols, row * new_cols);
            self.cells[row * new_cols + old_cols..(row + 1) * new_cols].fill(f64::INFINITY);
        }
        self.cols = new_cols;
    }

    /// Aggregates each row into a per-request requirement over the `k`
    /// cheapest strategies (paper §3.2 step 2, the vector `~W`).
    ///
    /// Requests with fewer than `k` feasible strategies yield `None`: no
    /// amount of workforce lets the platform recommend `k` strategies, so the
    /// request must go to ADPaR.
    ///
    /// The selection heap and index buffer are reused across all `m` rows
    /// (`topk::k_smallest_aggregates_into`); the only per-row allocation left
    /// is the `strategy_indices` vector handed to the caller, and rows with
    /// fewer than `k` feasible strategies allocate nothing at all.
    #[must_use]
    pub fn aggregate(&self, k: usize, mode: AggregationMode) -> Vec<Option<RequestRequirement>> {
        let mut scratch = TopKScratch::new();
        let mut selected: Vec<usize> = Vec::new();
        (0..self.rows)
            .map(|i| aggregate_row(self.row(i), i, k, mode, &mut scratch, &mut selected))
            .collect()
    }

    /// The sequential two-level form of [`Self::aggregate`]: each shard of
    /// `plan` computes a shard-local top-k over its column sub-range
    /// ([`topk::k_smallest_candidates_into`]) and a k-way merge
    /// ([`topk::merge_k_smallest_into`]) reassembles the global selection in
    /// ascending shard order. **Bit-identical** to the flat path for any
    /// plan: contiguous sub-ranges preserve the global index tie-break, a
    /// global top-k member is necessarily in its own shard's top-k, and the
    /// merge feeds the sum in the flat path's exact ascending order.
    ///
    /// [`crate::engine::BatchEngine::aggregate_sharded`] is the parallel
    /// arm fanning the shard-local step across scoped threads.
    ///
    /// # Panics
    ///
    /// Panics when the plan's width does not match the matrix's column
    /// count.
    #[must_use]
    pub fn aggregate_sharded(
        &self,
        k: usize,
        mode: AggregationMode,
        plan: &ShardPlan,
    ) -> Vec<Option<RequestRequirement>> {
        assert_eq!(
            plan.cols(),
            self.cols,
            "shard plan width must match the matrix's column count"
        );
        let mut scratch = TopKScratch::new();
        let mut selected: Vec<usize> = Vec::new();
        let mut lists: Vec<Vec<(f64, usize)>> = vec![Vec::new(); plan.shard_count()];
        (0..self.rows)
            .map(|i| {
                let row = self.row(i);
                for (list, range) in lists.iter_mut().zip(plan.ranges()) {
                    topk::k_smallest_candidates_into(
                        &row[range.clone()],
                        range.start,
                        k,
                        &mut scratch,
                        list,
                    );
                }
                let refs: Vec<&[(f64, usize)]> = lists.iter().map(Vec::as_slice).collect();
                merge_row_requirement(&refs, i, k, mode, &mut scratch, &mut selected)
            })
            .collect()
    }
}

/// Aggregates one matrix row (the shared primitive of
/// [`WorkforceMatrix::aggregate`] and [`AggregationCache::repair`], so the
/// full and the repaired paths are the same code — bit-identical by
/// construction).
fn aggregate_row(
    row: &[f64],
    request_index: usize,
    k: usize,
    mode: AggregationMode,
    scratch: &mut TopKScratch,
    selected: &mut Vec<usize>,
) -> Option<RequestRequirement> {
    let aggregates = topk::k_smallest_aggregates_into(row, k, scratch, selected)?;
    let workforce = match mode {
        AggregationMode::Sum => aggregates.sum,
        AggregationMode::Max => aggregates.kth,
    };
    Some(RequestRequirement {
        request_index,
        strategy_indices: selected.clone(),
        workforce,
    })
}

/// The merge step of the two-level aggregation: reassembles one row's global
/// [`RequestRequirement`] from its shard-local candidate lists (the shared
/// primitive of [`WorkforceMatrix::aggregate_sharded`],
/// [`crate::engine::BatchEngine::aggregate_sharded`] and
/// [`ShardedAggregationCache`] — same code, bit-identical by construction).
pub(crate) fn merge_row_requirement(
    lists: &[&[(f64, usize)]],
    request_index: usize,
    k: usize,
    mode: AggregationMode,
    scratch: &mut TopKScratch,
    selected: &mut Vec<usize>,
) -> Option<RequestRequirement> {
    let aggregates = topk::merge_k_smallest_into(lists, k, scratch, selected)?;
    let workforce = match mode {
        AggregationMode::Sum => aggregates.sum,
        AggregationMode::Max => aggregates.kth,
    };
    Some(RequestRequirement {
        request_index,
        strategy_indices: selected.clone(),
        workforce,
    })
}

/// Cached per-row top-k aggregations of a delta-maintained
/// [`WorkforceMatrix`], repaired lazily under churn.
///
/// [`WorkforceMatrix::aggregate`] walks all `m · |S|` cells; under churn
/// only a few rows can actually change. After the matrix absorbed a
/// [`CatalogDelta`] ([`WorkforceMatrix::apply_delta`]), [`Self::repair`]
/// re-aggregates a row **only when the delta can have moved its top-k**:
///
/// * a retired column intersects the row's current top-k (one of its
///   recommended cells just became `∞`), or
/// * an inserted column's cell beats the row's `k`-th value (a new strategy
///   enters the top-k; ties lose — appended slots carry the largest
///   indices, and selection tie-breaks by ascending index), or
/// * the row was infeasible (fewer than `k` finite cells) and an inserted
///   column is finite for it, or
/// * a compaction reclaimed one of its recommended slots
///   ([`RequestRequirement::remap`] answers `None`).
///
/// Everything else is provably unchanged and kept verbatim (surviving
/// requirements are renumbered through the window's remap in place). The
/// repaired state equals a fresh `aggregate` over the updated matrix bit
/// for bit — same helper, same cells — pinned per churn step by the
/// `tests/catalog_churn.rs` replay. The selection heap is a single
/// [`TopKScratch`] reused across every repair.
#[derive(Debug, Clone)]
pub struct AggregationCache {
    k: usize,
    mode: AggregationMode,
    /// Slot width of the matrix the cache last synchronized with.
    cols: usize,
    primed: bool,
    requirements: Vec<Option<RequestRequirement>>,
    scratch: TopKScratch,
    selected: Vec<usize>,
}

impl AggregationCache {
    /// An unprimed cache aggregating over the `k` cheapest strategies with
    /// `mode`.
    #[must_use]
    pub fn new(k: usize, mode: AggregationMode) -> Self {
        Self {
            k,
            mode,
            cols: 0,
            primed: false,
            requirements: Vec::new(),
            scratch: TopKScratch::new(),
            selected: Vec::new(),
        }
    }

    /// The cardinality constraint the cache aggregates with.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The aggregation mode the cache aggregates with.
    #[must_use]
    pub fn mode(&self) -> AggregationMode {
        self.mode
    }

    /// Whether [`Self::prime`] has run (repairs need a baseline).
    #[must_use]
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// The cached per-request requirements — identical to
    /// `matrix.aggregate(k, mode)` over the matrix last primed/repaired
    /// against. Empty before the first [`Self::prime`].
    #[must_use]
    pub fn requirements(&self) -> &[Option<RequestRequirement>] {
        &self.requirements
    }

    /// Fully (re-)aggregates `matrix`, making it the cache's baseline.
    pub fn prime(&mut self, matrix: &WorkforceMatrix) {
        self.requirements.clear();
        self.requirements.reserve(matrix.rows());
        for i in 0..matrix.rows() {
            self.requirements.push(aggregate_row(
                matrix.row(i),
                i,
                self.k,
                self.mode,
                &mut self.scratch,
                &mut self.selected,
            ));
        }
        self.cols = matrix.cols();
        self.primed = true;
    }

    /// Repairs the cache after `matrix` absorbed `delta`
    /// ([`WorkforceMatrix::apply_delta`] with the same delta), re-aggregating
    /// only the rows the delta can have changed. Returns the number of rows
    /// re-aggregated — proportional to the churn, not to `m`, in steady
    /// state. An unprimed cache falls back to a full [`Self::prime`].
    ///
    /// # Panics
    ///
    /// Panics when the cache or the matrix do not line up with the delta
    /// (wrong row count, cache synchronized at a different width, or the
    /// matrix has not absorbed the delta yet).
    pub fn repair(&mut self, matrix: &WorkforceMatrix, delta: &CatalogDelta) -> usize {
        if !self.primed {
            self.prime(matrix);
            return matrix.rows();
        }
        assert_eq!(
            self.requirements.len(),
            matrix.rows(),
            "cache row count must equal the matrix row count"
        );
        assert_eq!(
            self.cols, delta.source_cols,
            "cache was synchronized at a different slot width than the delta's source"
        );
        assert_eq!(
            matrix.cols(),
            delta.target_cols,
            "the matrix must absorb the delta before the cache repairs"
        );
        let mut repaired = 0;
        for i in 0..matrix.rows() {
            // Step 1: follow the window's compaction remap. A reclaimed
            // recommended slot means the row genuinely lost a strategy.
            let mut lost_to_compaction = false;
            if let Some(remap) = &delta.remap {
                if let Some(requirement) = &self.requirements[i] {
                    match requirement.remap(remap) {
                        Some(renumbered) => self.requirements[i] = Some(renumbered),
                        None => lost_to_compaction = true,
                    }
                }
            }
            // Step 2: decide whether the delta can have moved this row's
            // top-k at all.
            let row = matrix.row(i);
            let dirty = lost_to_compaction
                || match &self.requirements[i] {
                    // An infeasible row can only become feasible through a
                    // new finite cell.
                    None => delta.inserted.iter().any(|&slot| row[slot].is_finite()),
                    Some(requirement) => {
                        let retired_hit = requirement
                            .strategy_indices
                            .iter()
                            .any(|slot| delta.retired.binary_search(slot).is_ok());
                        retired_hit || {
                            // The k-th (largest) selected value; every
                            // selected cell is untouched here, since no
                            // retired column intersected the selection.
                            let kth = row[*requirement
                                .strategy_indices
                                .last()
                                .expect("a Some requirement selects k >= 1 strategies")];
                            // Strict `<`: an inserted slot has a larger
                            // index than every selected one (columns
                            // append), so it loses value ties.
                            delta.inserted.iter().any(|&slot| row[slot] < kth)
                        }
                    }
                };
            if dirty {
                self.requirements[i] = aggregate_row(
                    row,
                    i,
                    self.k,
                    self.mode,
                    &mut self.scratch,
                    &mut self.selected,
                );
                repaired += 1;
            }
        }
        self.cols = matrix.cols();
        repaired
    }
}

/// The sharded counterpart of [`AggregationCache`]: per-shard caches of the
/// shard-local top-k candidate lists plus the merged per-row
/// [`RequestRequirement`]s, repaired lazily under churn.
///
/// Each shard of the [`ShardPlan`] keeps, per matrix row, its sub-range's
/// top-k `(value, global index)` candidates — exactly what
/// [`topk::k_smallest_candidates_into`] produces and
/// [`topk::merge_k_smallest_into`] consumes. After the matrix absorbed a
/// [`CatalogDelta`], [`Self::repair`] re-selects a shard's row candidates
/// **only when the churn inside that shard can have moved them**:
///
/// * a compaction reclaimed one of the shard-row's candidates (surviving
///   candidates are renumbered in place — dense renumbering keeps every
///   survivor in its shard, so the lists never migrate), or
/// * a retired column intersects the shard-row's candidate list (columns
///   the shard holds that went `∞`), or
/// * an appended column's cell beats the shard's worst candidate — appends
///   extend only the **last** shard under
///   [`ShardPlan::apply_delta`], so every other shard skips this test
///   entirely (ties lose: appended slots carry the largest indices), or
/// * the shard-row holds fewer than `k` candidates (its whole sub-range
///   has fewer than `k` finite cells) and an appended cell is finite.
///
/// A row's merged requirement is re-assembled only when one of its
/// shard-rows changed; untouched requirements are renumbered through the
/// window's remap verbatim. Steady-state upkeep is therefore proportional
/// to the churn **within each shard**, and the cached requirements equal a
/// flat `matrix.aggregate(k, mode)` bit for bit (same candidate selection,
/// same merge comparator, same summation order — pinned per churn step by
/// the `tests/catalog_churn.rs` replay).
#[derive(Debug, Clone)]
pub struct ShardedAggregationCache {
    k: usize,
    mode: AggregationMode,
    plan: ShardPlan,
    /// Slot width the cache last synchronized with (= `plan.cols()`).
    cols: usize,
    primed: bool,
    /// `candidates[shard][row]`: the shard-local top-k, ascending by
    /// `(value, global index)`.
    candidates: Vec<Vec<Vec<(f64, usize)>>>,
    /// The merged global requirements, parallel to the matrix rows.
    requirements: Vec<Option<RequestRequirement>>,
    scratch: TopKScratch,
    selected: Vec<usize>,
    /// Per-row dirty flags reused across repairs.
    dirty: Vec<bool>,
}

impl ShardedAggregationCache {
    /// An unprimed cache aggregating over the `k` cheapest strategies with
    /// `mode`, sharded by `plan`.
    #[must_use]
    pub fn new(k: usize, mode: AggregationMode, plan: ShardPlan) -> Self {
        let shards = plan.shard_count();
        Self {
            k,
            mode,
            cols: plan.cols(),
            plan,
            primed: false,
            candidates: vec![Vec::new(); shards],
            requirements: Vec::new(),
            scratch: TopKScratch::new(),
            selected: Vec::new(),
            dirty: Vec::new(),
        }
    }

    /// The cardinality constraint the cache aggregates with.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The aggregation mode the cache aggregates with.
    #[must_use]
    pub fn mode(&self) -> AggregationMode {
        self.mode
    }

    /// The shard plan the cache maintains (bounds follow the catalog's
    /// churn through [`Self::repair`]).
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.plan.shard_count()
    }

    /// Whether [`Self::prime`] has run (repairs need a baseline).
    #[must_use]
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// The cached merged requirements — identical to
    /// `matrix.aggregate(k, mode)` over the matrix last primed/repaired
    /// against. Empty before the first [`Self::prime`].
    #[must_use]
    pub fn requirements(&self) -> &[Option<RequestRequirement>] {
        &self.requirements
    }

    /// Fully (re-)selects every shard-row's candidates and re-merges every
    /// requirement, making `matrix` the cache's baseline.
    ///
    /// # Panics
    ///
    /// Panics when the plan's width does not match the matrix's column
    /// count.
    pub fn prime(&mut self, matrix: &WorkforceMatrix) {
        assert_eq!(
            self.plan.cols(),
            matrix.cols(),
            "shard plan width must match the matrix's column count"
        );
        let rows = matrix.rows();
        for (shard, rows_candidates) in self.candidates.iter_mut().enumerate() {
            rows_candidates.clear();
            rows_candidates.resize(rows, Vec::new());
            let range = self.plan.range(shard);
            for (row_idx, list) in rows_candidates.iter_mut().enumerate() {
                topk::k_smallest_candidates_into(
                    &matrix.row(row_idx)[range.clone()],
                    range.start,
                    self.k,
                    &mut self.scratch,
                    list,
                );
            }
        }
        self.requirements.clear();
        self.requirements.reserve(rows);
        for row_idx in 0..rows {
            let merged = self.merge_row(row_idx);
            self.requirements.push(merged);
        }
        self.cols = matrix.cols();
        self.primed = true;
    }

    /// Re-merges one row's global requirement from its current shard-local
    /// candidate lists.
    fn merge_row(&mut self, row: usize) -> Option<RequestRequirement> {
        let refs: Vec<&[(f64, usize)]> = self
            .candidates
            .iter()
            .map(|rows_candidates| rows_candidates[row].as_slice())
            .collect();
        let aggregates =
            topk::merge_k_smallest_into(&refs, self.k, &mut self.scratch, &mut self.selected)?;
        let workforce = match self.mode {
            AggregationMode::Sum => aggregates.sum,
            AggregationMode::Max => aggregates.kth,
        };
        Some(RequestRequirement {
            request_index: row,
            strategy_indices: self.selected.clone(),
            workforce,
        })
    }

    /// Repairs the cache after `matrix` absorbed `delta`
    /// ([`WorkforceMatrix::apply_delta`] with the same delta): follows the
    /// window's remap, re-selects only the churn-affected shard-rows and
    /// re-merges only the rows owning one. Returns the number of rows
    /// re-merged. An unprimed cache falls back to a full [`Self::prime`].
    ///
    /// # Panics
    ///
    /// Panics when the cache or the matrix do not line up with the delta
    /// (wrong row count, cache synchronized at a different width, or the
    /// matrix has not absorbed the delta yet).
    pub fn repair(&mut self, matrix: &WorkforceMatrix, delta: &CatalogDelta) -> usize {
        if !self.primed {
            self.prime(matrix);
            return matrix.rows();
        }
        let rows = matrix.rows();
        assert_eq!(
            self.requirements.len(),
            rows,
            "cache row count must equal the matrix row count"
        );
        assert_eq!(
            self.cols, delta.source_cols,
            "cache was synchronized at a different slot width than the delta's source"
        );
        assert_eq!(
            matrix.cols(),
            delta.target_cols,
            "the matrix must absorb the delta before the cache repairs"
        );
        self.dirty.clear();
        self.dirty.resize(rows, false);

        // Step 1: follow the window's compaction remap — candidates and
        // requirements renumber in place; a reclaimed candidate dirties its
        // shard-row (the shard genuinely lost a selected column and may
        // have a replacement waiting in its sub-range).
        if let Some(remap) = &delta.remap {
            for rows_candidates in &mut self.candidates {
                for (row_idx, list) in rows_candidates.iter_mut().enumerate() {
                    let mut lost = false;
                    for (_, index) in list.iter_mut() {
                        match remap.remap(*index) {
                            Some(new) => *index = new,
                            None => lost = true,
                        }
                    }
                    if lost {
                        list.clear();
                        self.dirty[row_idx] = true;
                    }
                }
            }
            for requirement in &mut self.requirements {
                if let Some(req) = requirement {
                    // A reclaimed selected slot re-merges below anyway (its
                    // shard-row went dirty); drop the stale numbering.
                    *requirement = req.remap(remap);
                }
            }
        }
        self.plan.apply_delta(delta);
        self.cols = delta.target_cols;

        // Step 2: retirements dirty exactly the shard-rows whose candidate
        // lists hold a retired column — churn outside a shard's candidates
        // can never move its top-k (a retired non-candidate was no better
        // than the shard's worst candidate).
        if !delta.retired.is_empty() {
            for rows_candidates in &mut self.candidates {
                for (row_idx, list) in rows_candidates.iter_mut().enumerate() {
                    if list
                        .iter()
                        .any(|(_, index)| delta.retired.binary_search(index).is_ok())
                    {
                        list.clear();
                        self.dirty[row_idx] = true;
                    }
                }
            }
        }

        // Step 3: appends extend only the last shard; a shard-row there
        // re-selects when an appended cell beats its worst candidate
        // (strict `<`: appended slots carry the largest indices and lose
        // ties) or when the shard had a shortfall and gains a finite cell.
        if !delta.inserted.is_empty() {
            let last = self.plan.shard_count() - 1;
            let rows_candidates = &mut self.candidates[last];
            for (row_idx, list) in rows_candidates.iter_mut().enumerate() {
                let row = matrix.row(row_idx);
                let moved = if list.len() < self.k {
                    delta.inserted.iter().any(|&slot| row[slot].is_finite())
                } else {
                    let worst = list.last().expect("len >= k >= 1").0;
                    delta.inserted.iter().any(|&slot| row[slot] < worst)
                };
                if moved {
                    list.clear();
                    self.dirty[row_idx] = true;
                }
            }
        }

        // Re-select the dirtied shard-rows (cleared lists) over the new
        // bounds, then re-merge exactly the rows owning one.
        let mut repaired = 0;
        for row_idx in 0..rows {
            if !self.dirty[row_idx] {
                continue;
            }
            let row = matrix.row(row_idx);
            for (shard, rows_candidates) in self.candidates.iter_mut().enumerate() {
                let list = &mut rows_candidates[row_idx];
                if !list.is_empty() {
                    continue;
                }
                let range = self.plan.range(shard);
                topk::k_smallest_candidates_into(
                    &row[range.clone()],
                    range.start,
                    self.k,
                    &mut self.scratch,
                    list,
                );
            }
            self.requirements[row_idx] = self.merge_row(row_idx);
            repaired += 1;
        }
        repaired
    }
}

/// Hoists the per-cell model lookups of the scan path into one id-indexed
/// pass over a caller-provided buffer (cleared first), so the per-batch /
/// per-epoch paths — [`crate::engine::BatchEngine`] and the delta fill — do
/// zero model-collection allocation in steady state. This also enforces the
/// missing-model contract for every **live** slot. Retired slots keep a
/// `None` placeholder: their model may have been dropped from the library
/// along with the strategy. The buffer is parallel to the catalog slots.
pub(crate) fn collect_live_models_into(
    catalog: &StrategyCatalog,
    models: &ModelLibrary,
    out: &mut Vec<Option<StrategyModel>>,
) -> Result<(), StratRecError> {
    out.clear();
    out.reserve(catalog.slot_count());
    for (slot, strategy) in catalog.strategies().iter().enumerate() {
        out.push(if catalog.is_live(slot) {
            Some(*models.require(strategy.id)?)
        } else {
            None
        });
    }
    Ok(())
}

/// The slot-subset variant of [`collect_live_models_into`]: collects the
/// models of exactly `slots` (the buffer comes back parallel to `slots`,
/// `None` for retired ones), enforcing the missing-model contract for the
/// live ones. The delta fill uses this so per-epoch model collection is
/// `O(churn)` instead of `O(|S|)`.
pub(crate) fn collect_slot_models_into(
    catalog: &StrategyCatalog,
    models: &ModelLibrary,
    slots: &[usize],
    out: &mut Vec<Option<StrategyModel>>,
) -> Result<(), StratRecError> {
    out.clear();
    out.reserve(slots.len());
    for &slot in slots {
        out.push(if catalog.is_live(slot) {
            Some(*models.require(catalog.strategy(slot).id)?)
        } else {
            None
        });
    }
    Ok(())
}

/// Fills one workforce-matrix row (pre-initialized to `f64::INFINITY`) for
/// `request`: the unit of work sharded across threads by
/// [`crate::engine::BatchEngine`] and run in a plain loop by
/// [`WorkforceMatrix::compute_with_catalog`]. `strategy_models` comes from
/// [`collect_live_models_into`] and is parallel to the catalog slots.
pub(crate) fn fill_catalog_row(
    request: &DeploymentRequest,
    catalog: &StrategyCatalog,
    strategy_models: &[Option<StrategyModel>],
    rule: EligibilityRule,
    row: &mut [f64],
) {
    match rule {
        EligibilityRule::StrategyParameters => {
            for j in catalog.eligible_for(&request.params) {
                let model = strategy_models[j].expect("eligible slots are live");
                row[j] = model.required_workforce(&request.params);
            }
        }
        EligibilityRule::ModelOnly => {
            for (cell, model) in row.iter_mut().zip(strategy_models) {
                if let Some(model) = model {
                    *cell = model.required_workforce(&request.params);
                }
            }
        }
    }
}

/// Computes the cells of the freshly appended `inserted` columns in one
/// (full-width, post-widening) matrix row: the unit of work sharded across
/// threads by [`crate::engine::BatchEngine::apply_matrix_delta`] and run in
/// a plain loop by [`WorkforceMatrix::apply_delta`]. `inserted_models` comes
/// from [`collect_slot_models_into`] and is parallel to `inserted`; `None`
/// entries (slots retired again within the window) leave their cell at
/// `f64::INFINITY`. Eligibility uses the same exact epsilon-tolerant
/// predicate as the R-tree query path, so the filled cells are identical to
/// a fresh [`fill_catalog_row`] over the updated catalog.
pub(crate) fn fill_inserted_cells(
    request: &DeploymentRequest,
    catalog: &StrategyCatalog,
    inserted: &[usize],
    inserted_models: &[Option<StrategyModel>],
    rule: EligibilityRule,
    row: &mut [f64],
) {
    for (&slot, model) in inserted.iter().zip(inserted_models) {
        let Some(model) = model else {
            continue; // retired within the window: the column stays infinite
        };
        let eligible = match rule {
            EligibilityRule::StrategyParameters => {
                catalog.strategy(slot).params.satisfies(&request.params)
            }
            EligibilityRule::ModelOnly => true,
        };
        if eligible {
            row[slot] = model.required_workforce(&request.params);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::availability::WorkerAvailability;
    use crate::model::{DeploymentParameters, TaskType};
    use crate::modeling::StrategyModel;

    fn request(id: u64, q: f64, c: f64, l: f64) -> DeploymentRequest {
        DeploymentRequest::new(
            id,
            TaskType::SentenceTranslation,
            DeploymentParameters::new(q, c, l).unwrap(),
        )
    }

    fn example_setup() -> (Vec<DeploymentRequest>, Vec<Strategy>, ModelLibrary) {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let models = crate::examples_data::running_example_models();
        (requests, strategies, models)
    }

    #[test]
    fn matrix_shape_and_cells() {
        let (requests, strategies, models) = example_setup();
        let matrix = WorkforceMatrix::compute(&requests, &strategies, &models).unwrap();
        assert_eq!(matrix.rows(), 3);
        assert_eq!(matrix.cols(), 4);
        assert_eq!(matrix.row(0).len(), 4);
        // d1 and d2 have no eligible strategies: whole rows are infinite.
        assert!(matrix.row(0).iter().all(|w| w.is_infinite()));
        assert!(matrix.row(1).iter().all(|w| w.is_infinite()));
        // d3 can use s2, s3, s4 with finite workforce; s1 is ineligible.
        assert!(matrix.get(2, 0).is_infinite());
        for j in 1..4 {
            assert!(matrix.get(2, j).is_finite());
            assert!(matrix.get(2, j) <= 1.0);
        }
    }

    #[test]
    fn catalog_path_matches_scan_path_on_running_example() {
        let (requests, strategies, models) = example_setup();
        let catalog = crate::catalog::StrategyCatalog::from_slice(&strategies);
        for rule in [
            EligibilityRule::StrategyParameters,
            EligibilityRule::ModelOnly,
        ] {
            let scan =
                WorkforceMatrix::compute_with_rule(&requests, &strategies, &models, rule).unwrap();
            let indexed =
                WorkforceMatrix::compute_with_catalog(&requests, &catalog, &models, rule).unwrap();
            assert_eq!(scan, indexed, "{rule:?}");
        }
    }

    #[test]
    fn catalog_path_empty_batch_matches_scan_even_without_models() {
        // The scan path never consults the model library when the batch is
        // empty; the catalog path must not either.
        let strategies = crate::examples_data::running_example_strategies();
        let catalog = crate::catalog::StrategyCatalog::from_slice(&strategies);
        let empty_models = ModelLibrary::new();
        let scan = WorkforceMatrix::compute(&[], &strategies, &empty_models).unwrap();
        let indexed = WorkforceMatrix::compute_with_catalog(
            &[],
            &catalog,
            &empty_models,
            EligibilityRule::default(),
        )
        .unwrap();
        assert_eq!(scan, indexed);
        assert_eq!(indexed.rows(), 0);
        assert_eq!(indexed.cols(), strategies.len());
        // With a non-empty batch the missing-model contract still applies.
        let requests = crate::examples_data::running_example_requests();
        assert!(matches!(
            WorkforceMatrix::compute_with_catalog(
                &requests,
                &catalog,
                &empty_models,
                EligibilityRule::default(),
            ),
            Err(StratRecError::MissingModel { .. })
        ));
    }

    #[test]
    fn remapped_columns_match_a_fresh_compute_over_the_compacted_catalog() {
        let (requests, strategies, _) = example_setup();
        for rule in [
            EligibilityRule::StrategyParameters,
            EligibilityRule::ModelOnly,
        ] {
            let mut catalog = crate::catalog::StrategyCatalog::from_slice(&strategies);
            catalog.insert(Strategy::from_params(
                9,
                DeploymentParameters::clamped(0.8, 0.3, 0.3),
            ));
            assert!(catalog.retire(0));
            assert!(catalog.retire(2));
            // The pre-compaction matrix carries the dead columns...
            let models =
                ModelLibrary::uniform_for(catalog.strategies(), StrategyModel::uniform(1.0, 0.0));
            let wide =
                WorkforceMatrix::compute_with_catalog(&requests, &catalog, &models, rule).unwrap();
            assert_eq!(wide.cols(), 5);

            // ...and sheds exactly them through the remap, landing on the
            // same cells a recompute over the compacted catalog produces.
            let remap = catalog.compact();
            let narrow = wide.remap_columns(&remap);
            assert_eq!(narrow.cols(), catalog.len());
            assert_eq!(narrow.rows(), wide.rows());
            let recomputed =
                WorkforceMatrix::compute_with_catalog(&requests, &catalog, &models, rule).unwrap();
            assert_eq!(narrow, recomputed, "{rule:?}");
        }
    }

    #[test]
    #[should_panic(expected = "pre-compaction slot count")]
    fn remap_columns_validates_the_width() {
        let mut catalog = crate::catalog::StrategyCatalog::new(vec![Strategy::from_params(
            0,
            DeploymentParameters::clamped(0.8, 0.2, 0.2),
        )]);
        let remap = catalog.compact();
        let _ = WorkforceMatrix::from_cells(1, 3, vec![0.0; 3]).remap_columns(&remap);
    }

    #[test]
    fn request_requirements_remap_through_a_compaction() {
        let mut catalog = crate::catalog::StrategyCatalog::new(vec![
            Strategy::from_params(0, DeploymentParameters::clamped(0.8, 0.2, 0.2)),
            Strategy::from_params(1, DeploymentParameters::clamped(0.7, 0.3, 0.3)),
            Strategy::from_params(2, DeploymentParameters::clamped(0.6, 0.4, 0.4)),
        ]);
        assert!(catalog.retire(1));
        let remap = catalog.compact();
        let requirement = RequestRequirement {
            request_index: 3,
            strategy_indices: vec![0, 2],
            workforce: 0.4,
        };
        let remapped = requirement.remap(&remap).unwrap();
        assert_eq!(remapped.strategy_indices, vec![0, 1]);
        assert_eq!(remapped.request_index, 3);
        assert!((remapped.workforce - 0.4).abs() < 1e-12);
        // A requirement recommending the reclaimed slot is stale.
        let stale = RequestRequirement {
            strategy_indices: vec![0, 1],
            ..requirement
        };
        assert!(stale.remap(&remap).is_none());
    }

    #[test]
    fn model_only_rule_ignores_strategy_parameters() {
        let (requests, strategies, models) = example_setup();
        let matrix = WorkforceMatrix::compute_with_rule(
            &requests,
            &strategies,
            &models,
            EligibilityRule::ModelOnly,
        )
        .unwrap();
        // With the uniform synthetic model every cell is finite.
        for i in 0..matrix.rows() {
            for j in 0..matrix.cols() {
                assert!(matrix.get(i, j).is_finite());
            }
        }
    }

    #[test]
    fn missing_model_is_an_error() {
        let (requests, strategies, _) = example_setup();
        let empty = ModelLibrary::new();
        assert!(matches!(
            WorkforceMatrix::compute(&requests, &strategies, &empty),
            Err(StratRecError::MissingModel { .. })
        ));
    }

    #[test]
    fn sum_and_max_aggregation_differ_as_expected() {
        // One request, four strategies with known requirements.
        let matrix = WorkforceMatrix::from_cells(1, 4, vec![0.4, 0.1, 0.3, 0.2]);
        let sum = matrix.aggregate(3, AggregationMode::Sum);
        let max = matrix.aggregate(3, AggregationMode::Max);
        let sum = sum[0].as_ref().unwrap();
        let max = max[0].as_ref().unwrap();
        assert_eq!(sum.strategy_indices, vec![1, 3, 2]);
        assert!((sum.workforce - 0.6).abs() < 1e-12);
        assert_eq!(max.strategy_indices, vec![1, 3, 2]);
        assert!((max.workforce - 0.3).abs() < 1e-12);
        assert!(max.workforce <= sum.workforce);
    }

    #[test]
    fn infeasible_rows_aggregate_to_none() {
        let matrix = WorkforceMatrix::from_cells(
            2,
            3,
            vec![
                0.2,
                f64::INFINITY,
                f64::INFINITY, // only one feasible strategy
                0.1,
                0.2,
                0.3, // fully feasible
            ],
        );
        let agg = matrix.aggregate(2, AggregationMode::Sum);
        assert!(agg[0].is_none());
        let r1 = agg[1].as_ref().unwrap();
        assert_eq!(r1.request_index, 1);
        assert_eq!(r1.strategy_indices, vec![0, 1]);
        assert!((r1.workforce - 0.3).abs() < 1e-12);
    }

    #[test]
    fn k_zero_aggregates_to_none() {
        let matrix = WorkforceMatrix::from_cells(1, 2, vec![0.1, 0.2]);
        assert!(matrix.aggregate(0, AggregationMode::Sum)[0].is_none());
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn from_cells_validates_dimensions() {
        let _ = WorkforceMatrix::from_cells(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn running_example_d3_is_deployable_within_availability() {
        let (requests, strategies, models) = example_setup();
        let matrix = WorkforceMatrix::compute(&requests, &strategies, &models).unwrap();
        let agg = matrix.aggregate(3, AggregationMode::Max);
        // d3 gets exactly {s2, s3, s4} (indices 1, 2, 3) and fits in W = 0.8.
        let d3 = agg[2].as_ref().unwrap();
        let mut sorted = d3.strategy_indices.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
        assert!(d3.workforce <= WorkerAvailability::new(0.8).unwrap().value());
        assert!(agg[0].is_none());
        assert!(agg[1].is_none());
    }

    #[test]
    fn eligibility_uses_request_thresholds() {
        // A request satisfied by exactly one strategy.
        let strategies = vec![
            Strategy::from_params(0, DeploymentParameters::new(0.9, 0.1, 0.1).unwrap()),
            Strategy::from_params(1, DeploymentParameters::new(0.3, 0.1, 0.1).unwrap()),
        ];
        let models = ModelLibrary::uniform_for(&strategies, StrategyModel::uniform(1.0, 0.0));
        let requests = vec![request(0, 0.8, 0.5, 0.5)];
        let matrix = WorkforceMatrix::compute(&requests, &strategies, &models).unwrap();
        assert!(matrix.get(0, 0).is_finite());
        assert!(matrix.get(0, 1).is_infinite());
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "request row 3 out of bounds")
    )]
    #[cfg_attr(not(debug_assertions), should_panic(expected = "index out of bounds"))]
    fn get_reports_the_offending_row() {
        let _ = WorkforceMatrix::from_cells(2, 2, vec![0.0; 4]).get(3, 0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "strategy column 5 out of bounds")
    )]
    #[cfg_attr(not(debug_assertions), should_panic(expected = "index out of bounds"))]
    fn get_reports_the_offending_column() {
        let _ = WorkforceMatrix::from_cells(2, 2, vec![0.0; 4]).get(1, 5);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "request row 2 out of bounds")
    )]
    #[cfg_attr(not(debug_assertions), should_panic(expected = "out of range"))]
    fn row_reports_the_offending_row() {
        let _ = WorkforceMatrix::from_cells(2, 2, vec![0.0; 4]).row(2);
    }

    /// A deterministic, id-varied model so churned matrices have a genuine
    /// mix of finite / infinite cells and distinct top-k orders.
    fn varied_model(id: u64) -> StrategyModel {
        let alpha = 0.35 + ((id * 37) % 50) as f64 / 100.0;
        StrategyModel::uniform(alpha, 1.0 - alpha)
    }

    fn varied_strategy(id: u64) -> Strategy {
        let q = 0.3 + ((id * 13) % 60) as f64 / 100.0;
        let c = 0.2 + ((id * 29) % 70) as f64 / 100.0;
        let l = 0.1 + ((id * 17) % 80) as f64 / 100.0;
        Strategy::from_params(id, DeploymentParameters::clamped(q, c, l))
    }

    /// Churned-window fixture: catalog + library + standing requests.
    fn churn_fixture() -> (
        crate::catalog::StrategyCatalog,
        ModelLibrary,
        Vec<DeploymentRequest>,
    ) {
        let strategies: Vec<Strategy> = (0..24).map(varied_strategy).collect();
        let models =
            ModelLibrary::from_pairs(strategies.iter().map(|s| (s.id, varied_model(s.id.0))));
        let catalog = crate::catalog::StrategyCatalog::with_policy(
            strategies,
            crate::catalog::RebuildPolicy::threshold(4),
        );
        let requests = vec![
            request(0, 0.55, 0.8, 0.8),
            request(1, 0.8, 0.6, 0.7),
            request(2, 0.2, 0.95, 0.95),
            request(3, 0.95, 0.2, 0.2),
        ];
        (catalog, models, requests)
    }

    #[test]
    fn apply_delta_matches_a_fresh_recompute_across_churn_and_compaction() {
        // Runs at both precisions: the delta-maintained matrix must stay
        // bit-identical to a fresh fill *of its own precision* across
        // inserts, retires and compactions, and the caches — which route
        // through the shared fused top-k primitive — must track exactly.
        for precision in Precision::ALL {
            for rule in [
                EligibilityRule::StrategyParameters,
                EligibilityRule::ModelOnly,
            ] {
                let (mut catalog, mut models, requests) = churn_fixture();
                let mut matrix = WorkforceMatrix::compute_with_catalog_precision(
                    &requests, &catalog, &models, rule, precision,
                )
                .unwrap();
                assert_eq!(matrix.precision(), precision);
                let mut cache_sum = AggregationCache::new(3, AggregationMode::Sum);
                let mut cache_max = AggregationCache::new(3, AggregationMode::Max);
                cache_sum.prime(&matrix);
                cache_max.prime(&matrix);
                let sub = catalog.subscribe_delta();
                let mut next_id = 24_u64;
                let mut model_buf = Vec::new();

                // Five churn windows; the third and fifth compact mid-window.
                for window in 0..5 {
                    for _ in 0..3 {
                        let strategy = varied_strategy(next_id);
                        models.insert(strategy.id, varied_model(next_id));
                        catalog.insert(strategy);
                        next_id += 1;
                    }
                    let live = catalog.live_indices();
                    assert!(catalog.retire(live[window % live.len()]));
                    assert!(catalog.retire(live[(window * 7 + 2) % live.len()]));
                    if window == 2 || window == 4 {
                        catalog.compact();
                        // Churn continues after the compaction, same window.
                        let strategy = varied_strategy(next_id);
                        models.insert(strategy.id, varied_model(next_id));
                        catalog.insert(strategy);
                        next_id += 1;
                    }

                    let delta = catalog.take_delta(&sub).unwrap();
                    matrix
                        .apply_delta_with_scratch(
                            &delta,
                            &requests,
                            &catalog,
                            &models,
                            rule,
                            &mut model_buf,
                        )
                        .unwrap();
                    let fresh = WorkforceMatrix::compute_with_catalog_precision(
                        &requests, &catalog, &models, rule, precision,
                    )
                    .unwrap();
                    assert_eq!(matrix, fresh, "{precision:?}, {rule:?}, window {window}");

                    let repaired = cache_sum.repair(&matrix, &delta);
                    assert!(
                        repaired <= matrix.rows(),
                        "{precision:?}, {rule:?}, window {window}"
                    );
                    cache_max.repair(&matrix, &delta);
                    assert_eq!(
                        cache_sum.requirements(),
                        &matrix.aggregate(3, AggregationMode::Sum)[..],
                        "{precision:?}, {rule:?}, window {window}, sum"
                    );
                    assert_eq!(
                        cache_max.requirements(),
                        &matrix.aggregate(3, AggregationMode::Max)[..],
                        "{precision:?}, {rule:?}, window {window}, max"
                    );
                }
            }
        }
    }

    #[test]
    fn apply_delta_rejects_a_delta_the_catalog_moved_past() {
        let (mut catalog, models, requests) = churn_fixture();
        let rule = EligibilityRule::StrategyParameters;
        let mut matrix =
            WorkforceMatrix::compute_with_catalog(&requests, &catalog, &models, rule).unwrap();
        let sub = catalog.subscribe_delta();
        assert!(catalog.retire(0));
        let delta = catalog.take_delta(&sub).unwrap();
        // The catalog mutates again before the delta is applied.
        assert!(catalog.retire(1));
        let before = matrix.clone();
        assert!(matches!(
            matrix.apply_delta(&delta, &requests, &catalog, &models, rule),
            Err(StratRecError::StaleCatalog { .. })
        ));
        assert_eq!(matrix, before, "a failed apply must not mutate the matrix");
    }

    #[test]
    fn apply_delta_missing_inserted_model_fails_before_mutating() {
        let (mut catalog, models, requests) = churn_fixture();
        let rule = EligibilityRule::StrategyParameters;
        let mut matrix =
            WorkforceMatrix::compute_with_catalog(&requests, &catalog, &models, rule).unwrap();
        let sub = catalog.subscribe_delta();
        catalog.insert(varied_strategy(999)); // no model registered
        assert!(catalog.retire(0));
        let delta = catalog.take_delta(&sub).unwrap();
        let before = matrix.clone();
        assert!(matches!(
            matrix.apply_delta(&delta, &requests, &catalog, &models, rule),
            Err(StratRecError::MissingModel { strategy: 999 })
        ));
        assert_eq!(matrix, before);
    }

    #[test]
    fn empty_deltas_and_empty_batches_apply_cleanly() {
        let (mut catalog, models, _) = churn_fixture();
        let rule = EligibilityRule::StrategyParameters;
        // Zero-row matrices still track the column count through a delta,
        // without ever consulting the model library.
        let empty_models = ModelLibrary::new();
        let mut matrix =
            WorkforceMatrix::compute_with_catalog(&[], &catalog, &empty_models, rule).unwrap();
        let sub = catalog.subscribe_delta();
        let noop = catalog.take_delta(&sub).unwrap();
        assert!(noop.is_empty());
        matrix
            .apply_delta(&noop, &[], &catalog, &empty_models, rule)
            .unwrap();
        catalog.insert(varied_strategy(500));
        assert!(catalog.retire(3));
        let delta = catalog.take_delta(&sub).unwrap();
        matrix
            .apply_delta(&delta, &[], &catalog, &empty_models, rule)
            .unwrap();
        assert_eq!(matrix.rows(), 0);
        assert_eq!(matrix.cols(), catalog.slot_count());
        let _ = models;
    }

    #[test]
    fn cache_repair_skips_rows_the_delta_cannot_have_changed() {
        // Two rows over four slots; the churn only touches slots outside
        // row 0's top-2 and only beats row 1's k-th value.
        let mut matrix = WorkforceMatrix::from_cells(
            2,
            4,
            vec![
                0.1, 0.2, 0.9, 0.8, // row 0: top-2 = {0, 1}
                0.7, 0.6, 0.5, 0.4, // row 1: top-2 = {3, 2}
            ],
        );
        let catalog_stub =
            |retired: Vec<usize>, inserted: Vec<usize>| crate::catalog::CatalogDelta {
                from_epoch: 0,
                to_epoch: 1,
                source_cols: 4,
                target_cols: 4 + inserted.len(),
                remap: None,
                inserted,
                retired,
            };
        let mut cache = AggregationCache::new(2, AggregationMode::Sum);
        cache.prime(&matrix);
        assert!(cache.is_primed());
        assert_eq!(cache.k(), 2);
        assert_eq!(cache.mode(), AggregationMode::Sum);

        // Retiring slot 2 hits row 1's top-2 but not row 0's.
        let delta = catalog_stub(vec![2], vec![]);
        for row in 0..2 {
            let cells = matrix.row(row).to_vec();
            let mut cells = cells;
            cells[2] = f64::INFINITY;
            for (j, v) in cells.into_iter().enumerate() {
                // Rebuild the matrix cell-by-cell to emulate apply_delta's
                // retired write without a catalog.
                let idx = row * 4 + j;
                matrix.cells_mut()[idx] = v;
            }
        }
        let repaired = cache.repair(&matrix, &delta);
        assert_eq!(repaired, 1, "only row 1 re-aggregates");
        assert_eq!(
            cache.requirements(),
            &matrix.aggregate(2, AggregationMode::Sum)[..]
        );

        // An appended column that beats only row 0's k-th value.
        let wide = WorkforceMatrix::from_cells(
            2,
            5,
            vec![
                0.1,
                0.2,
                f64::INFINITY,
                0.8,
                0.15, // beats row 0's 0.2
                0.7,
                0.6,
                f64::INFINITY,
                0.4,
                0.95, // worse than row 1's 0.7
            ],
        );
        let delta = crate::catalog::CatalogDelta {
            from_epoch: 1,
            to_epoch: 2,
            source_cols: 4,
            target_cols: 5,
            remap: None,
            inserted: vec![4],
            retired: vec![],
        };
        let repaired = cache.repair(&wide, &delta);
        assert_eq!(repaired, 1, "only row 0 re-aggregates");
        assert_eq!(
            cache.requirements(),
            &wide.aggregate(2, AggregationMode::Sum)[..]
        );
    }

    #[test]
    fn cache_ties_on_the_kth_value_leave_the_row_untouched() {
        // The appended slot ties row 0's k-th value: selection tie-breaks by
        // ascending index, and appended slots have the largest index, so the
        // cached selection must stand and the row must not re-aggregate.
        let matrix = WorkforceMatrix::from_cells(1, 3, vec![0.1, 0.2, 0.2]);
        let mut cache = AggregationCache::new(2, AggregationMode::Sum);
        cache.prime(&WorkforceMatrix::from_cells(1, 2, vec![0.1, 0.2]));
        let delta = crate::catalog::CatalogDelta {
            from_epoch: 0,
            to_epoch: 1,
            source_cols: 2,
            target_cols: 3,
            remap: None,
            inserted: vec![2],
            retired: vec![],
        };
        assert_eq!(cache.repair(&matrix, &delta), 0);
        assert_eq!(
            cache.requirements(),
            &matrix.aggregate(2, AggregationMode::Sum)[..]
        );
    }

    #[test]
    fn cache_infeasible_rows_revive_through_inserted_columns() {
        let matrix = WorkforceMatrix::from_cells(1, 2, vec![0.4, f64::INFINITY]);
        let mut cache = AggregationCache::new(2, AggregationMode::Max);
        cache.prime(&matrix);
        assert_eq!(cache.requirements(), &[None]);
        let wide = WorkforceMatrix::from_cells(1, 3, vec![0.4, f64::INFINITY, 0.9]);
        let delta = crate::catalog::CatalogDelta {
            from_epoch: 0,
            to_epoch: 1,
            source_cols: 2,
            target_cols: 3,
            remap: None,
            inserted: vec![2],
            retired: vec![],
        };
        assert_eq!(cache.repair(&wide, &delta), 1);
        let req = cache.requirements()[0].as_ref().unwrap();
        assert_eq!(req.strategy_indices, vec![0, 2]);
        assert!((req.workforce - 0.9).abs() < 1e-12);
        assert_eq!(
            cache.requirements(),
            &wide.aggregate(2, AggregationMode::Max)[..]
        );
    }

    #[test]
    fn aggregate_sharded_is_bit_identical_to_the_flat_aggregate() {
        let (catalog, models, requests) = churn_fixture();
        for rule in [
            EligibilityRule::StrategyParameters,
            EligibilityRule::ModelOnly,
        ] {
            let matrix =
                WorkforceMatrix::compute_with_catalog(&requests, &catalog, &models, rule).unwrap();
            for mode in [AggregationMode::Sum, AggregationMode::Max] {
                for k in [0, 1, 3, 24, 30] {
                    let flat = matrix.aggregate(k, mode);
                    for shards in [1, 2, 3, 8, 24, 31] {
                        let plan = ShardPlan::uniform(shards, matrix.cols());
                        let sharded = matrix.aggregate_sharded(k, mode, &plan);
                        assert_eq!(flat.len(), sharded.len());
                        for (a, b) in flat.iter().zip(&sharded) {
                            match (a, b) {
                                (None, None) => {}
                                (Some(a), Some(b)) => {
                                    assert_eq!(a.request_index, b.request_index);
                                    assert_eq!(
                                        a.strategy_indices, b.strategy_indices,
                                        "{rule:?}, {mode:?}, k={k}, shards={shards}"
                                    );
                                    assert_eq!(
                                        a.workforce.to_bits(),
                                        b.workforce.to_bits(),
                                        "{rule:?}, {mode:?}, k={k}, shards={shards}"
                                    );
                                }
                                _ => {
                                    panic!("feasibility diverged: {rule:?}, k={k}, shards={shards}")
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "shard plan width must match")]
    fn aggregate_sharded_validates_the_plan_width() {
        let matrix = WorkforceMatrix::from_cells(1, 3, vec![0.1, 0.2, 0.3]);
        let _ = matrix.aggregate_sharded(2, AggregationMode::Sum, &ShardPlan::uniform(2, 4));
    }

    #[test]
    fn sharded_cache_tracks_the_flat_aggregate_across_churn_and_compaction() {
        // The sharded caches must repair to exactly what a flat aggregate
        // over the churned matrix produces, for every shard count, while the
        // shard plan follows the catalog's compactions.
        for rule in [
            EligibilityRule::StrategyParameters,
            EligibilityRule::ModelOnly,
        ] {
            let (mut catalog, mut models, requests) = churn_fixture();
            let mut matrix =
                WorkforceMatrix::compute_with_catalog(&requests, &catalog, &models, rule).unwrap();
            let mut caches: Vec<ShardedAggregationCache> = [1, 2, 3, 8]
                .into_iter()
                .map(|shards| {
                    let plan = ShardPlan::for_catalog(shards, &catalog);
                    let mut cache = ShardedAggregationCache::new(3, AggregationMode::Sum, plan);
                    cache.prime(&matrix);
                    cache
                })
                .collect();
            let sub = catalog.subscribe_delta();
            let mut next_id = 24_u64;
            let mut model_buf = Vec::new();

            for window in 0..5 {
                for _ in 0..3 {
                    let strategy = varied_strategy(next_id);
                    models.insert(strategy.id, varied_model(next_id));
                    catalog.insert(strategy);
                    next_id += 1;
                }
                let live = catalog.live_indices();
                assert!(catalog.retire(live[window % live.len()]));
                assert!(catalog.retire(live[(window * 7 + 2) % live.len()]));
                if window == 2 || window == 4 {
                    catalog.compact();
                    let strategy = varied_strategy(next_id);
                    models.insert(strategy.id, varied_model(next_id));
                    catalog.insert(strategy);
                    next_id += 1;
                }

                let delta = catalog.take_delta(&sub).unwrap();
                matrix
                    .apply_delta_with_scratch(
                        &delta,
                        &requests,
                        &catalog,
                        &models,
                        rule,
                        &mut model_buf,
                    )
                    .unwrap();
                let flat = matrix.aggregate(3, AggregationMode::Sum);
                for cache in &mut caches {
                    let repaired = cache.repair(&matrix, &delta);
                    assert!(repaired <= matrix.rows());
                    assert_eq!(cache.plan().cols(), matrix.cols());
                    assert_eq!(
                        cache.requirements(),
                        &flat[..],
                        "{rule:?}, window {window}, shards {}",
                        cache.shard_count()
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_cache_repairs_only_rows_the_churn_touched() {
        // Two shards over four columns; retiring a column selected only by
        // row 0 must re-merge row 0 alone.
        let wide = WorkforceMatrix::from_cells(
            2,
            4,
            vec![
                0.1,
                0.9,
                0.8,
                f64::INFINITY, // row 0 picks {0, 2}
                0.7,
                0.2,
                f64::INFINITY,
                0.3, // row 1 picks {1, 3}
            ],
        );
        let mut cache =
            ShardedAggregationCache::new(2, AggregationMode::Sum, ShardPlan::uniform(2, 4));
        cache.prime(&wide);
        assert!(cache.is_primed());

        let churned = WorkforceMatrix::from_cells(
            2,
            4,
            vec![
                0.1,
                0.9,
                f64::INFINITY,
                f64::INFINITY,
                0.7,
                0.2,
                f64::INFINITY,
                0.3,
            ],
        );
        let delta = crate::catalog::CatalogDelta {
            from_epoch: 0,
            to_epoch: 1,
            source_cols: 4,
            target_cols: 4,
            remap: None,
            inserted: vec![],
            retired: vec![2],
        };
        assert_eq!(cache.repair(&churned, &delta), 1, "only row 0 re-merges");
        assert_eq!(
            cache.requirements(),
            &churned.aggregate(2, AggregationMode::Sum)[..]
        );
    }

    #[test]
    fn sharded_cache_appends_only_disturb_the_last_shard() {
        // An appended column that loses to every cached candidate leaves all
        // rows untouched; one that wins re-merges exactly the rows it beats.
        let wide = WorkforceMatrix::from_cells(2, 4, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]);
        let mut cache =
            ShardedAggregationCache::new(2, AggregationMode::Sum, ShardPlan::uniform(2, 4));
        cache.prime(&wide);

        // Loser append: 0.9 beats nothing.
        let grown = WorkforceMatrix::from_cells(
            2,
            5,
            vec![0.1, 0.2, 0.3, 0.4, 0.9, 0.5, 0.6, 0.7, 0.8, 0.9],
        );
        let delta = crate::catalog::CatalogDelta {
            from_epoch: 0,
            to_epoch: 1,
            source_cols: 4,
            target_cols: 5,
            remap: None,
            inserted: vec![4],
            retired: vec![],
        };
        assert_eq!(cache.repair(&grown, &delta), 0);
        assert_eq!(cache.plan().cols(), 5);

        // Winner append for row 1 only (0.05 < its worst candidate 0.6).
        let grown = WorkforceMatrix::from_cells(
            2,
            6,
            vec![0.1, 0.2, 0.3, 0.4, 0.9, 0.95, 0.5, 0.6, 0.7, 0.8, 0.9, 0.05],
        );
        let delta = crate::catalog::CatalogDelta {
            from_epoch: 1,
            to_epoch: 2,
            source_cols: 5,
            target_cols: 6,
            remap: None,
            inserted: vec![5],
            retired: vec![],
        };
        assert_eq!(cache.repair(&grown, &delta), 1, "only row 1 re-merges");
        assert_eq!(
            cache.requirements(),
            &grown.aggregate(2, AggregationMode::Sum)[..]
        );
    }

    #[test]
    fn sharded_cache_unprimed_repair_falls_back_to_prime() {
        let matrix = WorkforceMatrix::from_cells(1, 4, vec![0.4, 0.3, 0.2, 0.1]);
        let mut cache =
            ShardedAggregationCache::new(2, AggregationMode::Max, ShardPlan::uniform(2, 4));
        let delta = crate::catalog::CatalogDelta {
            from_epoch: 0,
            to_epoch: 0,
            source_cols: 4,
            target_cols: 4,
            remap: None,
            inserted: vec![],
            retired: vec![],
        };
        assert_eq!(cache.repair(&matrix, &delta), 1);
        assert!(cache.is_primed());
        assert_eq!(
            cache.requirements(),
            &matrix.aggregate(2, AggregationMode::Max)[..]
        );
    }
}
