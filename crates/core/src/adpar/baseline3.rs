//! `Baseline3`: the R-tree MBB baseline (paper §5.2.1).
//!
//! "We treat each strategy['s] parameters as a point in a 3-D space and index
//! them using an R-Tree. Then, it scans the tree to find if there is a
//! minimum bounding box (MBB) that exactly contains k strategies. If so, it
//! returns the top-right corner of that MBB as the alternative deployment
//! parameters and corresponding k strategies. If such an MBB does not exist,
//! it will return the top right corner of another MBB that has at least k
//! strategies and will randomly return k strategies from there."
//!
//! The baseline is *not* optimization driven: the returned corner can be far
//! from the request — and can even tighten some axes — which is why it loses
//! badly in Figure 17. For reproducibility the "random" choice of the ≥ `k`
//! fallback node and of the `k` strategies is made deterministic: the node
//! with the fewest points (ties: smallest MBB volume) wins, and the first `k`
//! covered strategies in index order are reported.

use stratrec_geometry::{Aabb3, Point3, RTree};

use crate::adpar::{AdparProblem, AdparSolution, AdparSolver};
use crate::error::StratRecError;
use crate::model::{DeploymentParameters, Strategy};

/// The R-tree MBB baseline solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdparBaseline3 {
    /// Node capacity used when bulk-loading the R-tree. The paper does not
    /// specify one; 8 is the library default.
    pub node_capacity: usize,
}

impl Default for AdparBaseline3 {
    fn default() -> Self {
        Self { node_capacity: 8 }
    }
}

impl AdparSolver for AdparBaseline3 {
    fn solve(&self, problem: &AdparProblem<'_>) -> Result<AdparSolution, StratRecError> {
        problem.validate()?;
        let k = problem.k;

        // Index strategies as points in the normalized minimization space.
        // Problems built over a shared `StrategyCatalog` carry its index;
        // reuse it whenever it is still a deterministic STR bulk load over
        // exactly the live slots (pristine, or re-packed by
        // `force_rebuild`). A churned catalog's tree may contain tombstoned
        // slots, miss the tail, or have an incrementally merged structure
        // that is not the packing this baseline is pinned to — then
        // bulk-load the live slots instead; entries keep their stable slot
        // indices via `bulk_load_entries`.
        let owned;
        let tree: &RTree = match problem.catalog() {
            Some(catalog)
                if catalog.index_is_packed_live()
                    && catalog.index().node_capacity() == self.node_capacity =>
            {
                catalog.index()
            }
            Some(catalog) => {
                owned = RTree::bulk_load_entries(catalog.live_entries(), self.node_capacity);
                &owned
            }
            None => {
                let points: Vec<Point3> = problem
                    .strategies
                    .iter()
                    .map(Strategy::to_normalized_point)
                    .collect();
                owned = RTree::bulk_load_with_capacity(&points, self.node_capacity);
                &owned
            }
        };

        // Scan all node MBBs: prefer one containing exactly k points,
        // otherwise the smallest one containing at least k.
        let summaries = tree.node_summaries();
        let exact_match = summaries
            .iter()
            .filter(|(_, count)| *count == k)
            .min_by(|a, b| a.0.volume().total_cmp(&b.0.volume()));
        let fallback = summaries
            .iter()
            .filter(|(_, count)| *count >= k)
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.volume().total_cmp(&b.0.volume())));
        let (mbb, _) = exact_match
            .or(fallback)
            .expect("the root MBB contains |S| >= k points");

        let corner = mbb.top_right();
        let alternative = DeploymentParameters::from_normalized_point(corner);

        // Strategies admitted by the corner (every point of the chosen node is,
        // by construction of the MBB). Report the first k in index order, as
        // the deterministic stand-in for the paper's random pick.
        let admitted = tree.query_box(&Aabb3::anchored_at_origin(corner));
        let strategy_indices: Vec<usize> = admitted.into_iter().take(k).collect();

        let request_point = problem.request.to_normalized_point();
        let relaxation = Point3::new(
            corner.x - request_point.x,
            corner.y - request_point.y,
            corner.z - request_point.z,
        );
        Ok(AdparSolution {
            alternative,
            relaxation,
            strategy_indices,
            distance: corner.distance(&request_point),
        })
    }

    fn name(&self) -> &'static str {
        "Baseline3"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adpar::AdparExact;
    use crate::model::{DeploymentRequest, Strategy, TaskType};
    use proptest::prelude::*;

    fn request(q: f64, c: f64, l: f64) -> DeploymentRequest {
        DeploymentRequest::new(
            0,
            TaskType::PuzzleSolving,
            DeploymentParameters::clamped(q, c, l),
        )
    }

    fn strategies_from(params: &[(f64, f64, f64)]) -> Vec<Strategy> {
        params
            .iter()
            .enumerate()
            .map(|(i, &(q, c, l))| {
                Strategy::from_params(i as u64, DeploymentParameters::clamped(q, c, l))
            })
            .collect()
    }

    #[test]
    fn produces_an_alternative_admitting_k_strategies() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let problem = AdparProblem::new(&requests[1], &strategies, 3);
        let solution = AdparBaseline3::default().solve(&problem).unwrap();
        assert_eq!(solution.strategy_indices.len(), 3);
        for &idx in &solution.strategy_indices {
            assert!(strategies[idx].params.satisfies(&solution.alternative));
        }
    }

    #[test]
    fn is_generally_worse_than_exact() {
        let strategies = strategies_from(&[
            (0.9, 0.1, 0.1),
            (0.85, 0.15, 0.2),
            (0.6, 0.5, 0.6),
            (0.5, 0.7, 0.9),
            (0.3, 0.9, 0.9),
            (0.95, 0.05, 0.05),
        ]);
        let r = request(0.99, 0.01, 0.01);
        let problem = AdparProblem::new(&r, &strategies, 2);
        let exact = AdparExact.solve(&problem).unwrap();
        let baseline = AdparBaseline3::default().solve(&problem).unwrap();
        assert!(baseline.distance + 1e-12 >= exact.distance);
    }

    #[test]
    fn small_node_capacity_still_works() {
        let strategies = strategies_from(&[
            (0.9, 0.1, 0.1),
            (0.8, 0.2, 0.2),
            (0.7, 0.3, 0.3),
            (0.6, 0.4, 0.4),
            (0.5, 0.5, 0.5),
            (0.4, 0.6, 0.6),
            (0.3, 0.7, 0.7),
            (0.2, 0.8, 0.8),
            (0.1, 0.9, 0.9),
        ]);
        let r = request(0.95, 0.05, 0.05);
        let solver = AdparBaseline3 { node_capacity: 2 };
        let solution = solver
            .solve(&AdparProblem::new(&r, &strategies, 3))
            .unwrap();
        assert_eq!(solution.strategy_indices.len(), 3);
        assert_eq!(solver.name(), "Baseline3");
    }

    #[test]
    fn errors_are_propagated() {
        let strategies = strategies_from(&[(0.5, 0.5, 0.5)]);
        let r = request(0.9, 0.1, 0.1);
        assert!(AdparBaseline3::default()
            .solve(&AdparProblem::new(&r, &strategies, 0))
            .is_err());
        assert!(AdparBaseline3::default()
            .solve(&AdparProblem::new(&r, &strategies, 3))
            .is_err());
    }

    proptest! {
        #[test]
        fn reported_strategies_are_admitted_by_the_alternative(
            raw in proptest::collection::vec(
                (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
                1..40
            ),
            req in (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
            k in 1_usize..6,
            capacity in 2_usize..10,
        ) {
            prop_assume!(k <= raw.len());
            let strategies = strategies_from(&raw);
            let request = request(req.0, req.1, req.2);
            let problem = AdparProblem::new(&request, &strategies, k);
            let solver = AdparBaseline3 { node_capacity: capacity };
            let solution = solver.solve(&problem).unwrap();
            prop_assert_eq!(solution.strategy_indices.len(), k);
            for &idx in &solution.strategy_indices {
                prop_assert!(strategies[idx].params.satisfies(&solution.alternative));
            }
            // Never better than the true optimum.
            let exact = AdparExact.solve(&problem).unwrap();
            prop_assert!(solution.distance + 1e-9 >= exact.distance);
        }
    }
}
