//! Step-by-step trace of `ADPaR-Exact` on a problem instance.
//!
//! The paper illustrates the algorithm on the running example with four
//! tables: the per-strategy relaxation values (Table 3), the sorted
//! relaxation list `R` with its index array `I` and parameter array `D`
//! (Table 4), the three per-axis sweep-lines (Table 5) and the coverage
//! matrix `M` (Table 2). [`AdparTrace`] reproduces those artefacts so the
//! `running_example` binary can print them and tests can pin them down.

use serde::{Deserialize, Serialize};
use stratrec_geometry::{Axis, Point3, SweepEvent, SweepList};

use crate::adpar::{AdparExact, AdparProblem, AdparSolution, AdparSolver};
use crate::error::StratRecError;

/// Which deployment parameter an event refers to, in the paper's notation
/// (`Q`, `C`, `L`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceParameter {
    /// Quality.
    Q,
    /// Cost.
    C,
    /// Latency.
    L,
}

impl TraceParameter {
    fn from_axis(axis: Axis) -> Self {
        match axis {
            Axis::X => Self::Q,
            Axis::Y => Self::C,
            Axis::Z => Self::L,
        }
    }

    /// The single-letter label used in the paper's Table 4.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Q => "Q",
            Self::C => "C",
            Self::L => "L",
        }
    }
}

/// One entry of the sorted relaxation list (`R[j]`, `I[j]`, `D[j]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Relaxation value `R[j]`.
    pub relaxation: f64,
    /// Strategy index `I[j]` (0-based).
    pub strategy: usize,
    /// Parameter `D[j]`.
    pub parameter: TraceParameter,
}

/// The coverage matrix `M`: for each strategy, whether each of its three
/// parameters is already covered by the alternative parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageMatrix {
    /// `covered[s] = [quality, cost, latency]` flags for strategy `s`.
    pub covered: Vec<[bool; 3]>,
}

impl CoverageMatrix {
    /// Number of strategies whose three parameters are all covered.
    #[must_use]
    pub fn fully_covered(&self) -> usize {
        self.covered.iter().filter(|c| c.iter().all(|&b| b)).count()
    }
}

/// The full trace of one ADPaR-Exact run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdparTrace {
    /// Step 1: per-strategy relaxation vectors (quality, cost, latency).
    pub relaxations: Vec<Point3>,
    /// Step 2: the sorted `R` / `I` / `D` arrays.
    pub sorted_events: Vec<TraceEvent>,
    /// Step 3: per-axis sweep orders — for each axis, the strategy indices in
    /// ascending order of that axis' relaxation value.
    pub sweep_orders: [Vec<usize>; 3],
    /// The coverage matrix `M` evaluated at the final alternative parameters.
    pub final_coverage: CoverageMatrix,
    /// The solution returned by `ADPaR-Exact`.
    pub solution: AdparSolution,
}

impl AdparTrace {
    /// Runs `ADPaR-Exact` on `problem` while recording the paper's
    /// intermediate artefacts.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`AdparExact::solve`].
    pub fn compute(problem: &AdparProblem<'_>) -> Result<Self, StratRecError> {
        let solution = AdparExact.solve(problem)?;
        let relaxations = problem.relaxations().to_vec();

        let sweep = SweepList::all_axes(&relaxations);
        let sorted_events = sweep
            .events()
            .iter()
            .map(|&SweepEvent { value, item, axis }| TraceEvent {
                relaxation: value,
                strategy: item,
                parameter: TraceParameter::from_axis(axis),
            })
            .collect();

        let sweep_orders = [
            axis_order(&relaxations, Axis::X),
            axis_order(&relaxations, Axis::Y),
            axis_order(&relaxations, Axis::Z),
        ];

        let final_coverage = CoverageMatrix {
            covered: relaxations
                .iter()
                .map(|r| {
                    [
                        r.x <= solution.relaxation.x + 1e-9,
                        r.y <= solution.relaxation.y + 1e-9,
                        r.z <= solution.relaxation.z + 1e-9,
                    ]
                })
                .collect(),
        };

        Ok(Self {
            relaxations,
            sorted_events,
            sweep_orders,
            final_coverage,
            solution,
        })
    }

    /// Renders the trace as the four plain-text tables of the paper.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "Step 1 — relaxation values (quality, cost, latency):");
        for (i, r) in self.relaxations.iter().enumerate() {
            let _ = writeln!(out, "  s{}: ({:.3}, {:.3}, {:.3})", i + 1, r.x, r.y, r.z);
        }
        let _ = writeln!(out, "Step 2 — sorted relaxation list R / I / D:");
        for e in &self.sorted_events {
            let _ = writeln!(
                out,
                "  R={:.3}  I=s{}  D={}",
                e.relaxation,
                e.strategy + 1,
                e.parameter.label()
            );
        }
        let _ = writeln!(out, "Step 3 — sweep-line orders (ascending relaxation):");
        for (axis, order) in ["Q", "C", "L"].iter().zip(&self.sweep_orders) {
            let order: Vec<String> = order.iter().map(|i| format!("s{}", i + 1)).collect();
            let _ = writeln!(out, "  sweep-line({axis}): {}", order.join(" "));
        }
        let _ = writeln!(
            out,
            "Final coverage matrix M ({} strategies fully covered):",
            self.final_coverage.fully_covered()
        );
        for (i, row) in self.final_coverage.covered.iter().enumerate() {
            let _ = writeln!(
                out,
                "  s{}: Q={} C={} L={}",
                i + 1,
                u8::from(row[0]),
                u8::from(row[1]),
                u8::from(row[2])
            );
        }
        let alt = &self.solution.alternative;
        let _ = writeln!(
            out,
            "Alternative d' = (quality {:.3}, cost {:.3}, latency {:.3}), distance {:.4}",
            alt.quality, alt.cost, alt.latency, self.solution.distance
        );
        out
    }
}

fn axis_order(relaxations: &[Point3], axis: Axis) -> Vec<usize> {
    let mut order: Vec<usize> = (0..relaxations.len()).collect();
    order.sort_by(|&a, &b| {
        relaxations[a]
            .coord(axis)
            .total_cmp(&relaxations[b].coord(axis))
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d2_trace() -> AdparTrace {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let problem = AdparProblem::new(&requests[1], &strategies, 3);
        AdparTrace::compute(&problem).unwrap()
    }

    #[test]
    fn step_1_matches_table_3() {
        let trace = d2_trace();
        let quality: Vec<f64> = trace
            .relaxations
            .iter()
            .map(|r| (r.x * 100.0).round() / 100.0)
            .collect();
        let cost: Vec<f64> = trace
            .relaxations
            .iter()
            .map(|r| (r.y * 100.0).round() / 100.0)
            .collect();
        assert_eq!(quality, vec![0.3, 0.05, 0.0, 0.0]);
        assert_eq!(cost, vec![0.05, 0.13, 0.3, 0.38]);
        assert!(trace.relaxations.iter().all(|r| r.z == 0.0));
    }

    #[test]
    fn step_2_is_sorted_with_12_events() {
        let trace = d2_trace();
        assert_eq!(trace.sorted_events.len(), 12);
        for pair in trace.sorted_events.windows(2) {
            assert!(pair[0].relaxation <= pair[1].relaxation + 1e-12);
        }
        // The six zero-relaxation events come first (Table 4, top row).
        assert!(trace.sorted_events[..6]
            .iter()
            .all(|e| e.relaxation.abs() < 1e-12));
    }

    #[test]
    fn sweep_orders_sort_each_axis() {
        let trace = d2_trace();
        // Quality axis ascending: s3, s4 (0), then s2 (0.05), then s1 (0.3).
        assert_eq!(trace.sweep_orders[0], vec![2, 3, 1, 0]);
        // Cost axis ascending: s1, s2, s3, s4.
        assert_eq!(trace.sweep_orders[1], vec![0, 1, 2, 3]);
    }

    #[test]
    fn final_coverage_has_at_least_k_strategies() {
        let trace = d2_trace();
        assert!(trace.final_coverage.fully_covered() >= 3);
        assert_eq!(trace.final_coverage.covered.len(), 4);
    }

    #[test]
    fn render_mentions_every_step() {
        let text = d2_trace().render();
        assert!(text.contains("Step 1"));
        assert!(text.contains("Step 2"));
        assert!(text.contains("Step 3"));
        assert!(text.contains("Alternative d'"));
        assert!(text.contains("sweep-line(Q)"));
    }
}
