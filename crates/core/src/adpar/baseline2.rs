//! `Baseline2`: single-dimension query-refinement baseline (paper §5.2.1).
//!
//! Inspired by interactive query refinement (Mishra et al.), this baseline
//! "modifies the original deployment request by just one parameter at a time
//! and is not optimization driven". It first tries to reach `k` admissible
//! strategies by relaxing a *single* axis; if no single axis suffices it
//! relaxes the axes one after another in a fixed order (quality, then cost,
//! then latency), each time just enough to keep at least `k` candidate
//! strategies in play. The result is always feasible but generally far from
//! the optimum — which is exactly the point of the comparison in Figure 17.

use stratrec_geometry::Point3;
use stratrec_optim::topk;

use crate::adpar::{AdparProblem, AdparSolution, AdparSolver};
use crate::error::StratRecError;

/// The one-dimension-at-a-time baseline solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdparBaseline2;

impl AdparSolver for AdparBaseline2 {
    fn solve(&self, problem: &AdparProblem<'_>) -> Result<AdparSolution, StratRecError> {
        problem.validate()?;
        let relaxations = problem.relaxations();
        let k = problem.k;

        // Phase 1: try each axis alone. Only strategies needing zero
        // relaxation on the two other axes can be reached this way.
        let mut best_single: Option<Point3> = None;
        for axis in 0..3 {
            let candidates: Vec<f64> = relaxations
                .iter()
                .filter(|r| other_axes(r, axis).iter().all(|&v| v <= 1e-12))
                .map(|r| axis_value(r, axis))
                .collect();
            if candidates.len() < k {
                continue;
            }
            let needed = topk::kth_smallest(&candidates, k)
                .expect("length checked above, all values finite");
            let candidate = with_axis(Point3::origin(), axis, needed);
            let better = match best_single {
                None => true,
                Some(current) => {
                    candidate.squared_distance(&Point3::origin())
                        < current.squared_distance(&Point3::origin())
                }
            };
            if better {
                best_single = Some(candidate);
            }
        }
        if let Some(relaxation) = best_single {
            return Ok(AdparSolution::from_relaxation(problem, relaxation));
        }

        // Phase 2: sequential relaxation, one axis at a time in a fixed
        // order. At each step keep the k candidates that are cheapest on the
        // current axis among the strategies still reachable.
        let mut surviving: Vec<usize> = (0..relaxations.len()).collect();
        let mut relaxation = Point3::origin();
        for axis in 0..3 {
            let values: Vec<f64> = surviving
                .iter()
                .map(|&i| axis_value(&relaxations[i], axis))
                .collect();
            let needed = topk::kth_smallest(&values, k)
                .expect("validate() guarantees at least k strategies overall");
            relaxation = with_axis(relaxation, axis, needed);
            surviving.retain(|&i| axis_value(&relaxations[i], axis) <= needed + 1e-12);
        }
        Ok(AdparSolution::from_relaxation(problem, relaxation))
    }

    fn name(&self) -> &'static str {
        "Baseline2"
    }
}

fn axis_value(p: &Point3, axis: usize) -> f64 {
    match axis {
        0 => p.x,
        1 => p.y,
        _ => p.z,
    }
}

fn other_axes(p: &Point3, axis: usize) -> [f64; 2] {
    match axis {
        0 => [p.y, p.z],
        1 => [p.x, p.z],
        _ => [p.x, p.y],
    }
}

fn with_axis(mut p: Point3, axis: usize, value: f64) -> Point3 {
    match axis {
        0 => p.x = value,
        1 => p.y = value,
        _ => p.z = value,
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adpar::AdparExact;
    use crate::model::{DeploymentParameters, DeploymentRequest, Strategy, TaskType};
    use proptest::prelude::*;

    fn request(q: f64, c: f64, l: f64) -> DeploymentRequest {
        DeploymentRequest::new(
            0,
            TaskType::TextSummarization,
            DeploymentParameters::clamped(q, c, l),
        )
    }

    fn strategies_from(params: &[(f64, f64, f64)]) -> Vec<Strategy> {
        params
            .iter()
            .enumerate()
            .map(|(i, &(q, c, l))| {
                Strategy::from_params(i as u64, DeploymentParameters::clamped(q, c, l))
            })
            .collect()
    }

    #[test]
    fn single_axis_relaxation_when_it_suffices() {
        // Running example d1 only needs a cost relaxation: Baseline2 matches
        // the exact solver here.
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let problem = AdparProblem::new(&requests[0], &strategies, 3);
        let solution = AdparBaseline2.solve(&problem).unwrap();
        assert!((solution.alternative.cost - 0.5).abs() < 1e-9);
        assert!((solution.alternative.quality - 0.4).abs() < 1e-9);
        assert_eq!(solution.strategy_indices, vec![0, 1, 2]);
    }

    #[test]
    fn falls_back_to_sequential_relaxation_when_one_axis_is_not_enough() {
        // Running example d2 needs both quality and cost relaxed.
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let problem = AdparProblem::new(&requests[1], &strategies, 3);
        let solution = AdparBaseline2.solve(&problem).unwrap();
        assert!(solution.is_feasible_for(&problem));
        // It is never better than the exact optimum.
        let exact = AdparExact.solve(&problem).unwrap();
        assert!(solution.distance + 1e-12 >= exact.distance);
    }

    #[test]
    fn picks_the_cheapest_single_axis() {
        // Either relax quality by 0.4 (covering s0, s1) or latency by 0.1
        // (covering s2, s3): latency is cheaper.
        let strategies = strategies_from(&[
            (0.4, 0.1, 0.1),
            (0.4, 0.1, 0.1),
            (0.9, 0.1, 0.3),
            (0.9, 0.1, 0.3),
        ]);
        let r = request(0.8, 0.2, 0.2);
        let problem = AdparProblem::new(&r, &strategies, 2);
        let solution = AdparBaseline2.solve(&problem).unwrap();
        assert!((solution.relaxation.z - 0.1).abs() < 1e-9);
        assert!(solution.relaxation.x.abs() < 1e-12);
        assert_eq!(solution.strategy_indices, vec![2, 3]);
    }

    #[test]
    fn errors_are_propagated() {
        let strategies = strategies_from(&[(0.5, 0.5, 0.5)]);
        let r = request(0.9, 0.1, 0.1);
        assert!(AdparBaseline2
            .solve(&AdparProblem::new(&r, &strategies, 2))
            .is_err());
        assert_eq!(AdparBaseline2.name(), "Baseline2");
    }

    proptest! {
        #[test]
        fn always_feasible_and_never_beats_exact(
            raw in proptest::collection::vec(
                (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
                1..12
            ),
            req in (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
            k in 1_usize..5,
        ) {
            prop_assume!(k <= raw.len());
            let strategies = strategies_from(&raw);
            let request = request(req.0, req.1, req.2);
            let problem = AdparProblem::new(&request, &strategies, k);
            let baseline = AdparBaseline2.solve(&problem).unwrap();
            let exact = AdparExact.solve(&problem).unwrap();
            prop_assert!(baseline.strategy_indices.len() >= k);
            prop_assert!(baseline.distance + 1e-9 >= exact.distance);
        }
    }
}
