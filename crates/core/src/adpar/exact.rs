//! `ADPaR-Exact`: the sweep-line exact solver (paper §4.1, Algorithm 2).
//!
//! The continuous search space is discretized by observing that an optimal
//! alternative parameter equals, on every axis, either the original threshold
//! (zero relaxation) or the relaxation value of some strategy — otherwise the
//! axis could be tightened without losing coverage, contradicting optimality
//! (paper, Lemma 2 / Theorem 4). The solver therefore sweeps the sorted
//! candidate relaxation values of the quality axis; for each quality
//! position it sweeps the candidate cost values while maintaining, in a
//! bounded max-heap, the `k` smallest latency relaxations of the strategies
//! already admitted by the (quality, cost) prefix. The `k`-th smallest
//! latency is exactly the cheapest latency relaxation completing a feasible
//! triple, so every candidate triple the optimum could use is examined, with
//! monotone pruning on the accumulated squared distance.

use std::collections::BinaryHeap;

use stratrec_geometry::Point3;

use crate::adpar::{AdparProblem, AdparSolution, AdparSolver};
use crate::error::StratRecError;

/// The exact sweep-line solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdparExact;

impl AdparSolver for AdparExact {
    fn solve(&self, problem: &AdparProblem<'_>) -> Result<AdparSolution, StratRecError> {
        problem.validate()?;
        let relaxations = problem.relaxations();
        let k = problem.k;

        // Candidate relaxation values per axis: zero plus every strategy's
        // requirement, deduplicated and sorted ascending.
        let quality_candidates = candidate_values(relaxations.iter().map(|r| r.x));
        let cost_candidates = candidate_values(relaxations.iter().map(|r| r.y));

        // Strategies sorted by quality relaxation so the outer sweep can
        // admit them incrementally.
        let mut by_quality: Vec<usize> = (0..relaxations.len()).collect();
        by_quality.sort_by(|&a, &b| relaxations[a].x.total_cmp(&relaxations[b].x));

        let mut best: Option<(f64, Point3)> = None;

        let mut admitted_by_quality: Vec<usize> = Vec::with_capacity(relaxations.len());
        let mut quality_cursor = 0;

        for &rq in &quality_candidates {
            let rq_sq = rq * rq;
            if let Some((best_sq, _)) = best {
                if rq_sq >= best_sq {
                    break; // further quality relaxation can only cost more
                }
            }
            // Admit every strategy whose quality relaxation is ≤ rq.
            while quality_cursor < by_quality.len()
                && relaxations[by_quality[quality_cursor]].x <= rq + 1e-12
            {
                admitted_by_quality.push(by_quality[quality_cursor]);
                quality_cursor += 1;
            }
            if admitted_by_quality.len() < k {
                continue;
            }

            // Inner sweep over cost: admit strategies in ascending cost
            // relaxation, maintaining the k smallest latency relaxations.
            let mut by_cost: Vec<usize> = admitted_by_quality.clone();
            by_cost.sort_by(|&a, &b| relaxations[a].y.total_cmp(&relaxations[b].y));
            // Bounded max-heap holding the k smallest latency relaxations of
            // the strategies admitted so far; its top is the k-th smallest.
            let mut max_heap: BinaryHeap<OrdF64> = BinaryHeap::with_capacity(k + 1);
            let mut cost_cursor = 0;

            for &rc in &cost_candidates {
                let prefix_sq = rq_sq + rc * rc;
                if let Some((best_sq, _)) = best {
                    if prefix_sq >= best_sq {
                        break;
                    }
                }
                while cost_cursor < by_cost.len()
                    && relaxations[by_cost[cost_cursor]].y <= rc + 1e-12
                {
                    let rl = relaxations[by_cost[cost_cursor]].z;
                    if max_heap.len() < k {
                        max_heap.push(OrdF64(rl));
                    } else if let Some(&OrdF64(worst)) = max_heap.peek() {
                        if rl < worst {
                            max_heap.pop();
                            max_heap.push(OrdF64(rl));
                        }
                    }
                    cost_cursor += 1;
                }
                if max_heap.len() < k {
                    continue;
                }
                let rl = max_heap
                    .peek()
                    .expect("heap holds exactly k elements here")
                    .0;
                let total_sq = prefix_sq + rl * rl;
                let candidate = Point3::new(rq, rc, rl);
                let better = match best {
                    None => true,
                    Some((best_sq, _)) => total_sq < best_sq - 1e-15,
                };
                if better {
                    best = Some((total_sq, candidate));
                }
            }
        }

        let (_, relaxation) = best.expect(
            "validate() guarantees |S| >= k, so the fully relaxed corner is always feasible",
        );
        Ok(AdparSolution::from_relaxation(problem, relaxation))
    }

    fn name(&self) -> &'static str {
        "ADPaR-Exact"
    }
}

/// Sorted, deduplicated candidate relaxation values for one axis, always
/// including zero (no relaxation). Non-finite values — the retired-slot
/// sentinel of catalog-backed problems — are discarded: a retired strategy
/// can never sit on an optimal boundary.
fn candidate_values(values: impl Iterator<Item = f64>) -> Vec<f64> {
    let mut candidates: Vec<f64> = std::iter::once(0.0)
        .chain(values.filter(|v| v.is_finite()))
        .collect();
    candidates.sort_by(f64::total_cmp);
    candidates.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);
    candidates
}

/// Total-ordered f64 wrapper for the latency heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DeploymentParameters, DeploymentRequest, Strategy, TaskType};

    fn request(q: f64, c: f64, l: f64) -> DeploymentRequest {
        DeploymentRequest::new(
            0,
            TaskType::SentenceTranslation,
            DeploymentParameters::clamped(q, c, l),
        )
    }

    fn strategies_from(params: &[(f64, f64, f64)]) -> Vec<Strategy> {
        params
            .iter()
            .enumerate()
            .map(|(i, &(q, c, l))| {
                Strategy::from_params(i as u64, DeploymentParameters::clamped(q, c, l))
            })
            .collect()
    }

    #[test]
    fn running_example_d1_matches_paper() {
        // Paper §2.3: for d1 = (0.4, 0.17, 0.28) the alternative should be
        // (0.4, 0.5, 0.28) with strategies s1, s2, s3.
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let problem = AdparProblem::new(&requests[0], &strategies, 3);
        let solution = AdparExact.solve(&problem).unwrap();
        assert!((solution.alternative.quality - 0.4).abs() < 1e-9);
        assert!((solution.alternative.cost - 0.5).abs() < 1e-9);
        assert!((solution.alternative.latency - 0.28).abs() < 1e-9);
        assert_eq!(solution.strategy_indices, vec![0, 1, 2]);
        assert!((solution.distance - 0.33).abs() < 1e-9);
    }

    #[test]
    fn running_example_d2_is_solved_optimally() {
        // For d2 = (0.8, 0.2, 0.28) the optimum covers {s2, s3, s4} with
        // relaxation (0.05, 0.38, 0) and distance ≈ 0.3833. (The paper's
        // narration quotes (0.75, 0.5, 0.28) / {s1, s2, s3}, but that triple
        // covers only two of its own strategies per its Table 3 relaxation
        // values; the relaxation below is the true optimum of Equation 3 and
        // is verified against exhaustive search in the property tests.)
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let problem = AdparProblem::new(&requests[1], &strategies, 3);
        let solution = AdparExact.solve(&problem).unwrap();
        assert!((solution.alternative.quality - 0.75).abs() < 1e-9);
        assert!((solution.alternative.cost - 0.58).abs() < 1e-9);
        assert!((solution.alternative.latency - 0.28).abs() < 1e-9);
        assert_eq!(solution.strategy_indices, vec![1, 2, 3]);
        let expected = (0.05_f64.powi(2) + 0.38_f64.powi(2)).sqrt();
        assert!((solution.distance - expected).abs() < 1e-9);
    }

    #[test]
    fn zero_relaxation_when_request_is_already_satisfiable() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        // d3 is already satisfiable by 3 strategies: the alternative is d3 itself.
        let problem = AdparProblem::new(&requests[2], &strategies, 3);
        let solution = AdparExact.solve(&problem).unwrap();
        assert!(solution.distance < 1e-12);
        assert_eq!(solution.relaxation, Point3::origin());
        assert!(solution.strategy_indices.len() >= 3);
    }

    #[test]
    fn k_equal_to_strategy_count_requires_covering_everything() {
        let strategies = strategies_from(&[(0.9, 0.3, 0.2), (0.5, 0.6, 0.9), (0.7, 0.1, 0.5)]);
        let request = request(0.8, 0.2, 0.3);
        let problem = AdparProblem::new(&request, &strategies, 3);
        let solution = AdparExact.solve(&problem).unwrap();
        assert_eq!(solution.strategy_indices, vec![0, 1, 2]);
        // Required relaxation is the component-wise max over all strategies.
        assert!((solution.relaxation.x - 0.3).abs() < 1e-9);
        assert!((solution.relaxation.y - 0.4).abs() < 1e-9);
        assert!((solution.relaxation.z - 0.6).abs() < 1e-9);
    }

    #[test]
    fn latency_only_relaxation_is_found() {
        let strategies = strategies_from(&[(0.9, 0.1, 0.6), (0.9, 0.1, 0.7), (0.9, 0.1, 0.4)]);
        let request = request(0.8, 0.5, 0.3);
        let problem = AdparProblem::new(&request, &strategies, 2);
        let solution = AdparExact.solve(&problem).unwrap();
        assert!((solution.relaxation.x).abs() < 1e-12);
        assert!((solution.relaxation.y).abs() < 1e-12);
        assert!((solution.relaxation.z - 0.3).abs() < 1e-9);
        assert_eq!(solution.strategy_indices, vec![0, 2]);
    }

    #[test]
    fn trade_off_between_axes_picks_the_cheaper_combination() {
        // Covering two strategies either needs a large cost relaxation (0.5)
        // with zero quality, or a small quality (0.1) + small cost (0.1).
        let strategies = strategies_from(&[
            (0.8, 0.7, 0.1), // needs cost +0.5
            (0.7, 0.3, 0.1), // needs quality 0.1 and cost 0.1
            (0.8, 0.2, 0.1), // free
        ]);
        let request = request(0.8, 0.2, 0.3);
        let problem = AdparProblem::new(&request, &strategies, 2);
        let solution = AdparExact.solve(&problem).unwrap();
        assert!((solution.relaxation.x - 0.1).abs() < 1e-9);
        assert!((solution.relaxation.y - 0.1).abs() < 1e-9);
        assert_eq!(solution.strategy_indices, vec![1, 2]);
    }

    #[test]
    fn errors_are_propagated() {
        let strategies = strategies_from(&[(0.5, 0.5, 0.5)]);
        let r = request(0.9, 0.1, 0.1);
        assert!(matches!(
            AdparExact.solve(&AdparProblem::new(&r, &strategies, 0)),
            Err(StratRecError::ZeroCardinality)
        ));
        assert!(matches!(
            AdparExact.solve(&AdparProblem::new(&r, &strategies, 2)),
            Err(StratRecError::NotEnoughStrategies { .. })
        ));
    }

    #[test]
    fn solver_reports_its_name() {
        assert_eq!(AdparExact.name(), "ADPaR-Exact");
    }
}
