//! `ADPaR-Exact`: the sweep-line exact solver (paper §4.1, Algorithm 2).
//!
//! The continuous search space is discretized by observing that an optimal
//! alternative parameter equals, on every axis, either the original threshold
//! (zero relaxation) or the relaxation value of some strategy — otherwise the
//! axis could be tightened without losing coverage, contradicting optimality
//! (paper, Lemma 2 / Theorem 4). The solver therefore sweeps the sorted
//! candidate relaxation values of the quality axis; for each quality
//! position it sweeps the candidate cost values while maintaining, in a
//! bounded max-heap, the `k` smallest latency relaxations of the strategies
//! already admitted by the (quality, cost) prefix. The `k`-th smallest
//! latency is exactly the cheapest latency relaxation completing a feasible
//! triple, so every candidate triple the optimum could use is examined, with
//! monotone pruning on the accumulated squared distance.
//!
//! # Catalog-resident orders and zero-allocation batch solving
//!
//! The sweep needs the strategies in ascending quality- and cost-relaxation
//! order. Those orders are obtained through
//! [`AdparProblem::axis_order_into`]: catalog-backed problems **walk the
//! catalog's pre-sorted axis permutations** (relaxation is monotone in the
//! normalized coordinate) instead of sorting per problem, and the cost order
//! is computed **once** per solve — strategies admitted by the current
//! quality prefix are selected with an admission bitmask while walking it,
//! replacing the seed's per-quality-candidate `clone() + sort`
//! (`O(Q·|S| log |S|)` per problem) with `O(Q·|S| log k)` heap maintenance.
//! All of the solver's working memory lives in a reusable [`SolveScratch`]
//! — and the problem's relaxation buffer is reusable too
//! ([`AdparProblem::with_catalog_reusing`]) — so a batch fan-out driving
//! [`AdparExact::solve_with_scratch`] allocates nothing per problem in
//! steady state beyond the returned solution.

use std::collections::BinaryHeap;

use stratrec_geometry::{Axis, Point3};

use crate::adpar::{AdparProblem, AdparSolution, AdparSolver};
use crate::error::StratRecError;

/// The exact sweep-line solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdparExact;

/// Reusable working memory for [`AdparExact`]: axis orders, candidate
/// values, the admission bitmask and the bounded latency heap.
///
/// A fresh scratch is equivalent to a reused one — every buffer is cleared
/// and refilled per solve — so batch drivers keep one scratch per worker
/// thread and solve thousands of problems without allocating.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    /// Strategies in ascending quality-relaxation order.
    by_quality: Vec<usize>,
    /// Strategies in ascending cost-relaxation order (computed once per
    /// solve; the seed re-sorted the admitted set per quality candidate).
    by_cost: Vec<usize>,
    /// Candidate quality relaxation values, ascending and deduplicated.
    quality_candidates: Vec<f64>,
    /// Candidate cost relaxation values, ascending and deduplicated.
    cost_candidates: Vec<f64>,
    /// Whether each strategy is admitted by the current quality prefix.
    admitted: Vec<bool>,
    /// Bounded max-heap holding the `k` smallest latency relaxations of the
    /// admitted strategies in the current (quality, cost) prefix.
    heap: BinaryHeap<OrdF64>,
}

impl SolveScratch {
    /// Creates an empty scratch; buffers grow to the problem size on first
    /// use and are reused afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl AdparExact {
    /// [`AdparSolver::solve`] with caller-provided scratch buffers, for
    /// batch drivers that solve many problems back to back. The solution is
    /// identical to [`AdparSolver::solve`] regardless of the scratch's
    /// history.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::ZeroCardinality`] when `k = 0` and
    /// [`StratRecError::NotEnoughStrategies`] when fewer than `k` live
    /// strategies exist.
    pub fn solve_with_scratch(
        &self,
        problem: &AdparProblem<'_>,
        scratch: &mut SolveScratch,
    ) -> Result<AdparSolution, StratRecError> {
        problem.validate()?;
        let relaxations = problem.relaxations();
        let k = problem.k;

        // Sweep orders: catalog-resident (no sort) or sorted once here.
        problem.axis_order_into(Axis::X, &mut scratch.by_quality);
        problem.axis_order_into(Axis::Y, &mut scratch.by_cost);

        // Candidate relaxation values per axis: zero plus every strategy's
        // requirement. The axis orders already yield them ascending, so
        // deduplication is a single linear pass.
        fill_candidate_values(
            &mut scratch.quality_candidates,
            scratch.by_quality.iter().map(|&i| relaxations[i].x),
        );
        fill_candidate_values(
            &mut scratch.cost_candidates,
            scratch.by_cost.iter().map(|&i| relaxations[i].y),
        );

        scratch.admitted.clear();
        scratch.admitted.resize(relaxations.len(), false);

        let mut best: Option<(f64, Point3)> = None;
        let mut admitted_count = 0_usize;
        let mut quality_cursor = 0_usize;

        for &rq in &scratch.quality_candidates {
            let rq_sq = rq * rq;
            if let Some((best_sq, _)) = best {
                if rq_sq >= best_sq {
                    break; // further quality relaxation can only cost more
                }
            }
            // Admit every strategy whose quality relaxation is ≤ rq.
            while quality_cursor < scratch.by_quality.len()
                && relaxations[scratch.by_quality[quality_cursor]].x <= rq + 1e-12
            {
                scratch.admitted[scratch.by_quality[quality_cursor]] = true;
                admitted_count += 1;
                quality_cursor += 1;
            }
            if admitted_count < k {
                continue;
            }

            // Inner sweep over cost: walk the precomputed cost order,
            // keeping the k smallest latency relaxations of the admitted
            // strategies in a bounded max-heap (its top is the k-th
            // smallest).
            scratch.heap.clear();
            let mut cost_cursor = 0_usize;

            for &rc in &scratch.cost_candidates {
                let prefix_sq = rq_sq + rc * rc;
                if let Some((best_sq, _)) = best {
                    if prefix_sq >= best_sq {
                        break;
                    }
                }
                while cost_cursor < scratch.by_cost.len()
                    && relaxations[scratch.by_cost[cost_cursor]].y <= rc + 1e-12
                {
                    let idx = scratch.by_cost[cost_cursor];
                    if scratch.admitted[idx] {
                        let rl = relaxations[idx].z;
                        if scratch.heap.len() < k {
                            scratch.heap.push(OrdF64(rl));
                        } else if let Some(&OrdF64(worst)) = scratch.heap.peek() {
                            if rl < worst {
                                scratch.heap.pop();
                                scratch.heap.push(OrdF64(rl));
                            }
                        }
                    }
                    cost_cursor += 1;
                }
                if scratch.heap.len() < k {
                    continue;
                }
                let rl = scratch
                    .heap
                    .peek()
                    .expect("heap holds exactly k elements here")
                    .0;
                let total_sq = prefix_sq + rl * rl;
                let candidate = Point3::new(rq, rc, rl);
                let better = match best {
                    None => true,
                    Some((best_sq, _)) => total_sq < best_sq - 1e-15,
                };
                if better {
                    best = Some((total_sq, candidate));
                }
            }
        }

        let (_, relaxation) = best.expect(
            "validate() guarantees |S| >= k, so the fully relaxed corner is always feasible",
        );
        Ok(AdparSolution::from_relaxation(problem, relaxation))
    }
}

impl AdparSolver for AdparExact {
    fn solve(&self, problem: &AdparProblem<'_>) -> Result<AdparSolution, StratRecError> {
        self.solve_with_scratch(problem, &mut SolveScratch::new())
    }

    fn name(&self) -> &'static str {
        "ADPaR-Exact"
    }
}

/// Fills `out` with the candidate relaxation values for one axis: zero (no
/// relaxation) followed by every strategy's requirement, deduplicated with a
/// `1e-12` tolerance in one pass.
///
/// `values` must arrive ascending (the axis orders guarantee it), which
/// makes the dedup a simple "keep when strictly above the last kept value"
/// scan — a value of exactly `0.0` (a strategy already satisfying the axis)
/// collapses into the leading zero by the same rule, rather than relying on
/// the ordering quirks of an epsilon `dedup_by`. Non-finite values — the
/// retired-slot sentinel of catalog-backed problems — are discarded: a
/// retired strategy can never sit on an optimal boundary.
fn fill_candidate_values(out: &mut Vec<f64>, values: impl Iterator<Item = f64>) {
    out.clear();
    out.push(0.0);
    let mut last = 0.0_f64;
    for v in values {
        debug_assert!(v.is_nan() || v >= 0.0, "relaxations are non-negative");
        if v.is_finite() && v > last + 1e-12 {
            out.push(v);
            last = v;
        }
    }
}

/// Total-ordered f64 wrapper for the latency heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::StrategyCatalog;
    use crate::model::{DeploymentParameters, DeploymentRequest, Strategy, TaskType};

    fn request(q: f64, c: f64, l: f64) -> DeploymentRequest {
        DeploymentRequest::new(
            0,
            TaskType::SentenceTranslation,
            DeploymentParameters::clamped(q, c, l),
        )
    }

    fn strategies_from(params: &[(f64, f64, f64)]) -> Vec<Strategy> {
        params
            .iter()
            .enumerate()
            .map(|(i, &(q, c, l))| {
                Strategy::from_params(i as u64, DeploymentParameters::clamped(q, c, l))
            })
            .collect()
    }

    #[test]
    fn running_example_d1_matches_paper() {
        // Paper §2.3: for d1 = (0.4, 0.17, 0.28) the alternative should be
        // (0.4, 0.5, 0.28) with strategies s1, s2, s3.
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let problem = AdparProblem::new(&requests[0], &strategies, 3);
        let solution = AdparExact.solve(&problem).unwrap();
        assert!((solution.alternative.quality - 0.4).abs() < 1e-9);
        assert!((solution.alternative.cost - 0.5).abs() < 1e-9);
        assert!((solution.alternative.latency - 0.28).abs() < 1e-9);
        assert_eq!(solution.strategy_indices, vec![0, 1, 2]);
        assert!((solution.distance - 0.33).abs() < 1e-9);
    }

    #[test]
    fn running_example_d2_is_solved_optimally() {
        // For d2 = (0.8, 0.2, 0.28) the optimum covers {s2, s3, s4} with
        // relaxation (0.05, 0.38, 0) and distance ≈ 0.3833. (The paper's
        // narration quotes (0.75, 0.5, 0.28) / {s1, s2, s3}, but that triple
        // covers only two of its own strategies per its Table 3 relaxation
        // values; the relaxation below is the true optimum of Equation 3 and
        // is verified against exhaustive search in the property tests.)
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let problem = AdparProblem::new(&requests[1], &strategies, 3);
        let solution = AdparExact.solve(&problem).unwrap();
        assert!((solution.alternative.quality - 0.75).abs() < 1e-9);
        assert!((solution.alternative.cost - 0.58).abs() < 1e-9);
        assert!((solution.alternative.latency - 0.28).abs() < 1e-9);
        assert_eq!(solution.strategy_indices, vec![1, 2, 3]);
        let expected = (0.05_f64.powi(2) + 0.38_f64.powi(2)).sqrt();
        assert!((solution.distance - expected).abs() < 1e-9);
    }

    #[test]
    fn zero_relaxation_when_request_is_already_satisfiable() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        // d3 is already satisfiable by 3 strategies: the alternative is d3 itself.
        let problem = AdparProblem::new(&requests[2], &strategies, 3);
        let solution = AdparExact.solve(&problem).unwrap();
        assert!(solution.distance < 1e-12);
        assert_eq!(solution.relaxation, Point3::origin());
        assert!(solution.strategy_indices.len() >= 3);
    }

    #[test]
    fn k_equal_to_strategy_count_requires_covering_everything() {
        let strategies = strategies_from(&[(0.9, 0.3, 0.2), (0.5, 0.6, 0.9), (0.7, 0.1, 0.5)]);
        let request = request(0.8, 0.2, 0.3);
        let problem = AdparProblem::new(&request, &strategies, 3);
        let solution = AdparExact.solve(&problem).unwrap();
        assert_eq!(solution.strategy_indices, vec![0, 1, 2]);
        // Required relaxation is the component-wise max over all strategies.
        assert!((solution.relaxation.x - 0.3).abs() < 1e-9);
        assert!((solution.relaxation.y - 0.4).abs() < 1e-9);
        assert!((solution.relaxation.z - 0.6).abs() < 1e-9);
    }

    #[test]
    fn latency_only_relaxation_is_found() {
        let strategies = strategies_from(&[(0.9, 0.1, 0.6), (0.9, 0.1, 0.7), (0.9, 0.1, 0.4)]);
        let request = request(0.8, 0.5, 0.3);
        let problem = AdparProblem::new(&request, &strategies, 2);
        let solution = AdparExact.solve(&problem).unwrap();
        assert!((solution.relaxation.x).abs() < 1e-12);
        assert!((solution.relaxation.y).abs() < 1e-12);
        assert!((solution.relaxation.z - 0.3).abs() < 1e-9);
        assert_eq!(solution.strategy_indices, vec![0, 2]);
    }

    #[test]
    fn trade_off_between_axes_picks_the_cheaper_combination() {
        // Covering two strategies either needs a large cost relaxation (0.5)
        // with zero quality, or a small quality (0.1) + small cost (0.1).
        let strategies = strategies_from(&[
            (0.8, 0.7, 0.1), // needs cost +0.5
            (0.7, 0.3, 0.1), // needs quality 0.1 and cost 0.1
            (0.8, 0.2, 0.1), // free
        ]);
        let request = request(0.8, 0.2, 0.3);
        let problem = AdparProblem::new(&request, &strategies, 2);
        let solution = AdparExact.solve(&problem).unwrap();
        assert!((solution.relaxation.x - 0.1).abs() < 1e-9);
        assert!((solution.relaxation.y - 0.1).abs() < 1e-9);
        assert_eq!(solution.strategy_indices, vec![1, 2]);
    }

    #[test]
    fn errors_are_propagated() {
        let strategies = strategies_from(&[(0.5, 0.5, 0.5)]);
        let r = request(0.9, 0.1, 0.1);
        assert!(matches!(
            AdparExact.solve(&AdparProblem::new(&r, &strategies, 0)),
            Err(StratRecError::ZeroCardinality)
        ));
        assert!(matches!(
            AdparExact.solve(&AdparProblem::new(&r, &strategies, 2)),
            Err(StratRecError::NotEnoughStrategies { .. })
        ));
    }

    #[test]
    fn solver_reports_its_name() {
        assert_eq!(AdparExact.name(), "ADPaR-Exact");
    }

    #[test]
    fn candidate_values_dedup_zero_and_near_zero_in_one_pass() {
        let mut out = Vec::new();
        // An exact-zero relaxation (strategy already satisfying the axis)
        // must collapse into the leading zero, and near-zero values within
        // the 1e-12 tolerance must vanish with it — no dependence on which
        // element an epsilon dedup_by happens to keep.
        fill_candidate_values(
            &mut out,
            [0.0, 0.0, 5e-13, 0.3, 0.3 + 5e-13, 0.7].into_iter(),
        );
        assert_eq!(out, vec![0.0, 0.3, 0.7]);

        // Values just outside the tolerance survive.
        fill_candidate_values(&mut out, [2e-12, 0.5].into_iter());
        assert_eq!(out, vec![0.0, 2e-12, 0.5]);

        // Chained near-duplicates dedup against the last *kept* value.
        fill_candidate_values(&mut out, [0.1, 0.1 + 8e-13, 0.1 + 2e-12].into_iter());
        assert_eq!(out, vec![0.0, 0.1, 0.1 + 2e-12]);

        // The retired-slot sentinel is discarded wherever it appears.
        fill_candidate_values(&mut out, [0.2, f64::INFINITY].into_iter());
        assert_eq!(out, vec![0.0, 0.2]);

        // No strategies: the zero candidate alone remains.
        fill_candidate_values(&mut out, std::iter::empty());
        assert_eq!(out, vec![0.0]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // Solving different problems through one scratch must give the same
        // solutions as fresh scratches (and as the plain trait entry point).
        let mut scratch = SolveScratch::new();
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        for request in &requests {
            let problem = AdparProblem::new(request, &strategies, 3);
            let reused = AdparExact
                .solve_with_scratch(&problem, &mut scratch)
                .unwrap();
            let fresh = AdparExact.solve(&problem).unwrap();
            assert_eq!(reused, fresh, "request {:?}", request.id);
        }
    }

    #[test]
    fn catalog_problems_solve_identically_to_plain_problems() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let catalog = StrategyCatalog::from_slice(&strategies);
        let mut scratch = SolveScratch::new();
        for request in &requests {
            let plain = AdparProblem::new(request, &strategies, 3);
            let indexed = AdparProblem::with_catalog(request, &catalog, 3);
            let expected = AdparExact.solve(&plain).unwrap();
            assert_eq!(AdparExact.solve(&indexed).unwrap(), expected);
            assert_eq!(
                AdparExact
                    .solve_with_scratch(&indexed, &mut scratch)
                    .unwrap(),
                expected
            );
        }
    }
}
