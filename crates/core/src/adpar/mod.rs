//! Alternative deployment-parameter recommendation (ADPaR, paper §4).
//!
//! When the Aggregator cannot find `k` strategies satisfying a deployment
//! request `d`, ADPaR recommends the *closest* alternative parameters `d′`
//! (in Euclidean distance, Equation 3) for which `k` strategies do exist.
//! After normalization (quality inverted so smaller is better everywhere)
//! each strategy is a point in 3-D space and `d′` must *cover* at least `k`
//! of those points.
//!
//! The module provides the paper's four solvers behind one trait:
//!
//! | Solver | Paper name | Guarantee | Complexity |
//! |---|---|---|---|
//! | [`AdparExact`] | `ADPaR-Exact` | exact | `O(\|S\|² log k)` (paper reports `O(\|S\|³)`) |
//! | [`AdparBruteForce`] | `ADPaRB` | exact | exponential in `k` |
//! | [`AdparBaseline2`] | `Baseline2` | none (one dimension at a time) | `O(\|S\| log \|S\|)` |
//! | [`AdparBaseline3`] | `Baseline3` | none (R-tree MBB corners) | `O(\|S\| log \|S\|)` |

mod baseline2;
mod baseline3;
mod brute;
mod exact;
pub mod trace;

pub use baseline2::AdparBaseline2;
pub use baseline3::AdparBaseline3;
pub use brute::AdparBruteForce;
pub use exact::{AdparExact, SolveScratch};

use serde::{Deserialize, Serialize};
use stratrec_geometry::{Axis, Point3};

use crate::catalog::StrategyCatalog;
use crate::error::StratRecError;
use crate::model::{DeploymentParameters, DeploymentRequest, Strategy};

/// An ADPaR problem instance: one unsatisfied request, the strategy set and
/// the cardinality constraint `k`.
///
/// The per-strategy relaxation vectors are computed **once** at construction
/// and cached (the seed recomputed them on every [`Self::relaxations`] /
/// [`Self::covered_by`] call). Problems built with [`Self::with_catalog`]
/// additionally share the catalog's pre-normalized points and R-tree, which
/// lets [`AdparBaseline3`] skip its per-solve bulk load.
///
/// Over a churned catalog, retired slots carry the [`retired_relaxation`]
/// sentinel (infinite on every axis), so no solver can ever cover or report
/// them; [`Self::validate`] counts live strategies only. The cached
/// relaxations are valid for exactly one catalog [`epoch`]: the problem
/// borrows the catalog, so Rust's borrow rules already prevent mutation
/// while the problem is alive, and [`Self::catalog_epoch`] lets any derived
/// cache that outlives the borrow invalidate on the next epoch bump. A
/// problem re-pinned at an older epoch ([`Self::pinned_at_epoch`], the
/// cache-replay path) fails [`Self::validate`] with the typed
/// [`StratRecError::StaleCatalog`] instead of silently reusing stale slot
/// references; solutions that outlive a
/// [`compact()`](StrategyCatalog::compact) are renumbered with
/// [`AdparSolution::remap`].
///
/// [`epoch`]: StrategyCatalog::epoch
#[derive(Debug, Clone)]
pub struct AdparProblem<'a> {
    /// The request whose parameters need relaxing.
    pub request: &'a DeploymentRequest,
    /// All strategy slots of the platform (retired slots included when built
    /// over a churned catalog — their relaxations are the infinite
    /// sentinel).
    pub strategies: &'a [Strategy],
    /// Number of strategies the alternative parameters must admit.
    pub k: usize,
    /// Cached per-strategy relaxation vectors (paper §4.1, step 1).
    relaxations: Vec<Point3>,
    /// Shared catalog, when the problem was built from one.
    catalog: Option<&'a StrategyCatalog>,
    /// Catalog epoch the relaxations were computed at (0 without a catalog).
    catalog_epoch: u64,
}

/// Relaxation sentinel for retired catalog slots: infinite on every axis, so
/// it is never covered by any finite relaxation and never admitted by any
/// sweep.
#[must_use]
pub fn retired_relaxation() -> Point3 {
    Point3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY)
}

impl<'a> AdparProblem<'a> {
    /// Creates a problem instance over a plain strategy slice.
    #[must_use]
    pub fn new(request: &'a DeploymentRequest, strategies: &'a [Strategy], k: usize) -> Self {
        let relaxations = compute_relaxations(request, strategies);
        Self {
            request,
            strategies,
            k,
            relaxations,
            catalog: None,
            catalog_epoch: 0,
        }
    }

    /// Creates a problem instance over a shared [`StrategyCatalog`],
    /// reusing its pre-normalized points and R-tree index. The solution of
    /// every solver is identical to the plain [`Self::new`] construction
    /// over the catalog's **live** strategies (retired slots get the
    /// infinite sentinel and are transparent to every solver).
    #[must_use]
    pub fn with_catalog(
        request: &'a DeploymentRequest,
        catalog: &'a StrategyCatalog,
        k: usize,
    ) -> Self {
        Self::with_catalog_reusing(request, catalog, k, Vec::new())
    }

    /// [`Self::with_catalog`] filling a caller-provided relaxation buffer
    /// (cleared first) instead of allocating one, so batch drivers that
    /// solve problems back to back — recover the buffer with
    /// [`Self::into_relaxations`] — allocate the `O(slot_count)` vector
    /// once per worker rather than once per problem.
    #[must_use]
    pub fn with_catalog_reusing(
        request: &'a DeploymentRequest,
        catalog: &'a StrategyCatalog,
        k: usize,
        mut relaxations: Vec<Point3>,
    ) -> Self {
        let strategies = catalog.strategies();
        let d = &request.params;
        relaxations.clear();
        relaxations.extend(strategies.iter().enumerate().map(|(slot, s)| {
            if catalog.is_live(slot) {
                relaxation_of(&s.params, d)
            } else {
                retired_relaxation()
            }
        }));
        Self {
            request,
            strategies,
            k,
            relaxations,
            catalog: Some(catalog),
            catalog_epoch: catalog.epoch(),
        }
    }

    /// Consumes the problem, returning its relaxation buffer for reuse in
    /// [`Self::with_catalog_reusing`].
    #[must_use]
    pub fn into_relaxations(self) -> Vec<Point3> {
        self.relaxations
    }

    /// The shared catalog this problem was built from, if any.
    #[must_use]
    pub fn catalog(&self) -> Option<&'a StrategyCatalog> {
        self.catalog
    }

    /// The catalog epoch the cached relaxations were computed at (0 for
    /// plain-slice problems). Caches keyed by this value must be discarded
    /// once [`StrategyCatalog::epoch`] moves past it.
    #[must_use]
    pub fn catalog_epoch(&self) -> u64 {
        self.catalog_epoch
    }

    /// Re-pins the problem's cached state at `epoch` — for caches that
    /// replay relaxations or slot sets captured at an earlier catalog epoch.
    /// If the catalog has moved past that epoch (any insert, retire or
    /// compaction since), [`Self::validate`] — and therefore every solver —
    /// fails with the typed [`StratRecError::StaleCatalog`] instead of
    /// silently reporting slot numbers the catalog may have renumbered.
    #[must_use]
    pub fn pinned_at_epoch(mut self, epoch: u64) -> Self {
        if self.catalog.is_some() {
            self.catalog_epoch = epoch;
        }
        self
    }

    /// Number of strategies a relaxation could ever cover: the catalog's
    /// live count, or the full slice length for plain problems.
    #[must_use]
    pub fn available_strategies(&self) -> usize {
        self.catalog
            .map_or(self.strategies.len(), StrategyCatalog::len)
    }

    /// Validates the instance: the cached state matches the catalog's
    /// current epoch, `k ≥ 1` and at least `k` **live** strategies exist.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::StaleCatalog`] when the problem is pinned at
    /// an epoch the catalog has moved past (only reachable through the
    /// [`Self::pinned_at_epoch`] cache-replay path — a freshly built problem
    /// freezes the catalog through its borrow),
    /// [`StratRecError::ZeroCardinality`] or
    /// [`StratRecError::NotEnoughStrategies`].
    pub fn validate(&self) -> Result<(), StratRecError> {
        if let Some(catalog) = self.catalog {
            let found = catalog.epoch();
            if found != self.catalog_epoch {
                return Err(StratRecError::StaleCatalog {
                    expected: self.catalog_epoch,
                    found,
                });
            }
        }
        if self.k == 0 {
            return Err(StratRecError::ZeroCardinality);
        }
        let available = self.available_strategies();
        if available < self.k {
            return Err(StratRecError::NotEnoughStrategies {
                available,
                requested: self.k,
            });
        }
        Ok(())
    }

    /// The per-strategy relaxation vectors (paper §4.1, step 1): how much
    /// each parameter of the request must move for the strategy to become
    /// admissible, expressed in the normalized minimization space. A zero
    /// component means no relaxation is needed on that axis.
    ///
    /// Axis mapping: `x` = quality relaxation (decrease of the quality lower
    /// bound), `y` = cost relaxation (increase of the budget), `z` = latency
    /// relaxation (increase of the deadline).
    ///
    /// Computed once at construction; this accessor is free.
    #[must_use]
    pub fn relaxations(&self) -> &[Point3] {
        &self.relaxations
    }

    /// Converts a chosen relaxation vector back into concrete alternative
    /// deployment parameters.
    #[must_use]
    pub fn apply_relaxation(&self, relaxation: Point3) -> DeploymentParameters {
        let d = &self.request.params;
        DeploymentParameters::clamped(
            d.quality - relaxation.x,
            d.cost + relaxation.y,
            d.latency + relaxation.z,
        )
    }

    /// Writes into `out` the strategy indices a sweep may ever admit, in
    /// ascending order of their relaxation on `axis` (ties broken
    /// deterministically).
    ///
    /// Catalog-backed problems **walk the catalog's pre-sorted axis order**
    /// instead of sorting: the relaxation `max(0, coord − threshold)` is
    /// monotone in the normalized coordinate, so the catalog's
    /// coordinate-ascending live order is a relaxation-ascending order of
    /// exactly the admissible (live) slots — the zero-clamped prefix only
    /// collapses distinct coordinates into ties, which sweeps are
    /// insensitive to. Plain-slice problems fall back to an `O(|S| log
    /// |S|)` sort; retired-slot sentinels (infinite relaxations) sort last
    /// there and are never admitted by a finite sweep position.
    pub fn axis_order_into(&self, axis: Axis, out: &mut Vec<usize>) {
        if let Some(catalog) = self.catalog {
            catalog.axis_order_into(axis, out);
            return;
        }
        out.clear();
        out.extend(0..self.relaxations.len());
        out.sort_unstable_by(|&a, &b| {
            self.relaxations[a]
                .coord(axis)
                .total_cmp(&self.relaxations[b].coord(axis))
                .then(a.cmp(&b))
        });
    }

    /// Indices of the strategies covered by a relaxation vector (those whose
    /// own relaxation is component-wise ≤ the given one). Retired catalog
    /// slots are never covered — their sentinel relaxation is infinite.
    #[must_use]
    pub fn covered_by(&self, relaxation: Point3) -> Vec<usize> {
        self.relaxations
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_covered_by(&relaxation, 1e-9))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Computes the per-strategy relaxation vectors of a request.
fn compute_relaxations(request: &DeploymentRequest, strategies: &[Strategy]) -> Vec<Point3> {
    let d = &request.params;
    strategies
        .iter()
        .map(|s| relaxation_of(&s.params, d))
        .collect()
}

/// The relaxation vector needed for a strategy with parameters `s` to become
/// admissible under a request with parameters `d`.
#[must_use]
pub fn relaxation_of(s: &DeploymentParameters, d: &DeploymentParameters) -> Point3 {
    Point3::new(
        (d.quality - s.quality).max(0.0),
        (s.cost - d.cost).max(0.0),
        (s.latency - d.latency).max(0.0),
    )
}

/// An ADPaR solution: the alternative parameters, the strategies they admit
/// and the distance to the original request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdparSolution {
    /// The recommended alternative deployment parameters.
    pub alternative: DeploymentParameters,
    /// The relaxation applied on each axis (quality, cost, latency).
    pub relaxation: Point3,
    /// Indices of the strategies admitted by the alternative parameters
    /// (at least `k`, sorted ascending).
    pub strategy_indices: Vec<usize>,
    /// Euclidean distance between the original and alternative parameters
    /// (the objective of Equation 3).
    pub distance: f64,
}

impl AdparSolution {
    /// Builds a solution from a chosen relaxation, recomputing coverage and
    /// distance from the problem instance so the fields stay consistent.
    #[must_use]
    pub fn from_relaxation(problem: &AdparProblem<'_>, relaxation: Point3) -> Self {
        let alternative = problem.apply_relaxation(relaxation);
        let mut strategy_indices = problem.covered_by(relaxation);
        strategy_indices.sort_unstable();
        Self {
            alternative,
            relaxation,
            strategy_indices,
            distance: relaxation.distance(&Point3::origin()),
        }
    }

    /// Whether the solution satisfies the cardinality constraint of
    /// `problem`.
    #[must_use]
    pub fn is_feasible_for(&self, problem: &AdparProblem<'_>) -> bool {
        self.strategy_indices.len() >= problem.k
    }

    /// Renumbers `strategy_indices` through a catalog compaction's
    /// [`SlotRemap`](crate::catalog::SlotRemap): a solution computed before
    /// the compaction stays valid under the new dense numbering (the
    /// parameters, relaxation and distance are untouched — compaction never
    /// changes the live set). Returns `None` when any admitted slot was
    /// reclaimed, i.e. the solution predates a retirement and must be
    /// re-solved; the indices stay ascending because the renumbering is
    /// order-preserving.
    #[must_use]
    pub fn remap(&self, remap: &crate::catalog::SlotRemap) -> Option<Self> {
        let strategy_indices = remap.remap_slots(&self.strategy_indices)?;
        Some(Self {
            alternative: self.alternative,
            relaxation: self.relaxation,
            strategy_indices,
            distance: self.distance,
        })
    }
}

/// A solver for the ADPaR problem.
pub trait AdparSolver {
    /// Computes alternative deployment parameters admitting at least `k`
    /// strategies.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::ZeroCardinality`] when `k = 0` and
    /// [`StratRecError::NotEnoughStrategies`] when fewer than `k` strategies
    /// exist (no relaxation can ever help).
    fn solve(&self, problem: &AdparProblem<'_>) -> Result<AdparSolution, StratRecError>;

    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TaskType;

    fn problem_fixture() -> (DeploymentRequest, Vec<Strategy>) {
        let strategies = crate::examples_data::running_example_strategies();
        let request = crate::examples_data::running_example_requests()[1].clone(); // d2
        (request, strategies)
    }

    #[test]
    fn validation_catches_bad_instances() {
        let (request, strategies) = problem_fixture();
        assert!(AdparProblem::new(&request, &strategies, 3)
            .validate()
            .is_ok());
        assert!(matches!(
            AdparProblem::new(&request, &strategies, 0).validate(),
            Err(StratRecError::ZeroCardinality)
        ));
        assert!(matches!(
            AdparProblem::new(&request, &strategies, 9).validate(),
            Err(StratRecError::NotEnoughStrategies {
                available: 4,
                requested: 9
            })
        ));
    }

    #[test]
    fn relaxations_match_paper_step_1() {
        // For d2 = (0.8, 0.2, 0.28) the paper's step-1 relaxation values are
        // {0.3, 0.05, 0, 0} on one axis and {0.05, 0.13, 0.3, 0.38} on the
        // other (Table 3), with zero latency relaxations.
        let (request, strategies) = problem_fixture();
        let problem = AdparProblem::new(&request, &strategies, 3);
        let rel = problem.relaxations();
        let quality: Vec<f64> = rel.iter().map(|r| (r.x * 100.0).round() / 100.0).collect();
        let cost: Vec<f64> = rel.iter().map(|r| (r.y * 100.0).round() / 100.0).collect();
        let latency: Vec<f64> = rel.iter().map(|r| r.z).collect();
        assert_eq!(quality, vec![0.3, 0.05, 0.0, 0.0]);
        assert_eq!(cost, vec![0.05, 0.13, 0.3, 0.38]);
        assert_eq!(latency, vec![0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn apply_relaxation_moves_each_bound_in_the_right_direction() {
        let (request, strategies) = problem_fixture();
        let problem = AdparProblem::new(&request, &strategies, 3);
        let alt = problem.apply_relaxation(Point3::new(0.05, 0.38, 0.0));
        assert!((alt.quality - 0.75).abs() < 1e-9);
        assert!((alt.cost - 0.58).abs() < 1e-9);
        assert!((alt.latency - 0.28).abs() < 1e-9);
    }

    #[test]
    fn coverage_grows_with_relaxation() {
        let (request, strategies) = problem_fixture();
        let problem = AdparProblem::new(&request, &strategies, 3);
        assert!(problem.covered_by(Point3::origin()).is_empty());
        assert_eq!(problem.covered_by(Point3::new(0.0, 0.3, 0.0)), vec![2]);
        assert_eq!(
            problem.covered_by(Point3::new(0.05, 0.38, 0.0)),
            vec![1, 2, 3]
        );
        assert_eq!(
            problem.covered_by(Point3::new(1.0, 1.0, 1.0)).len(),
            strategies.len()
        );
    }

    #[test]
    fn solution_from_relaxation_is_consistent() {
        let (request, strategies) = problem_fixture();
        let problem = AdparProblem::new(&request, &strategies, 3);
        let solution = AdparSolution::from_relaxation(&problem, Point3::new(0.05, 0.38, 0.0));
        assert!(solution.is_feasible_for(&problem));
        assert_eq!(solution.strategy_indices, vec![1, 2, 3]);
        let expected = (0.05_f64 * 0.05 + 0.38 * 0.38).sqrt();
        assert!((solution.distance - expected).abs() < 1e-12);
        assert!((solution.alternative.distance(&request.params) - expected).abs() < 1e-9);
    }

    #[test]
    fn relaxation_of_an_already_satisfying_strategy_is_zero() {
        let d = DeploymentParameters::clamped(0.4, 0.5, 0.5);
        let s = DeploymentParameters::clamped(0.8, 0.2, 0.3);
        assert_eq!(relaxation_of(&s, &d), Point3::origin());
    }

    #[test]
    fn stale_epoch_pins_fail_validation_with_a_typed_error() {
        let strategies = crate::examples_data::running_example_strategies();
        let request = crate::examples_data::running_example_requests()[1].clone();
        let mut catalog = crate::catalog::StrategyCatalog::from_slice(&strategies);
        catalog.insert(Strategy::from_params(
            9,
            DeploymentParameters::clamped(0.8, 0.3, 0.3),
        ));
        assert_eq!(catalog.epoch(), 1);

        // Fresh problems validate; re-pinning at the current epoch is a
        // no-op; re-pinning at an older epoch (a cache replaying state from
        // before the insert) surfaces the typed error through validate and
        // through every solver.
        let fresh = AdparProblem::with_catalog(&request, &catalog, 3);
        assert!(fresh.validate().is_ok());
        let repinned = AdparProblem::with_catalog(&request, &catalog, 3).pinned_at_epoch(1);
        assert!(repinned.validate().is_ok());
        let stale = AdparProblem::with_catalog(&request, &catalog, 3).pinned_at_epoch(0);
        assert_eq!(
            stale.validate(),
            Err(StratRecError::StaleCatalog {
                expected: 0,
                found: 1
            })
        );
        assert!(matches!(
            AdparExact.solve(&stale),
            Err(StratRecError::StaleCatalog { .. })
        ));
        // Plain-slice problems have no catalog to go stale against.
        let plain = AdparProblem::new(&request, &strategies, 3).pinned_at_epoch(42);
        assert!(plain.validate().is_ok());
    }

    #[test]
    fn solutions_remap_through_a_compaction() {
        let strategies = crate::examples_data::running_example_strategies();
        let request = crate::examples_data::running_example_requests()[1].clone();
        let mut catalog = crate::catalog::StrategyCatalog::from_slice(&strategies);
        assert!(catalog.retire(0));
        let before = AdparExact
            .solve(&AdparProblem::with_catalog(&request, &catalog, 3))
            .unwrap();

        let remap = catalog.compact();
        let remapped = before.remap(&remap).unwrap();
        assert_eq!(remapped.alternative, before.alternative);
        assert_eq!(remapped.relaxation, before.relaxation);
        assert_eq!(remapped.distance, before.distance);
        assert_eq!(
            remapped.strategy_indices,
            remap.remap_slots(&before.strategy_indices).unwrap()
        );
        // The remapped solution is exactly the post-compaction solve.
        let after = AdparExact
            .solve(&AdparProblem::with_catalog(&request, &catalog, 3))
            .unwrap();
        assert_eq!(remapped, after);

        // A solution referencing a reclaimed slot cannot be remapped.
        let stale = AdparSolution {
            strategy_indices: vec![0, 1],
            ..before
        };
        assert!(stale.remap(&remap).is_none());
    }

    #[test]
    fn problems_can_be_built_over_arbitrary_requests() {
        let strategies = crate::examples_data::running_example_strategies();
        let request = DeploymentRequest::new(
            99,
            TaskType::PuzzleSolving,
            DeploymentParameters::clamped(1.0, 0.0, 0.0),
        );
        let problem = AdparProblem::new(&request, &strategies, 2);
        // Every strategy needs relaxation on every axis for this extreme request.
        assert!(problem
            .relaxations()
            .iter()
            .all(|r| r.x > 0.0 && r.y > 0.0 && r.z > 0.0));
    }
}
