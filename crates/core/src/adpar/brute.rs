//! `ADPaRB`: the exhaustive reference solver (paper §5.2.1).
//!
//! Examines every subset of `k` strategies, computes the tightest alternative
//! parameters covering that subset (the component-wise maximum of the
//! subset's relaxation vectors) and returns the subset with the smallest
//! distance to the original request. Exponential in `k`; the paper only runs
//! it up to `|S| = 30`, and so should you — it exists to validate
//! `ADPaR-Exact` and to reproduce Figures 17(b) and 17(d).

use stratrec_geometry::Point3;

use crate::adpar::{AdparProblem, AdparSolution, AdparSolver};
use crate::error::StratRecError;

/// The exhaustive subset-enumeration solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdparBruteForce;

impl AdparSolver for AdparBruteForce {
    fn solve(&self, problem: &AdparProblem<'_>) -> Result<AdparSolution, StratRecError> {
        problem.validate()?;
        // Retired catalog slots carry an infinite sentinel relaxation; drop
        // them up front so the enumeration only visits live strategies
        // (validate() guarantees at least k of those).
        let relaxations: Vec<Point3> = problem
            .relaxations()
            .iter()
            .copied()
            .filter(|r| r.x.is_finite())
            .collect();
        let k = problem.k;

        let mut best: Option<(f64, Point3)> = None;
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        enumerate_subsets(
            &relaxations,
            k,
            0,
            Point3::origin(),
            &mut chosen,
            &mut |cover: Point3| {
                let dist_sq = cover.squared_distance(&Point3::origin());
                let better = match best {
                    None => true,
                    Some((best_sq, _)) => dist_sq < best_sq - 1e-15,
                };
                if better {
                    best = Some((dist_sq, cover));
                }
            },
        );

        let (_, relaxation) =
            best.expect("validate() guarantees at least one subset of size k exists");
        Ok(AdparSolution::from_relaxation(problem, relaxation))
    }

    fn name(&self) -> &'static str {
        "ADPaRB"
    }
}

/// Recursively enumerates all `k`-subsets, carrying the component-wise
/// maximum of the chosen relaxations, and calls `report` on each complete
/// subset's covering relaxation.
fn enumerate_subsets(
    relaxations: &[Point3],
    k: usize,
    start: usize,
    cover: Point3,
    chosen: &mut Vec<usize>,
    report: &mut impl FnMut(Point3),
) {
    if chosen.len() == k {
        report(cover);
        return;
    }
    let remaining_needed = k - chosen.len();
    // Not enough strategies left to complete the subset.
    if relaxations.len().saturating_sub(start) < remaining_needed {
        return;
    }
    for idx in start..relaxations.len() {
        chosen.push(idx);
        enumerate_subsets(
            relaxations,
            k,
            idx + 1,
            cover.component_max(&relaxations[idx]),
            chosen,
            report,
        );
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adpar::AdparExact;
    use crate::model::{DeploymentParameters, DeploymentRequest, Strategy, TaskType};
    use proptest::prelude::*;

    fn request(q: f64, c: f64, l: f64) -> DeploymentRequest {
        DeploymentRequest::new(
            0,
            TaskType::TextCreation,
            DeploymentParameters::clamped(q, c, l),
        )
    }

    fn strategies_from(params: &[(f64, f64, f64)]) -> Vec<Strategy> {
        params
            .iter()
            .enumerate()
            .map(|(i, &(q, c, l))| {
                Strategy::from_params(i as u64, DeploymentParameters::clamped(q, c, l))
            })
            .collect()
    }

    #[test]
    fn matches_paper_running_example() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        for (request, expected_distance) in [
            (&requests[0], 0.33),
            (&requests[1], (0.05_f64.powi(2) + 0.38_f64.powi(2)).sqrt()),
            (&requests[2], 0.0),
        ] {
            let problem = AdparProblem::new(request, &strategies, 3);
            let solution = AdparBruteForce.solve(&problem).unwrap();
            assert!(
                (solution.distance - expected_distance).abs() < 1e-9,
                "request {:?}",
                request.id
            );
            assert!(solution.is_feasible_for(&problem));
        }
    }

    #[test]
    fn errors_are_propagated() {
        let strategies = strategies_from(&[(0.5, 0.5, 0.5)]);
        let r = request(0.9, 0.1, 0.1);
        assert!(AdparBruteForce
            .solve(&AdparProblem::new(&r, &strategies, 0))
            .is_err());
        assert!(AdparBruteForce
            .solve(&AdparProblem::new(&r, &strategies, 5))
            .is_err());
        assert_eq!(AdparBruteForce.name(), "ADPaRB");
    }

    proptest! {
        // The central correctness property of the reproduction: the sweep-line
        // solver returns exactly the brute-force optimum on random instances.
        #[test]
        fn exact_solver_matches_brute_force(
            raw in proptest::collection::vec(
                (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
                1..9
            ),
            req in (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
            k in 1_usize..5,
        ) {
            prop_assume!(k <= raw.len());
            let strategies = strategies_from(&raw);
            let request = request(req.0, req.1, req.2);
            let problem = AdparProblem::new(&request, &strategies, k);
            let exact = AdparExact.solve(&problem).unwrap();
            let brute = AdparBruteForce.solve(&problem).unwrap();
            prop_assert!(
                (exact.distance - brute.distance).abs() < 1e-9,
                "exact {} vs brute {}", exact.distance, brute.distance
            );
            prop_assert!(exact.strategy_indices.len() >= k);
            prop_assert!(brute.strategy_indices.len() >= k);
        }

        #[test]
        fn brute_force_solution_always_covers_k(
            raw in proptest::collection::vec(
                (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
                1..8
            ),
            req in (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
            k in 1_usize..4,
        ) {
            prop_assume!(k <= raw.len());
            let strategies = strategies_from(&raw);
            let request = request(req.0, req.1, req.2);
            let problem = AdparProblem::new(&request, &strategies, k);
            let solution = AdparBruteForce.solve(&problem).unwrap();
            prop_assert!(solution.strategy_indices.len() >= k);
            // The alternative parameters really do admit the reported strategies.
            for &idx in &solution.strategy_indices {
                prop_assert!(strategies[idx].params.satisfies(&solution.alternative));
            }
        }
    }
}
