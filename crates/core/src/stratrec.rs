//! The StratRec middle layer (paper Figure 1, §2.2).
//!
//! [`StratRec`] wires the two modules together: the **Aggregator**
//! ([`BatchStrat`]) triages a batch of deployment requests against worker
//! availability and recommends `k` strategies for each satisfied request;
//! every unsatisfied request is then forwarded to **ADPaR** ([`AdparExact`])
//! which recommends the closest alternative deployment parameters for which
//! `k` strategies exist.
//!
//! Both stages run over a shared [`StrategyCatalog`] and execute on a
//! [`BatchEngine`]: eligibility is an R-tree box query instead of an
//! `O(|S|)` scan per request, the workforce-matrix rows are sharded across
//! a scoped thread pool, and the independent ADPaR problems of a batch fan
//! out in parallel with one reusable solver scratch per worker. Outputs are
//! identical to the sequential scan pipeline (see
//! `tests/catalog_parity.rs`).

use serde::{Deserialize, Serialize};

use std::sync::Arc;

use crate::adpar::AdparSolution;
use crate::availability::{AvailabilityPdf, WorkerAvailability};
use crate::batch::{BatchObjective, BatchOutcome, BatchStrat};
use crate::catalog::{
    CatalogDelta, DeltaSubscription, EpochSnapshot, ShardPlan, SnapshotReader, StrategyCatalog,
};
use crate::engine::BatchEngine;
use crate::error::StratRecError;
use crate::fairness::FairnessPolicy;
use crate::model::{DeploymentRequest, Strategy};
use crate::modeling::{ModelLibrary, StrategyModel};
use crate::workforce::{
    AggregationCache, AggregationMode, RequestRequirement, ShardedAggregationCache, WorkforceMatrix,
};

/// Configuration of the middle layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StratRecConfig {
    /// Number of strategies to recommend per request.
    pub k: usize,
    /// Platform-centric objective of the Aggregator.
    pub objective: BatchObjective,
    /// Workforce aggregation mode over the `k` recommended strategies.
    pub aggregation: AggregationMode,
}

impl Default for StratRecConfig {
    fn default() -> Self {
        Self {
            k: 3,
            objective: BatchObjective::Throughput,
            aggregation: AggregationMode::Sum,
        }
    }
}

/// The quality level a batch was served at. A streaming front-end under
/// backpressure can **degrade** the expensive exact ADPaR stage to the cheap
/// one-axis-at-a-time `Baseline2` solver; the Aggregator stage is identical
/// at both levels, so a degraded report differs from the full one only in
/// its [`AlternativeRecommendation`]s — and those are bit-identical to what
/// [`crate::adpar::AdparBaseline2`] computes standalone over the same
/// catalog state. Responses must carry this tag so callers can tell a
/// degraded answer from a full one; degradation is never silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ServiceQuality {
    /// The normal pipeline: exact ADPaR for every unsatisfied request.
    #[default]
    Full,
    /// The overload pipeline: `Baseline2` alternatives, same Aggregator.
    Degraded,
}

/// The alternative parameters recommended to one unsatisfied request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlternativeRecommendation {
    /// Index of the request in the input batch.
    pub request_index: usize,
    /// The ADPaR solution, or the error explaining why none exists (e.g. the
    /// platform has fewer than `k` strategies in total).
    pub solution: Result<AdparSolution, StratRecError>,
}

/// The full report produced for one batch of deployment requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratRecReport {
    /// Expected worker availability the batch was planned with.
    pub availability: WorkerAvailability,
    /// Outcome of the Aggregator (satisfied requests and their strategies).
    pub batch: BatchOutcome,
    /// Alternative parameters for every unsatisfied request, in the order of
    /// [`BatchOutcome::unsatisfied`].
    pub alternatives: Vec<AlternativeRecommendation>,
}

impl StratRecReport {
    /// Number of requests that received either direct recommendations or a
    /// feasible alternative.
    #[must_use]
    pub fn served_requests(&self) -> usize {
        self.batch.satisfied.len()
            + self
                .alternatives
                .iter()
                .filter(|a| a.solution.is_ok())
                .count()
    }
}

/// The optimization-driven middle layer between requesters, workers and the
/// platform.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StratRec {
    /// Middle-layer configuration.
    pub config: StratRecConfig,
    /// Batch executor sharding workforce-matrix rows and ADPaR solves
    /// across scoped threads (defaults to one worker per core).
    pub engine: BatchEngine,
    /// Column-shard count for the two-level aggregate; `0` or `1` selects
    /// the flat path. Kept private so the only way in is
    /// [`Self::with_shards`], which documents the bit-identity contract.
    #[serde(default)]
    shards: usize,
}

impl StratRec {
    /// Creates a middle layer with the given configuration and the default
    /// one-worker-per-core [`BatchEngine`].
    #[must_use]
    pub fn new(config: StratRecConfig) -> Self {
        Self {
            config,
            engine: BatchEngine::new(),
            shards: 0,
        }
    }

    /// Replaces the batch engine (e.g. [`BatchEngine::sequential`] for
    /// differential testing or a thread cap for co-tenanted services).
    #[must_use]
    pub fn with_engine(mut self, engine: BatchEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Serves aggregation through the **two-level sharded** path: each
    /// matrix row's top-k is computed per column shard
    /// ([`ShardPlan::uniform`] over the slot range, fanned out on the
    /// engine's threads) and k-way-merged into the global requirement.
    /// Reports are **bit-identical** to the flat path for every shard
    /// count — sharding changes wall-clock time and cache-repair locality,
    /// never an output bit. `0` or `1` restores the flat path.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The configured column-shard count (`0`/`1` = flat aggregation).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard plan the layer aggregates with at the given matrix width,
    /// or `None` on the flat path.
    fn shard_plan_for(&self, cols: usize) -> Option<ShardPlan> {
        (self.shards > 1).then(|| ShardPlan::uniform(self.shards, cols))
    }

    /// Aggregates `matrix` on the configured path: flat, or shard-local
    /// top-k + merge when shards are configured.
    fn aggregate_matrix(&self, matrix: &WorkforceMatrix) -> Vec<Option<RequestRequirement>> {
        match self.shard_plan_for(matrix.cols()) {
            Some(plan) => {
                self.engine
                    .aggregate_sharded(matrix, self.config.k, self.config.aggregation, &plan)
            }
            None => matrix.aggregate(self.config.k, self.config.aggregation),
        }
    }

    /// Processes a batch of deployment requests: estimates availability from
    /// the pdf, runs the Aggregator, and sends every unsatisfied request to
    /// ADPaR.
    ///
    /// Builds a temporary [`StrategyCatalog`] over `strategies`; callers
    /// serving many batches over the same strategy set should build the
    /// catalog once and use [`Self::process_batch_with_catalog`].
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a strategy has no fitted
    /// model in `models`.
    pub fn process_batch(
        &self,
        requests: &[DeploymentRequest],
        strategies: &[Strategy],
        models: &ModelLibrary,
        availability: &AvailabilityPdf,
    ) -> Result<StratRecReport, StratRecError> {
        let catalog = StrategyCatalog::from_slice(strategies);
        self.process_batch_with_catalog(requests, &catalog, models, availability)
    }

    /// Processes a batch over a shared, pre-indexed [`StrategyCatalog`] on
    /// the configured [`BatchEngine`]: the Aggregator answers eligibility
    /// through the catalog's R-tree with the workforce-matrix rows sharded
    /// across scoped threads, and the unsatisfied requests fan out to ADPaR
    /// in parallel with one reusable solver scratch per worker. Results are
    /// identical to the sequential scan pipeline and deterministic
    /// regardless of thread count.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a catalog strategy has
    /// no fitted model in `models`.
    pub fn process_batch_with_catalog(
        &self,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        availability: &AvailabilityPdf,
    ) -> Result<StratRecReport, StratRecError> {
        self.process_batch_with_catalog_at(
            requests,
            catalog,
            models,
            availability,
            ServiceQuality::Full,
        )
    }

    /// [`Self::process_batch_with_catalog`] at an explicit
    /// [`ServiceQuality`]: `Full` is the ordinary pipeline, `Degraded`
    /// answers every unsatisfied request with the cheap `Baseline2` solver
    /// instead of exact ADPaR. The Aggregator stage is identical at both
    /// levels, and the degraded alternatives are bit-identical to standalone
    /// [`crate::adpar::AdparBaseline2`] solves over the same catalog — this
    /// is the reference a streaming front-end's degraded answers are pinned
    /// against.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a catalog strategy has
    /// no fitted model in `models`.
    pub fn process_batch_with_catalog_at(
        &self,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        availability: &AvailabilityPdf,
        quality: ServiceQuality,
    ) -> Result<StratRecReport, StratRecError> {
        let expected = availability.expectation();
        let aggregator = BatchStrat::new(self.config.objective, self.config.aggregation);
        let matrix =
            self.engine
                .workforce_matrix(requests, catalog, models, aggregator.eligibility)?;
        let requirements = self.aggregate_matrix(&matrix);
        let batch = aggregator.select(requests, &requirements, expected);
        let alternatives = self.alternatives_at(requests, catalog, &batch, quality);
        Ok(StratRecReport {
            availability: expected,
            batch,
            alternatives,
        })
    }

    /// The ADPaR fan-out at the given quality level: exact solves at
    /// [`ServiceQuality::Full`], `Baseline2` solves at
    /// [`ServiceQuality::Degraded`]. Everything upstream (matrix,
    /// aggregation, selection) is quality-independent, which is what lets a
    /// serving session flip quality between calls without touching its
    /// cached state.
    fn alternatives_at(
        &self,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        batch: &BatchOutcome,
        quality: ServiceQuality,
    ) -> Vec<AlternativeRecommendation> {
        let solutions = match quality {
            ServiceQuality::Full => {
                self.engine
                    .solve_adpar_batch(requests, catalog, &batch.unsatisfied, self.config.k)
            }
            ServiceQuality::Degraded => self.engine.solve_adpar_batch_degraded(
                requests,
                catalog,
                &batch.unsatisfied,
                self.config.k,
            ),
        };
        batch
            .unsatisfied
            .iter()
            .zip(solutions)
            .map(|(&request_index, solution)| AlternativeRecommendation {
                request_index,
                solution,
            })
            .collect()
    }

    /// Processes the same **standing** batch of deployment requests across
    /// catalog churn epochs, maintaining the workforce matrix and its
    /// aggregation **incrementally** through `session` instead of
    /// recomputing them per call.
    ///
    /// The first call computes everything from scratch and registers a
    /// [`DeltaSubscription`] with the catalog; every later call drains the
    /// churn since the previous one ([`StrategyCatalog::take_delta`]),
    /// recomputes only the inserted-slot columns
    /// ([`BatchEngine::apply_matrix_delta`], sharded across the engine's
    /// threads), writes `∞` into retired columns in place, and repairs only
    /// the aggregation rows the churn can have moved
    /// ([`AggregationCache::repair`]) — epoch maintenance proportional to
    /// the churn rather than to `n · |S|`. The report is **identical** to
    /// [`Self::process_batch_with_catalog`] over the same catalog state
    /// (pinned by tests here and by the workload churn suite); the
    /// steady-state epoch allocates nothing for model collection (the
    /// session reuses one model buffer).
    ///
    /// Contract: one session follows one `(catalog, standing batch)` pair.
    /// The batch may change length (the session re-primes), but callers
    /// changing the *content* of an equally-sized batch, or switching
    /// catalogs, must call [`StratRecSession::reset`] (or
    /// [`StratRecSession::detach`]) first. A changed `k` or aggregation
    /// mode re-primes automatically.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a live catalog strategy
    /// (full compute) or an inserted live slot (incremental path) has no
    /// fitted model. On any error the session resets itself, so the next
    /// call recovers with a full recompute.
    pub fn process_batch_with_session(
        &self,
        requests: &[DeploymentRequest],
        catalog: &mut StrategyCatalog,
        models: &ModelLibrary,
        availability: &AvailabilityPdf,
        session: &mut StratRecSession,
    ) -> Result<StratRecReport, StratRecError> {
        self.process_batch_with_session_at(
            requests,
            catalog,
            models,
            availability,
            session,
            ServiceQuality::Full,
        )
    }

    /// [`Self::process_batch_with_session`] at an explicit
    /// [`ServiceQuality`]. The session's matrix, aggregation cache and delta
    /// subscription are quality-independent — only the ADPaR fan-out
    /// differs — so a front-end flipping between `Full` and `Degraded`
    /// between calls reuses the standing incremental state as if the
    /// quality never changed: no re-prime, no extra subscriptions.
    ///
    /// # Errors
    ///
    /// As [`Self::process_batch_with_session`].
    pub fn process_batch_with_session_at(
        &self,
        requests: &[DeploymentRequest],
        catalog: &mut StrategyCatalog,
        models: &ModelLibrary,
        availability: &AvailabilityPdf,
        session: &mut StratRecSession,
        quality: ServiceQuality,
    ) -> Result<StratRecReport, StratRecError> {
        let expected = availability.expectation();
        let aggregator = BatchStrat::new(self.config.objective, self.config.aggregation);
        if let Err(error) = self.sync_session(requests, catalog, models, &aggregator, session) {
            session.detach(catalog);
            return Err(error);
        }
        let cache = session
            .cache
            .as_ref()
            .expect("sync_session leaves the session primed");
        let batch = aggregator.select(requests, cache.requirements(), expected);
        let alternatives = self.alternatives_at(requests, catalog, &batch, quality);
        Ok(StratRecReport {
            availability: expected,
            batch,
            alternatives,
        })
    }

    /// Brings `session` to the catalog's current epoch: a full compute +
    /// prime + subscribe on the first call (or after a reset / shape /
    /// config change), the delta path afterwards.
    fn sync_session(
        &self,
        requests: &[DeploymentRequest],
        catalog: &mut StrategyCatalog,
        models: &ModelLibrary,
        aggregator: &BatchStrat,
        session: &mut StratRecSession,
    ) -> Result<(), StratRecError> {
        let reusable = matches!(
            (&session.matrix, &session.cache, &session.subscription),
            (Some(matrix), Some(cache), Some(_))
                if matrix.rows() == requests.len()
                    && matrix.precision() == self.engine.precision()
                    && cache.k() == self.config.k
                    && cache.mode() == self.config.aggregation
                    && cache.matches_sharding(self.shards)
        );
        if reusable {
            let subscription = session
                .subscription
                .as_ref()
                .expect("reusable sessions hold a subscription");
            // A stale handle (the session's tracker was evicted after
            // lapsing, or the session was moved across catalogs without a
            // detach) fails typed; fall through to the full re-prime below
            // instead of mis-applying another subscriber's window.
            if let Ok(delta) = catalog.take_delta(subscription) {
                if delta.is_empty() {
                    session.last_repaired_rows = 0;
                    return Ok(());
                }
                let matrix = session
                    .matrix
                    .as_mut()
                    .expect("reusable sessions hold a matrix");
                let cache = session
                    .cache
                    .as_mut()
                    .expect("reusable sessions hold a cache");
                self.engine.apply_matrix_delta(
                    matrix,
                    &delta,
                    requests,
                    catalog,
                    models,
                    aggregator.eligibility,
                    &mut session.model_buf,
                )?;
                session.last_repaired_rows = cache.repair(matrix, &delta);
                return Ok(());
            }
        }
        // A live subscription survives the re-prime: drain and discard its
        // pending window (the full recompute below supersedes it, and the
        // drain re-bases the tracker at the current epoch — the caller
        // holds the catalog exclusively, so nothing can slip in between).
        // A shape or config change, or a shed/degraded batch that never
        // touched the cache, therefore publishes **zero** extra
        // subscriptions; only a stale handle (evicted, or moved across
        // catalogs) is released and replaced.
        let keep_subscription = session
            .subscription
            .as_ref()
            .is_some_and(|subscription| catalog.take_delta(subscription).is_ok());
        if !keep_subscription {
            if let Some(subscription) = session.subscription.take() {
                catalog.unsubscribe_delta(subscription);
            }
        }
        session.cache = None;
        // Refill into the stale matrix when the session still holds one:
        // a full recompute either way, but the tens-of-megabytes cell
        // allocation survives rebuild triggers.
        let mut matrix = session
            .matrix
            .take()
            .unwrap_or_else(|| WorkforceMatrix::from_cells(0, 0, Vec::new()));
        self.engine.refill_workforce_matrix_with_scratch(
            requests,
            catalog,
            models,
            aggregator.eligibility,
            &mut matrix,
            &mut session.model_buf,
        )?;
        let cache = self.primed_cache(&matrix);
        session.last_repaired_rows = matrix.rows();
        if !keep_subscription {
            // Subscribe *after* the compute: both observe the same epoch
            // (the caller holds the catalog exclusively throughout).
            session.subscription = Some(catalog.subscribe_delta());
        }
        session.matrix = Some(matrix);
        session.cache = Some(cache);
        Ok(())
    }

    /// A freshly primed aggregation cache on the configured path: flat, or
    /// per-shard candidate caches under a uniform [`ShardPlan`] over the
    /// matrix's slot range.
    fn primed_cache(&self, matrix: &WorkforceMatrix) -> SessionCache {
        match self.shard_plan_for(matrix.cols()) {
            Some(plan) => {
                let mut cache =
                    ShardedAggregationCache::new(self.config.k, self.config.aggregation, plan);
                cache.prime(matrix);
                SessionCache::Sharded(cache)
            }
            None => {
                let mut cache = AggregationCache::new(self.config.k, self.config.aggregation);
                cache.prime(matrix);
                SessionCache::Flat(cache)
            }
        }
    }

    /// The **concurrent** counterpart of [`Self::process_batch_with_session`]:
    /// serves the standing batch from the [`EpochSnapshot`]s a
    /// [`ConcurrentCatalog`](crate::catalog::ConcurrentCatalog) publishes,
    /// while a writer thread keeps churning. Each call first migrates
    /// `reader` to the latest published snapshot
    /// ([`SnapshotReader::migrate`] — the only moment any lock is touched),
    /// folds the drained [`crate::catalog::CatalogDelta`] into the
    /// session's workforce matrix and aggregation cache exactly like the
    /// sequential delta path, then plans the batch **entirely lock-free**
    /// against the pinned snapshot. The report is identical to
    /// [`Self::process_batch_with_catalog`] over the snapshot's catalog
    /// (pinned by `tests/snapshot_isolation.rs` with readers racing a
    /// churning writer), and the snapshot the report was planned against is
    /// returned alongside it so callers can attribute the answer to its
    /// epoch.
    ///
    /// Recovery is built in: a reader evicted for lapsing past the
    /// catalog's delta-lapse limit re-pins and recomputes from scratch
    /// instead of failing, and any error resets the session so the next
    /// call re-primes (the reader's subscription itself is RAII-released on
    /// drop).
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a live strategy of the
    /// pinned snapshot (full compute) or an inserted live slot (delta path)
    /// has no fitted model in `models`.
    pub fn process_batch_with_reader(
        &self,
        requests: &[DeploymentRequest],
        reader: &mut SnapshotReader,
        models: &ModelLibrary,
        availability: &AvailabilityPdf,
        session: &mut SnapshotSession,
    ) -> Result<(StratRecReport, Arc<EpochSnapshot>), StratRecError> {
        self.process_batch_with_reader_at(
            requests,
            reader,
            models,
            availability,
            session,
            ServiceQuality::Full,
        )
    }

    /// [`Self::process_batch_with_reader`] at an explicit
    /// [`ServiceQuality`] — the entry point of a streaming front-end whose
    /// backpressure controller degrades under load. The session's matrix,
    /// aggregation cache and the reader's subscription are
    /// quality-independent; only the ADPaR fan-out switches solvers, so a
    /// degrade → recover cycle reuses the standing incremental state and
    /// publishes zero extra subscriptions. A `Degraded` report's
    /// alternatives are bit-identical to
    /// [`Self::process_batch_with_catalog_at`] at `Degraded` over the
    /// returned snapshot's catalog (which is in turn standalone
    /// `Baseline2`).
    ///
    /// # Errors
    ///
    /// As [`Self::process_batch_with_reader`].
    pub fn process_batch_with_reader_at(
        &self,
        requests: &[DeploymentRequest],
        reader: &mut SnapshotReader,
        models: &ModelLibrary,
        availability: &AvailabilityPdf,
        session: &mut SnapshotSession,
        quality: ServiceQuality,
    ) -> Result<(StratRecReport, Arc<EpochSnapshot>), StratRecError> {
        let expected = availability.expectation();
        let aggregator = BatchStrat::new(self.config.objective, self.config.aggregation);
        let snapshot =
            match self.sync_snapshot_session(requests, reader, models, &aggregator, session) {
                Ok(snapshot) => snapshot,
                Err(error) => {
                    session.reset();
                    return Err(error);
                }
            };
        let cache = session
            .cache
            .as_ref()
            .expect("sync_snapshot_session leaves the session primed");
        let batch = aggregator.select(requests, cache.requirements(), expected);
        let alternatives = self.alternatives_at(requests, snapshot.catalog(), &batch, quality);
        let report = StratRecReport {
            availability: expected,
            batch,
            alternatives,
        };
        Ok((report, snapshot))
    }

    /// Brings a snapshot-serving session to the latest published epoch: the
    /// delta path when the session is primed and the reader's subscription
    /// is live, a full recompute otherwise (first call, shape or config
    /// change, or the reader was evicted for lapsing). The full recompute
    /// keeps a live subscription — it only re-subscribes after an eviction
    /// — so re-primes never churn the catalog's subscriber table.
    fn sync_snapshot_session(
        &self,
        requests: &[DeploymentRequest],
        reader: &mut SnapshotReader,
        models: &ModelLibrary,
        aggregator: &BatchStrat,
        session: &mut SnapshotSession,
    ) -> Result<Arc<EpochSnapshot>, StratRecError> {
        let reusable = matches!(
            (&session.matrix, &session.cache),
            (Some(matrix), Some(cache))
                if matrix.rows() == requests.len()
                    && matrix.precision() == self.engine.precision()
                    && cache.k() == self.config.k
                    && cache.mode() == self.config.aggregation
                    && cache.matches_sharding(self.shards)
        );
        if reusable {
            // An evicted reader fails the migration typed
            // (StaleSubscription); fall through to the re-pin + full
            // recompute below instead of serving from a torn delta window.
            if let Ok(delta) = reader.migrate() {
                let snapshot = Arc::clone(reader.pinned());
                if delta.is_empty() {
                    session.last_repaired_rows = 0;
                    return Ok(snapshot);
                }
                let matrix = session
                    .matrix
                    .as_mut()
                    .expect("reusable sessions hold a matrix");
                let cache = session
                    .cache
                    .as_mut()
                    .expect("reusable sessions hold a cache");
                self.engine.apply_matrix_delta(
                    matrix,
                    &delta,
                    requests,
                    snapshot.catalog(),
                    models,
                    aggregator.eligibility,
                    &mut session.model_buf,
                )?;
                session.last_repaired_rows = cache.repair(matrix, &delta);
                return Ok(snapshot);
            }
        }
        // Full path: keep the reader's standing subscription when it is
        // still live — migrate drains (and discards) the pending window and
        // pins the latest snapshot, so a shape or config re-prime, or a
        // shed/degraded batch that never touched the cache, publishes
        // **zero** extra subscriptions. Only an evicted reader falls back
        // to `re_pin`'s unsubscribe + re-subscribe.
        let snapshot = match reader.migrate() {
            Ok(_) => Arc::clone(reader.pinned()),
            Err(_) => reader.re_pin(),
        };
        session.cache = None;
        let mut matrix = session
            .matrix
            .take()
            .unwrap_or_else(|| WorkforceMatrix::from_cells(0, 0, Vec::new()));
        self.engine.refill_workforce_matrix_with_scratch(
            requests,
            snapshot.catalog(),
            models,
            aggregator.eligibility,
            &mut matrix,
            &mut session.model_buf,
        )?;
        let cache = self.primed_cache(&matrix);
        session.last_repaired_rows = matrix.rows();
        session.matrix = Some(matrix);
        session.cache = Some(cache);
        Ok(snapshot)
    }

    /// Serves one batch **per tenant** over a shared catalog and one shared
    /// availability budget, divided by `policy` ([`FairnessPolicy::split`]):
    /// every tenant's aggregate demand is computed first (on the configured
    /// flat or sharded path), the budget is split into per-tenant grants —
    /// floors before weighted residual, so a tenant flooding the queue can
    /// never starve another below its floor — and each tenant's Aggregator
    /// then selects against **its own grant** instead of the whole pool.
    ///
    /// Outcomes come back in tenant order and are deterministic: the split
    /// is a pure function of `(policy, budget, demands)` and each per-tenant
    /// selection is the ordinary [`BatchStrat::select`].
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::InvalidFairnessPolicy`] when `policy` does
    /// not name exactly one share per tenant batch, and
    /// [`StratRecError::MissingModel`] as the single-tenant paths do.
    pub fn process_tenant_batches(
        &self,
        batches: &[&[DeploymentRequest]],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        availability: &AvailabilityPdf,
        policy: &FairnessPolicy,
    ) -> Result<Vec<TenantOutcome>, StratRecError> {
        if policy.tenant_count() != batches.len() {
            return Err(StratRecError::InvalidFairnessPolicy(format!(
                "policy names {} tenants but {} batches were submitted",
                policy.tenant_count(),
                batches.len()
            )));
        }
        let budget = availability.expectation().value();
        let aggregator = BatchStrat::new(self.config.objective, self.config.aggregation);
        let mut requirements: Vec<Vec<Option<RequestRequirement>>> =
            Vec::with_capacity(batches.len());
        for batch in batches {
            let matrix =
                self.engine
                    .workforce_matrix(batch, catalog, models, aggregator.eligibility)?;
            requirements.push(self.aggregate_matrix(&matrix));
        }
        let demands: Vec<f64> = requirements
            .iter()
            .map(|reqs| {
                reqs.iter()
                    .flatten()
                    .map(|requirement| requirement.workforce)
                    .filter(|workforce| workforce.is_finite())
                    .sum()
            })
            .collect();
        let grants = policy.split(budget, &demands);
        batches
            .iter()
            .zip(requirements.iter().zip(demands.iter().zip(grants)))
            .enumerate()
            .map(|(tenant, (batch, (reqs, (&demand, grant))))| {
                let granted = WorkerAvailability::new(grant)?;
                let outcome = aggregator.select(batch, reqs, granted);
                Ok(TenantOutcome {
                    tenant,
                    demand,
                    granted,
                    batch: outcome,
                })
            })
            .collect()
    }
}

/// One tenant's result from [`StratRec::process_tenant_batches`]: what it
/// asked for, what the [`FairnessPolicy`] granted it, and the Aggregator's
/// selection under that grant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantOutcome {
    /// Index of the tenant in the submitted batch list (and in the
    /// policy's share list).
    pub tenant: usize,
    /// The tenant's aggregate workforce demand: the sum of its feasible
    /// requests' requirements.
    pub demand: f64,
    /// The availability budget the fairness split granted this tenant.
    pub granted: WorkerAvailability,
    /// The Aggregator's outcome for the tenant's batch under its grant.
    pub batch: BatchOutcome,
}

/// The aggregation state a serving session maintains across epochs: the
/// flat [`AggregationCache`] or its sharded counterpart, depending on the
/// layer's [`StratRec::with_shards`] setting at prime time. Both repair
/// lazily under [`CatalogDelta`]s and cache requirements that are
/// bit-identical to each other, so switching the knob between calls simply
/// re-primes on the other variant.
#[derive(Debug)]
enum SessionCache {
    Flat(AggregationCache),
    Sharded(ShardedAggregationCache),
}

impl SessionCache {
    fn k(&self) -> usize {
        match self {
            Self::Flat(cache) => cache.k(),
            Self::Sharded(cache) => cache.k(),
        }
    }

    fn mode(&self) -> AggregationMode {
        match self {
            Self::Flat(cache) => cache.mode(),
            Self::Sharded(cache) => cache.mode(),
        }
    }

    fn requirements(&self) -> &[Option<RequestRequirement>] {
        match self {
            Self::Flat(cache) => cache.requirements(),
            Self::Sharded(cache) => cache.requirements(),
        }
    }

    fn repair(&mut self, matrix: &WorkforceMatrix, delta: &CatalogDelta) -> usize {
        match self {
            Self::Flat(cache) => cache.repair(matrix, delta),
            Self::Sharded(cache) => cache.repair(matrix, delta),
        }
    }

    /// Whether this cache variant serves the given shard knob without a
    /// re-prime.
    fn matches_sharding(&self, shards: usize) -> bool {
        match self {
            Self::Flat(_) => shards <= 1,
            Self::Sharded(cache) => cache.shard_count() == shards,
        }
    }
}

/// Reusable cross-epoch state for [`StratRec::process_batch_with_reader`]:
/// the delta-maintained workforce matrix, the lazily repaired
/// [`AggregationCache`] and the model collection buffer. Unlike
/// [`StratRecSession`] it holds **no** subscription — the
/// [`SnapshotReader`] owns that (and releases it on drop), so the session
/// is pure derived state: resettable at any time, recomputed from whatever
/// snapshot the reader pins next.
#[derive(Debug, Default)]
pub struct SnapshotSession {
    matrix: Option<WorkforceMatrix>,
    cache: Option<SessionCache>,
    model_buf: Vec<Option<StrategyModel>>,
    last_repaired_rows: usize,
}

impl SnapshotSession {
    /// An empty session; the first [`StratRec::process_batch_with_reader`]
    /// call initializes it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The delta-maintained workforce matrix, once initialized.
    #[must_use]
    pub fn matrix(&self) -> Option<&WorkforceMatrix> {
        self.matrix.as_ref()
    }

    /// How many aggregation rows the most recent call re-aggregated: the
    /// full row count on (re-)initialization or recovery, then only the
    /// churn-affected rows.
    #[must_use]
    pub fn last_repaired_rows(&self) -> usize {
        self.last_repaired_rows
    }

    /// Drops the derived state so the next call recomputes from scratch
    /// (the reader's subscription is untouched — it re-pins on that call).
    pub fn reset(&mut self) {
        self.matrix = None;
        self.cache = None;
    }
}

/// Reusable cross-epoch state for [`StratRec::process_batch_with_session`]:
/// the delta-maintained workforce matrix, the lazily repaired
/// [`AggregationCache`], the catalog [`DeltaSubscription`] and the model
/// collection buffer — everything the incremental serving loop holds
/// between catalog churn epochs.
///
/// Deliberately **not** `Clone`: a clone would share the original's
/// subscription id, and whichever copy drained the catalog first would
/// silently corrupt the other's delta window. One session per
/// `(catalog, standing batch)`; create a fresh one instead of cloning.
#[derive(Debug, Default)]
pub struct StratRecSession {
    matrix: Option<WorkforceMatrix>,
    cache: Option<SessionCache>,
    subscription: Option<DeltaSubscription>,
    model_buf: Vec<Option<StrategyModel>>,
    last_repaired_rows: usize,
}

impl StratRecSession {
    /// An empty session; the first
    /// [`StratRec::process_batch_with_session`] call initializes it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The delta-maintained workforce matrix, once initialized.
    #[must_use]
    pub fn matrix(&self) -> Option<&WorkforceMatrix> {
        self.matrix.as_ref()
    }

    /// How many aggregation rows the most recent call re-aggregated: the
    /// full row count on (re-)initialization, then only the churn-affected
    /// rows — the observable "work proportional to churn" signal.
    #[must_use]
    pub fn last_repaired_rows(&self) -> usize {
        self.last_repaired_rows
    }

    /// Drops the derived state so the next call recomputes from scratch.
    /// The catalog-side subscription is kept (and drained on re-init); use
    /// [`Self::detach`] when the catalog is available to release it too.
    pub fn reset(&mut self) {
        self.matrix = None;
        self.cache = None;
    }

    /// [`Self::reset`] plus releasing the session's subscription from
    /// `catalog` — the clean way to retire a session or to move it to a
    /// different catalog / standing batch.
    pub fn detach(&mut self, catalog: &mut StrategyCatalog) {
        if let Some(subscription) = self.subscription.take() {
            catalog.unsubscribe_delta(subscription);
        }
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pdf(w: f64) -> AvailabilityPdf {
        AvailabilityPdf::certain(w)
    }

    #[test]
    fn running_example_end_to_end() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let models = crate::examples_data::running_example_models();
        let layer = StratRec::new(StratRecConfig {
            k: 3,
            objective: BatchObjective::Throughput,
            aggregation: AggregationMode::Max,
        });
        let report = layer
            .process_batch(&requests, &strategies, &models, &pdf(0.8))
            .unwrap();
        assert!((report.availability.value() - 0.8).abs() < 1e-12);
        assert_eq!(report.batch.satisfied.len(), 1);
        assert_eq!(report.batch.satisfied[0].request_index, 2);
        assert_eq!(report.alternatives.len(), 2);
        // Both unsatisfied requests obtain feasible alternative parameters.
        assert!(report.alternatives.iter().all(|a| a.solution.is_ok()));
        assert_eq!(report.served_requests(), 3);
        // d1's alternative matches the paper: (0.4, 0.5, 0.28).
        let d1 = report
            .alternatives
            .iter()
            .find(|a| a.request_index == 0)
            .unwrap();
        let solution = d1.solution.as_ref().unwrap();
        assert!((solution.alternative.cost - 0.5).abs() < 1e-9);
    }

    #[test]
    fn default_config_is_reasonable() {
        let config = StratRecConfig::default();
        assert_eq!(config.k, 3);
        assert_eq!(config.objective, BatchObjective::Throughput);
        assert_eq!(config.aggregation, AggregationMode::Sum);
    }

    #[test]
    fn k_larger_than_strategy_count_yields_errors_in_alternatives() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let models = crate::examples_data::running_example_models();
        let layer = StratRec::new(StratRecConfig {
            k: 10,
            ..StratRecConfig::default()
        });
        let report = layer
            .process_batch(&requests, &strategies, &models, &pdf(0.9))
            .unwrap();
        assert!(report.batch.satisfied.is_empty());
        assert_eq!(report.alternatives.len(), 3);
        assert!(report
            .alternatives
            .iter()
            .all(|a| matches!(a.solution, Err(StratRecError::NotEnoughStrategies { .. }))));
        assert_eq!(report.served_requests(), 0);
    }

    #[test]
    fn missing_models_propagate() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let layer = StratRec::default();
        assert!(layer
            .process_batch(&requests, &strategies, &ModelLibrary::new(), &pdf(0.5))
            .is_err());
    }

    fn session_fixture() -> (
        StrategyCatalog,
        ModelLibrary,
        Vec<DeploymentRequest>,
        AvailabilityPdf,
    ) {
        let strategies: Vec<Strategy> = (0..18_u64)
            .map(|i| {
                Strategy::from_params(
                    i,
                    crate::model::DeploymentParameters::clamped(
                        0.35 + (i as f64 * 0.11) % 0.6,
                        0.2 + (i as f64 * 0.27) % 0.7,
                        0.15 + (i as f64 * 0.19) % 0.7,
                    ),
                )
            })
            .collect();
        let models = ModelLibrary::from_pairs(strategies.iter().map(|s| {
            let alpha = 0.45 + (s.id.0 % 35) as f64 / 100.0;
            (
                s.id,
                crate::modeling::StrategyModel::uniform(alpha, 1.0 - alpha),
            )
        }));
        let requests: Vec<DeploymentRequest> = (0..5_u64)
            .map(|i| {
                DeploymentRequest::new(
                    i,
                    crate::model::TaskType::SentenceTranslation,
                    crate::model::DeploymentParameters::clamped(
                        0.3 + (i as f64) * 0.1,
                        0.9 - (i as f64) * 0.05,
                        0.85 - (i as f64) * 0.04,
                    ),
                )
            })
            .collect();
        let catalog =
            StrategyCatalog::with_policy(strategies, crate::catalog::RebuildPolicy::threshold(3));
        (catalog, models, requests, pdf(0.6))
    }

    use crate::catalog::StrategyCatalog;
    use crate::model::Strategy;

    #[test]
    fn session_reports_match_the_per_epoch_full_pipeline() {
        let (mut catalog, mut models, requests, availability) = session_fixture();
        let layer = StratRec::default().with_engine(BatchEngine::with_threads(2));
        let mut session = StratRecSession::new();
        let mut next_id = 18_u64;
        for epoch in 0..6 {
            if epoch > 0 {
                // Churn between batches: two inserts, two retirements, and a
                // mid-stream compaction at epoch 3.
                for _ in 0..2 {
                    let strategy = Strategy::from_params(
                        next_id,
                        crate::model::DeploymentParameters::clamped(
                            0.4 + (next_id as f64 * 0.13) % 0.5,
                            0.25 + (next_id as f64 * 0.17) % 0.6,
                            0.2 + (next_id as f64 * 0.23) % 0.6,
                        ),
                    );
                    let alpha = 0.45 + (next_id % 35) as f64 / 100.0;
                    models.insert(
                        strategy.id,
                        crate::modeling::StrategyModel::uniform(alpha, 1.0 - alpha),
                    );
                    catalog.insert(strategy);
                    next_id += 1;
                }
                let live = catalog.live_indices();
                assert!(catalog.retire(live[epoch % live.len()]));
                assert!(catalog.retire(live[(epoch * 3 + 1) % live.len()]));
                if epoch == 3 {
                    catalog.compact();
                }
            }
            let incremental = layer
                .process_batch_with_session(
                    &requests,
                    &mut catalog,
                    &models,
                    &availability,
                    &mut session,
                )
                .unwrap();
            let full = layer
                .process_batch_with_catalog(&requests, &catalog, &models, &availability)
                .unwrap();
            assert_eq!(incremental, full, "epoch {epoch}");
            if epoch == 0 {
                assert_eq!(session.last_repaired_rows(), requests.len());
            } else {
                assert!(session.last_repaired_rows() <= requests.len());
            }
            assert_eq!(
                session.matrix().unwrap().cols(),
                catalog.slot_count(),
                "epoch {epoch}"
            );
        }
        assert_eq!(catalog.delta_subscriber_count(), 1);
        session.detach(&mut catalog);
        assert_eq!(catalog.delta_subscriber_count(), 0);
    }

    #[test]
    fn session_reprimes_on_batch_shape_or_config_changes() {
        let (mut catalog, models, requests, availability) = session_fixture();
        let layer = StratRec::default();
        let mut session = StratRecSession::new();
        layer
            .process_batch_with_session(
                &requests,
                &mut catalog,
                &models,
                &availability,
                &mut session,
            )
            .unwrap();
        // A shorter standing batch re-primes instead of mis-applying deltas.
        let shorter = &requests[..3];
        let report = layer
            .process_batch_with_session(shorter, &mut catalog, &models, &availability, &mut session)
            .unwrap();
        assert_eq!(session.last_repaired_rows(), shorter.len());
        let full = layer
            .process_batch_with_catalog(shorter, &catalog, &models, &availability)
            .unwrap();
        assert_eq!(report, full);
        // A changed k re-primes too, and never leaks subscriptions.
        let stricter = StratRec::new(StratRecConfig {
            k: 5,
            ..StratRecConfig::default()
        });
        let report = stricter
            .process_batch_with_session(shorter, &mut catalog, &models, &availability, &mut session)
            .unwrap();
        let full = stricter
            .process_batch_with_catalog(shorter, &catalog, &models, &availability)
            .unwrap();
        assert_eq!(report, full);
        assert_eq!(catalog.delta_subscriber_count(), 1);
    }

    #[test]
    fn session_recovers_with_a_full_recompute_after_an_error() {
        let (mut catalog, mut models, requests, availability) = session_fixture();
        let layer = StratRec::default();
        let mut session = StratRecSession::new();
        layer
            .process_batch_with_session(
                &requests,
                &mut catalog,
                &models,
                &availability,
                &mut session,
            )
            .unwrap();
        // An insert without a model fails the incremental epoch...
        let orphan = Strategy::from_params(
            900,
            crate::model::DeploymentParameters::clamped(0.8, 0.3, 0.3),
        );
        catalog.insert(orphan.clone());
        assert!(matches!(
            layer.process_batch_with_session(
                &requests,
                &mut catalog,
                &models,
                &availability,
                &mut session,
            ),
            Err(StratRecError::MissingModel { strategy: 900 })
        ));
        assert_eq!(catalog.delta_subscriber_count(), 0, "errors detach");
        // ...and once the model arrives, the session rebuilds from scratch
        // and agrees with the full pipeline again.
        models.insert(orphan.id, crate::modeling::StrategyModel::uniform(0.7, 0.3));
        let report = layer
            .process_batch_with_session(
                &requests,
                &mut catalog,
                &models,
                &availability,
                &mut session,
            )
            .unwrap();
        let full = layer
            .process_batch_with_catalog(&requests, &catalog, &models, &availability)
            .unwrap();
        assert_eq!(report, full);
        assert_eq!(session.last_repaired_rows(), requests.len());
    }

    fn fixture_strategy(id: u64) -> Strategy {
        Strategy::from_params(
            id,
            crate::model::DeploymentParameters::clamped(
                0.4 + (id as f64 * 0.13) % 0.5,
                0.25 + (id as f64 * 0.17) % 0.6,
                0.2 + (id as f64 * 0.23) % 0.6,
            ),
        )
    }

    fn fixture_model(id: u64) -> crate::modeling::StrategyModel {
        let alpha = 0.45 + (id % 35) as f64 / 100.0;
        crate::modeling::StrategyModel::uniform(alpha, 1.0 - alpha)
    }

    #[test]
    fn reader_sessions_match_the_full_pipeline_across_published_epochs() {
        let (catalog, mut models, requests, availability) = session_fixture();
        let concurrent = crate::catalog::ConcurrentCatalog::new(catalog);
        let layer = StratRec::default().with_engine(BatchEngine::with_threads(2));
        let mut reader = concurrent.reader();
        let mut session = SnapshotSession::new();
        let mut next_id = 18_u64;
        for epoch in 0..6 {
            if epoch > 0 {
                for _ in 0..2 {
                    let strategy = fixture_strategy(next_id);
                    models.insert(strategy.id, fixture_model(next_id));
                    next_id += 1;
                    concurrent.update(|catalog| {
                        catalog.insert(strategy.clone());
                        let live = catalog.live_indices();
                        assert!(catalog.retire(live[epoch % live.len()]));
                    });
                }
                if epoch == 3 {
                    concurrent.update(|catalog| {
                        catalog.compact();
                    });
                }
            }
            let (report, snapshot) = layer
                .process_batch_with_reader(
                    &requests,
                    &mut reader,
                    &models,
                    &availability,
                    &mut session,
                )
                .unwrap();
            assert_eq!(snapshot.epoch(), concurrent.epoch(), "epoch {epoch}");
            let full = layer
                .process_batch_with_catalog(&requests, snapshot.catalog(), &models, &availability)
                .unwrap();
            assert_eq!(report, full, "epoch {epoch}");
            if epoch == 0 {
                assert_eq!(session.last_repaired_rows(), requests.len());
            } else {
                assert!(session.last_repaired_rows() <= requests.len());
            }
            assert_eq!(session.matrix().unwrap().cols(), snapshot.slot_count());
        }
        assert_eq!(concurrent.subscriber_count(), 1);
        drop(reader);
        assert_eq!(concurrent.subscriber_count(), 0);
    }

    #[test]
    fn evicted_readers_recover_with_a_full_recompute() {
        let (mut catalog, mut models, requests, availability) = session_fixture();
        catalog.set_delta_lapse_limit(8);
        let concurrent = crate::catalog::ConcurrentCatalog::new(catalog);
        let layer = StratRec::default();
        let mut reader = concurrent.reader();
        let mut session = SnapshotSession::new();
        layer
            .process_batch_with_reader(&requests, &mut reader, &models, &availability, &mut session)
            .unwrap();
        // Stall the reader far past the lapse limit: its tracker is evicted.
        for i in 0..20_u64 {
            let strategy = fixture_strategy(100 + i);
            models.insert(strategy.id, fixture_model(100 + i));
            concurrent.update(|catalog| catalog.insert(strategy.clone()));
        }
        // The next call transparently re-pins and recomputes from scratch.
        let (report, snapshot) = layer
            .process_batch_with_reader(&requests, &mut reader, &models, &availability, &mut session)
            .unwrap();
        assert_eq!(
            session.last_repaired_rows(),
            requests.len(),
            "full re-prime"
        );
        let full = layer
            .process_batch_with_catalog(&requests, snapshot.catalog(), &models, &availability)
            .unwrap();
        assert_eq!(report, full);
        assert_eq!(concurrent.subscriber_count(), 1, "one live re-subscription");
    }

    #[test]
    fn reader_sessions_reset_on_error_and_recover() {
        let (catalog, mut models, requests, availability) = session_fixture();
        let concurrent = crate::catalog::ConcurrentCatalog::new(catalog);
        let layer = StratRec::default();
        let mut reader = concurrent.reader();
        let mut session = SnapshotSession::new();
        layer
            .process_batch_with_reader(&requests, &mut reader, &models, &availability, &mut session)
            .unwrap();
        let orphan = fixture_strategy(900);
        concurrent.update(|catalog| catalog.insert(orphan.clone()));
        assert!(matches!(
            layer.process_batch_with_reader(
                &requests,
                &mut reader,
                &models,
                &availability,
                &mut session,
            ),
            Err(StratRecError::MissingModel { strategy: 900 })
        ));
        assert!(session.matrix().is_none(), "errors reset the session");
        models.insert(orphan.id, fixture_model(900));
        let (report, snapshot) = layer
            .process_batch_with_reader(&requests, &mut reader, &models, &availability, &mut session)
            .unwrap();
        let full = layer
            .process_batch_with_catalog(&requests, snapshot.catalog(), &models, &availability)
            .unwrap();
        assert_eq!(report, full);
        assert_eq!(session.last_repaired_rows(), requests.len());
        assert_eq!(concurrent.subscriber_count(), 1);
    }

    /// The detach-on-error audit: every error exit of
    /// `process_batch_with_session` releases the catalog-side subscription,
    /// and the stale handle the session dropped can never drain a newer
    /// subscriber that recycled the same id.
    #[test]
    fn every_session_error_exit_releases_the_subscription() {
        let (mut catalog, mut models, requests, availability) = session_fixture();
        let layer = StratRec::default();

        // Error on the *priming* path: a live strategy with no model fails
        // the very first call — no subscription may survive it.
        let orphan_a = fixture_strategy(901);
        catalog.insert(orphan_a.clone());
        let mut session = StratRecSession::new();
        assert!(layer
            .process_batch_with_session(
                &requests,
                &mut catalog,
                &models,
                &availability,
                &mut session,
            )
            .is_err());
        assert_eq!(catalog.delta_subscriber_count(), 0, "prime error detaches");

        // Error on the *delta* path: prime successfully, then churn in a
        // modelless insert.
        models.insert(orphan_a.id, fixture_model(901));
        layer
            .process_batch_with_session(
                &requests,
                &mut catalog,
                &models,
                &availability,
                &mut session,
            )
            .unwrap();
        assert_eq!(catalog.delta_subscriber_count(), 1);
        let orphan_b = fixture_strategy(902);
        catalog.insert(orphan_b.clone());
        assert!(layer
            .process_batch_with_session(
                &requests,
                &mut catalog,
                &models,
                &availability,
                &mut session,
            )
            .is_err());
        assert_eq!(catalog.delta_subscriber_count(), 0, "delta error detaches");

        // The freed id is recycled by a second session. The errored session
        // recovers with a full recompute + fresh generation-tagged handle —
        // and both coexist without draining each other's windows.
        models.insert(orphan_b.id, fixture_model(902));
        let mut second = StratRecSession::new();
        layer
            .process_batch_with_session(
                &requests,
                &mut catalog,
                &models,
                &availability,
                &mut second,
            )
            .unwrap();
        layer
            .process_batch_with_session(
                &requests,
                &mut catalog,
                &models,
                &availability,
                &mut session,
            )
            .unwrap();
        assert_eq!(catalog.delta_subscriber_count(), 2);
        let extra = fixture_strategy(903);
        models.insert(extra.id, fixture_model(903));
        catalog.insert(extra.clone());
        let full = layer
            .process_batch_with_catalog(&requests, &catalog, &models, &availability)
            .unwrap();
        for s in [&mut second, &mut session] {
            let report = layer
                .process_batch_with_session(&requests, &mut catalog, &models, &availability, s)
                .unwrap();
            assert_eq!(report, full, "both sessions absorb the same delta once");
        }
        session.detach(&mut catalog);
        second.detach(&mut catalog);
        assert_eq!(catalog.delta_subscriber_count(), 0);
    }

    /// A session whose tracker was evicted for lapsing keeps working: the
    /// stale handle fails typed inside `sync_session`, which falls back to
    /// a full recompute and a fresh subscription.
    #[test]
    fn sessions_survive_delta_tracker_eviction() {
        let (mut catalog, mut models, requests, availability) = session_fixture();
        catalog.set_delta_lapse_limit(8);
        let layer = StratRec::default();
        let mut session = StratRecSession::new();
        layer
            .process_batch_with_session(
                &requests,
                &mut catalog,
                &models,
                &availability,
                &mut session,
            )
            .unwrap();
        for i in 0..20_u64 {
            let strategy = fixture_strategy(300 + i);
            models.insert(strategy.id, fixture_model(300 + i));
            catalog.insert(strategy);
        }
        assert_eq!(catalog.delta_evictions(), 1, "the stalled tracker lapsed");
        let report = layer
            .process_batch_with_session(
                &requests,
                &mut catalog,
                &models,
                &availability,
                &mut session,
            )
            .unwrap();
        assert_eq!(
            session.last_repaired_rows(),
            requests.len(),
            "full re-prime"
        );
        let full = layer
            .process_batch_with_catalog(&requests, &catalog, &models, &availability)
            .unwrap();
        assert_eq!(report, full);
        assert_eq!(catalog.delta_subscriber_count(), 1);
    }

    #[test]
    fn degraded_reports_swap_only_the_adpar_stage() {
        use crate::adpar::{AdparBaseline2, AdparProblem, AdparSolver};
        let (catalog, models, requests, _) = session_fixture();
        // Zero availability pushes every request to ADPaR, so the degraded
        // fan-out has maximal surface to diverge on.
        let availability = pdf(0.0);
        let layer = StratRec::default();
        let full = layer
            .process_batch_with_catalog(&requests, &catalog, &models, &availability)
            .unwrap();
        let degraded = layer
            .process_batch_with_catalog_at(
                &requests,
                &catalog,
                &models,
                &availability,
                ServiceQuality::Degraded,
            )
            .unwrap();
        // The Aggregator stage is quality-independent...
        assert_eq!(degraded.batch, full.batch);
        assert_eq!(degraded.availability, full.availability);
        assert_eq!(degraded.alternatives.len(), full.alternatives.len());
        assert!(!degraded.alternatives.is_empty());
        // ...and every degraded alternative is bit-identical to a
        // standalone Baseline2 solve over the same catalog.
        for alternative in &degraded.alternatives {
            let expected = AdparBaseline2.solve(&AdparProblem::with_catalog(
                &requests[alternative.request_index],
                &catalog,
                layer.config.k,
            ));
            assert_eq!(alternative.solution, expected);
        }
        // Full at the explicit quality equals the implicit-quality method.
        let explicit = layer
            .process_batch_with_catalog_at(
                &requests,
                &catalog,
                &models,
                &availability,
                ServiceQuality::Full,
            )
            .unwrap();
        assert_eq!(explicit, full);
    }

    /// The degrade → recover regression of the streaming front-end: flipping
    /// [`ServiceQuality`] between reader-served calls must reuse the
    /// standing matrix, cache and subscription — zero extra subscriptions
    /// published ([`crate::catalog::CatalogStats::subscribers`] flat) and
    /// zero rows repaired when no churn happened in between.
    #[test]
    fn degrade_recover_cycles_reuse_the_standing_subscription() {
        let (catalog, mut models, requests, availability) = session_fixture();
        let concurrent = crate::catalog::ConcurrentCatalog::new(catalog);
        let layer = StratRec::default();
        let mut reader = concurrent.reader();
        let mut session = SnapshotSession::new();
        layer
            .process_batch_with_reader(&requests, &mut reader, &models, &availability, &mut session)
            .unwrap();
        assert_eq!(concurrent.stats().subscribers, 1);
        let mut next_id = 18_u64;
        for cycle in 0..3 {
            if cycle > 0 {
                // Churn between cycles: the degraded call absorbs it on the
                // ordinary delta path.
                let strategy = fixture_strategy(next_id);
                models.insert(strategy.id, fixture_model(next_id));
                next_id += 1;
                concurrent.update(|catalog| {
                    catalog.insert(strategy.clone());
                });
            }
            let (degraded, snapshot) = layer
                .process_batch_with_reader_at(
                    &requests,
                    &mut reader,
                    &models,
                    &availability,
                    &mut session,
                    ServiceQuality::Degraded,
                )
                .unwrap();
            let reference = layer
                .process_batch_with_catalog_at(
                    &requests,
                    snapshot.catalog(),
                    &models,
                    &availability,
                    ServiceQuality::Degraded,
                )
                .unwrap();
            assert_eq!(degraded, reference, "cycle {cycle}");
            if cycle == 0 {
                assert_eq!(
                    session.last_repaired_rows(),
                    0,
                    "a no-churn degrade touches nothing"
                );
            }
            assert_eq!(
                concurrent.stats().subscribers,
                1,
                "cycle {cycle}: degrade published no extra subscription"
            );
            let (recovered, snapshot) = layer
                .process_batch_with_reader_at(
                    &requests,
                    &mut reader,
                    &models,
                    &availability,
                    &mut session,
                    ServiceQuality::Full,
                )
                .unwrap();
            let reference = layer
                .process_batch_with_catalog(&requests, snapshot.catalog(), &models, &availability)
                .unwrap();
            assert_eq!(recovered, reference, "cycle {cycle}");
            assert_eq!(
                session.last_repaired_rows(),
                0,
                "cycle {cycle}: recovery reused the standing cache"
            );
            assert_eq!(
                concurrent.stats().subscribers,
                1,
                "cycle {cycle}: recover published no extra subscription"
            );
        }
        assert_eq!(concurrent.stats().delta_evictions, 0);
    }

    /// A shape or config re-prime keeps the standing subscription too: the
    /// full-recompute path migrates the live reader instead of re-pinning
    /// through an unsubscribe + re-subscribe.
    #[test]
    fn shape_and_config_reprimes_keep_the_readers_subscription() {
        let (catalog, models, requests, availability) = session_fixture();
        let concurrent = crate::catalog::ConcurrentCatalog::new(catalog);
        let layer = StratRec::default();
        let mut reader = concurrent.reader();
        let mut session = SnapshotSession::new();
        layer
            .process_batch_with_reader(&requests, &mut reader, &models, &availability, &mut session)
            .unwrap();
        let before = concurrent.stats();
        // Shorter standing batch: full recompute, same subscription.
        let shorter = &requests[..3];
        let (report, snapshot) = layer
            .process_batch_with_reader(shorter, &mut reader, &models, &availability, &mut session)
            .unwrap();
        assert_eq!(session.last_repaired_rows(), shorter.len(), "re-primed");
        let reference = layer
            .process_batch_with_catalog(shorter, snapshot.catalog(), &models, &availability)
            .unwrap();
        assert_eq!(report, reference);
        // A changed k re-primes as well; the subscriber table never moves.
        let stricter = StratRec::new(StratRecConfig {
            k: 5,
            ..StratRecConfig::default()
        });
        stricter
            .process_batch_with_reader(shorter, &mut reader, &models, &availability, &mut session)
            .unwrap();
        let after = concurrent.stats();
        assert_eq!(after.subscribers, before.subscribers);
        assert_eq!(after.delta_evictions, before.delta_evictions);
        assert_eq!(after.epoch, before.epoch, "no churn happened");
    }

    #[test]
    fn zero_availability_pushes_everything_to_adpar() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let models = crate::examples_data::running_example_models();
        let layer = StratRec::new(StratRecConfig {
            k: 3,
            objective: BatchObjective::Payoff,
            aggregation: AggregationMode::Max,
        });
        let report = layer
            .process_batch(&requests, &strategies, &models, &pdf(0.0))
            .unwrap();
        assert!(report.batch.satisfied.is_empty());
        assert_eq!(report.alternatives.len(), 3);
    }

    #[test]
    fn sharded_layers_produce_identical_reports_to_the_flat_path() {
        let (catalog, models, requests, availability) = session_fixture();
        let flat = StratRec::default()
            .process_batch_with_catalog(&requests, &catalog, &models, &availability)
            .unwrap();
        for shards in [0, 1, 2, 3, 8, 18] {
            let report = StratRec::default()
                .with_shards(shards)
                .process_batch_with_catalog(&requests, &catalog, &models, &availability)
                .unwrap();
            assert_eq!(report, flat, "{shards} shards");
        }
    }

    #[test]
    fn sharded_sessions_match_the_flat_pipeline_across_churn() {
        // A sharded serving session (per-shard caches repaired per epoch)
        // must report exactly what the flat full pipeline reports, and
        // toggling the shard knob mid-stream must transparently re-prime.
        let (mut catalog, mut models, requests, availability) = session_fixture();
        let layer = StratRec::default().with_shards(3);
        let mut session = StratRecSession::new();
        let mut next_id = 18_u64;
        for epoch in 0..6 {
            if epoch > 0 {
                for _ in 0..2 {
                    let strategy = fixture_strategy(next_id);
                    models.insert(strategy.id, fixture_model(next_id));
                    catalog.insert(strategy);
                    next_id += 1;
                }
                let live = catalog.live_indices();
                assert!(catalog.retire(live[epoch % live.len()]));
                if epoch == 3 {
                    catalog.compact();
                }
            }
            let incremental = layer
                .process_batch_with_session(
                    &requests,
                    &mut catalog,
                    &models,
                    &availability,
                    &mut session,
                )
                .unwrap();
            let full = StratRec::default()
                .process_batch_with_catalog(&requests, &catalog, &models, &availability)
                .unwrap();
            assert_eq!(incremental, full, "epoch {epoch}");
            if epoch > 0 {
                assert!(session.last_repaired_rows() <= requests.len());
            }
        }
        // Flipping back to the flat path re-primes rather than serving from
        // the sharded cache variant.
        let flat_layer = StratRec::default();
        let report = flat_layer
            .process_batch_with_session(
                &requests,
                &mut catalog,
                &models,
                &availability,
                &mut session,
            )
            .unwrap();
        assert_eq!(session.last_repaired_rows(), requests.len(), "re-primed");
        let full = flat_layer
            .process_batch_with_catalog(&requests, &catalog, &models, &availability)
            .unwrap();
        assert_eq!(report, full);
        session.detach(&mut catalog);
        assert_eq!(catalog.delta_subscriber_count(), 0);
    }

    #[test]
    fn tenant_batches_split_the_budget_and_honor_floors() {
        use crate::fairness::{FairnessPolicy, TenantShare};
        let (catalog, models, requests, availability) = session_fixture();
        // Tenant 0 floods the queue with 10× the volume of tenants 1 and 2.
        let heavy: Vec<DeploymentRequest> = (0..10).flat_map(|_| requests.clone()).collect();
        let light_a = requests.clone();
        let light_b = &requests[..3];
        let policy = FairnessPolicy::new(vec![
            TenantShare::new(0.2, 1.0),
            TenantShare::new(0.2, 1.0),
            TenantShare::new(0.2, 1.0),
        ])
        .unwrap();
        for layer in [StratRec::default(), StratRec::default().with_shards(4)] {
            let outcomes = layer
                .process_tenant_batches(
                    &[&heavy, &light_a, light_b],
                    &catalog,
                    &models,
                    &availability,
                    &policy,
                )
                .unwrap();
            assert_eq!(outcomes.len(), 3);
            let budget = availability.expectation().value();
            let total: f64 = outcomes.iter().map(|o| o.granted.value()).sum();
            assert!(total <= budget + 1e-12);
            for outcome in &outcomes[1..] {
                // The heavy tenant must never push a light one below its
                // floor (a tenant demanding less than the floor is simply
                // satisfied in full).
                let entitled = (0.2 * budget).min(outcome.demand);
                assert!(
                    outcome.granted.value() >= entitled - 1e-12,
                    "tenant {} got {} under its entitlement {}",
                    outcome.tenant,
                    outcome.granted.value(),
                    entitled
                );
            }
            // Each tenant's selection is exactly the Aggregator under its
            // own grant.
            let aggregator = BatchStrat::new(layer.config.objective, layer.config.aggregation);
            let matrix = layer
                .engine
                .workforce_matrix(&light_a, &catalog, &models, aggregator.eligibility)
                .unwrap();
            let requirements = matrix.aggregate(layer.config.k, layer.config.aggregation);
            let expected = aggregator.select(&light_a, &requirements, outcomes[1].granted);
            assert_eq!(outcomes[1].batch, expected);
        }
        // Arity mismatches fail typed.
        assert!(matches!(
            StratRec::default().process_tenant_batches(
                &[&heavy],
                &catalog,
                &models,
                &availability,
                &policy
            ),
            Err(StratRecError::InvalidFairnessPolicy(_))
        ));
    }
}
