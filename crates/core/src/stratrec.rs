//! The StratRec middle layer (paper Figure 1, §2.2).
//!
//! [`StratRec`] wires the two modules together: the **Aggregator**
//! ([`BatchStrat`]) triages a batch of deployment requests against worker
//! availability and recommends `k` strategies for each satisfied request;
//! every unsatisfied request is then forwarded to **ADPaR** ([`AdparExact`])
//! which recommends the closest alternative deployment parameters for which
//! `k` strategies exist.
//!
//! Both stages run over a shared [`StrategyCatalog`] and execute on a
//! [`BatchEngine`]: eligibility is an R-tree box query instead of an
//! `O(|S|)` scan per request, the workforce-matrix rows are sharded across
//! a scoped thread pool, and the independent ADPaR problems of a batch fan
//! out in parallel with one reusable solver scratch per worker. Outputs are
//! identical to the sequential scan pipeline (see
//! `tests/catalog_parity.rs`).

use serde::{Deserialize, Serialize};

use crate::adpar::AdparSolution;
use crate::availability::{AvailabilityPdf, WorkerAvailability};
use crate::batch::{BatchObjective, BatchOutcome, BatchStrat};
use crate::catalog::StrategyCatalog;
use crate::engine::BatchEngine;
use crate::error::StratRecError;
use crate::model::{DeploymentRequest, Strategy};
use crate::modeling::ModelLibrary;
use crate::workforce::AggregationMode;

/// Configuration of the middle layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StratRecConfig {
    /// Number of strategies to recommend per request.
    pub k: usize,
    /// Platform-centric objective of the Aggregator.
    pub objective: BatchObjective,
    /// Workforce aggregation mode over the `k` recommended strategies.
    pub aggregation: AggregationMode,
}

impl Default for StratRecConfig {
    fn default() -> Self {
        Self {
            k: 3,
            objective: BatchObjective::Throughput,
            aggregation: AggregationMode::Sum,
        }
    }
}

/// The alternative parameters recommended to one unsatisfied request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlternativeRecommendation {
    /// Index of the request in the input batch.
    pub request_index: usize,
    /// The ADPaR solution, or the error explaining why none exists (e.g. the
    /// platform has fewer than `k` strategies in total).
    pub solution: Result<AdparSolution, StratRecError>,
}

/// The full report produced for one batch of deployment requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratRecReport {
    /// Expected worker availability the batch was planned with.
    pub availability: WorkerAvailability,
    /// Outcome of the Aggregator (satisfied requests and their strategies).
    pub batch: BatchOutcome,
    /// Alternative parameters for every unsatisfied request, in the order of
    /// [`BatchOutcome::unsatisfied`].
    pub alternatives: Vec<AlternativeRecommendation>,
}

impl StratRecReport {
    /// Number of requests that received either direct recommendations or a
    /// feasible alternative.
    #[must_use]
    pub fn served_requests(&self) -> usize {
        self.batch.satisfied.len()
            + self
                .alternatives
                .iter()
                .filter(|a| a.solution.is_ok())
                .count()
    }
}

/// The optimization-driven middle layer between requesters, workers and the
/// platform.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StratRec {
    /// Middle-layer configuration.
    pub config: StratRecConfig,
    /// Batch executor sharding workforce-matrix rows and ADPaR solves
    /// across scoped threads (defaults to one worker per core).
    pub engine: BatchEngine,
}

impl StratRec {
    /// Creates a middle layer with the given configuration and the default
    /// one-worker-per-core [`BatchEngine`].
    #[must_use]
    pub fn new(config: StratRecConfig) -> Self {
        Self {
            config,
            engine: BatchEngine::new(),
        }
    }

    /// Replaces the batch engine (e.g. [`BatchEngine::sequential`] for
    /// differential testing or a thread cap for co-tenanted services).
    #[must_use]
    pub fn with_engine(mut self, engine: BatchEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Processes a batch of deployment requests: estimates availability from
    /// the pdf, runs the Aggregator, and sends every unsatisfied request to
    /// ADPaR.
    ///
    /// Builds a temporary [`StrategyCatalog`] over `strategies`; callers
    /// serving many batches over the same strategy set should build the
    /// catalog once and use [`Self::process_batch_with_catalog`].
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a strategy has no fitted
    /// model in `models`.
    pub fn process_batch(
        &self,
        requests: &[DeploymentRequest],
        strategies: &[Strategy],
        models: &ModelLibrary,
        availability: &AvailabilityPdf,
    ) -> Result<StratRecReport, StratRecError> {
        let catalog = StrategyCatalog::from_slice(strategies);
        self.process_batch_with_catalog(requests, &catalog, models, availability)
    }

    /// Processes a batch over a shared, pre-indexed [`StrategyCatalog`] on
    /// the configured [`BatchEngine`]: the Aggregator answers eligibility
    /// through the catalog's R-tree with the workforce-matrix rows sharded
    /// across scoped threads, and the unsatisfied requests fan out to ADPaR
    /// in parallel with one reusable solver scratch per worker. Results are
    /// identical to the sequential scan pipeline and deterministic
    /// regardless of thread count.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a catalog strategy has
    /// no fitted model in `models`.
    pub fn process_batch_with_catalog(
        &self,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        availability: &AvailabilityPdf,
    ) -> Result<StratRecReport, StratRecError> {
        let expected = availability.expectation();
        let aggregator = BatchStrat::new(self.config.objective, self.config.aggregation);
        let matrix =
            self.engine
                .workforce_matrix(requests, catalog, models, aggregator.eligibility)?;
        let batch = aggregator.recommend_from_matrix(requests, &matrix, self.config.k, expected);
        let solutions =
            self.engine
                .solve_adpar_batch(requests, catalog, &batch.unsatisfied, self.config.k);
        let alternatives = batch
            .unsatisfied
            .iter()
            .zip(solutions)
            .map(|(&request_index, solution)| AlternativeRecommendation {
                request_index,
                solution,
            })
            .collect();
        Ok(StratRecReport {
            availability: expected,
            batch,
            alternatives,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pdf(w: f64) -> AvailabilityPdf {
        AvailabilityPdf::certain(w)
    }

    #[test]
    fn running_example_end_to_end() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let models = crate::examples_data::running_example_models();
        let layer = StratRec::new(StratRecConfig {
            k: 3,
            objective: BatchObjective::Throughput,
            aggregation: AggregationMode::Max,
        });
        let report = layer
            .process_batch(&requests, &strategies, &models, &pdf(0.8))
            .unwrap();
        assert!((report.availability.value() - 0.8).abs() < 1e-12);
        assert_eq!(report.batch.satisfied.len(), 1);
        assert_eq!(report.batch.satisfied[0].request_index, 2);
        assert_eq!(report.alternatives.len(), 2);
        // Both unsatisfied requests obtain feasible alternative parameters.
        assert!(report.alternatives.iter().all(|a| a.solution.is_ok()));
        assert_eq!(report.served_requests(), 3);
        // d1's alternative matches the paper: (0.4, 0.5, 0.28).
        let d1 = report
            .alternatives
            .iter()
            .find(|a| a.request_index == 0)
            .unwrap();
        let solution = d1.solution.as_ref().unwrap();
        assert!((solution.alternative.cost - 0.5).abs() < 1e-9);
    }

    #[test]
    fn default_config_is_reasonable() {
        let config = StratRecConfig::default();
        assert_eq!(config.k, 3);
        assert_eq!(config.objective, BatchObjective::Throughput);
        assert_eq!(config.aggregation, AggregationMode::Sum);
    }

    #[test]
    fn k_larger_than_strategy_count_yields_errors_in_alternatives() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let models = crate::examples_data::running_example_models();
        let layer = StratRec::new(StratRecConfig {
            k: 10,
            ..StratRecConfig::default()
        });
        let report = layer
            .process_batch(&requests, &strategies, &models, &pdf(0.9))
            .unwrap();
        assert!(report.batch.satisfied.is_empty());
        assert_eq!(report.alternatives.len(), 3);
        assert!(report
            .alternatives
            .iter()
            .all(|a| matches!(a.solution, Err(StratRecError::NotEnoughStrategies { .. }))));
        assert_eq!(report.served_requests(), 0);
    }

    #[test]
    fn missing_models_propagate() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let layer = StratRec::default();
        assert!(layer
            .process_batch(&requests, &strategies, &ModelLibrary::new(), &pdf(0.5))
            .is_err());
    }

    #[test]
    fn zero_availability_pushes_everything_to_adpar() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let models = crate::examples_data::running_example_models();
        let layer = StratRec::new(StratRecConfig {
            k: 3,
            objective: BatchObjective::Payoff,
            aggregation: AggregationMode::Max,
        });
        let report = layer
            .process_batch(&requests, &strategies, &models, &pdf(0.0))
            .unwrap();
        assert!(report.batch.satisfied.is_empty());
        assert_eq!(report.alternatives.len(), 3);
    }
}
