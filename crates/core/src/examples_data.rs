//! The paper's running example (Example 1 / Table 1).
//!
//! Three sentence-translation deployment requests and four deployment
//! strategies, normalized into `[0, 1]`:
//!
//! | | Quality | Cost | Latency |
//! |---|---|---|---|
//! | d1 | 0.40 | 0.17 | 0.28 |
//! | d2 | 0.80 | 0.20 | 0.28 |
//! | d3 | 0.70 | 0.83 | 0.28 |
//! | s1 = SIM-COL-CRO | 0.50 | 0.25 | 0.28 |
//! | s2 = SEQ-IND-CRO | 0.75 | 0.33 | 0.28 |
//! | s3 = SIM-IND-CRO | 0.80 | 0.50 | 0.14 |
//! | s4 = SIM-IND-HYB | 0.88 | 0.58 | 0.14 |
//!
//! With `k = 3` and expected availability `W = 0.8`, only `d3` can be served
//! (by `{s2, s3, s4}`); `d1` and `d2` are forwarded to ADPaR.

use crate::model::{
    DeploymentParameters, DeploymentRequest, Organization, Strategy, Structure, Style, TaskType,
};
use crate::modeling::{ModelLibrary, StrategyModel};

/// The four strategies of Table 1, in order `s1 … s4`.
#[must_use]
pub fn running_example_strategies() -> Vec<Strategy> {
    vec![
        Strategy::new(
            1,
            Structure::Simultaneous,
            Organization::Collaborative,
            Style::CrowdOnly,
            DeploymentParameters::clamped(0.5, 0.25, 0.28),
        ),
        Strategy::new(
            2,
            Structure::Sequential,
            Organization::Independent,
            Style::CrowdOnly,
            DeploymentParameters::clamped(0.75, 0.33, 0.28),
        ),
        Strategy::new(
            3,
            Structure::Simultaneous,
            Organization::Independent,
            Style::CrowdOnly,
            DeploymentParameters::clamped(0.8, 0.5, 0.14),
        ),
        Strategy::new(
            4,
            Structure::Simultaneous,
            Organization::Independent,
            Style::Hybrid,
            DeploymentParameters::clamped(0.88, 0.58, 0.14),
        ),
    ]
}

/// The three deployment requests of Table 1, in order `d1 … d3`.
#[must_use]
pub fn running_example_requests() -> Vec<DeploymentRequest> {
    vec![
        DeploymentRequest::new(
            1,
            TaskType::SentenceTranslation,
            DeploymentParameters::clamped(0.4, 0.17, 0.28),
        ),
        DeploymentRequest::new(
            2,
            TaskType::SentenceTranslation,
            DeploymentParameters::clamped(0.8, 0.2, 0.28),
        ),
        DeploymentRequest::new(
            3,
            TaskType::SentenceTranslation,
            DeploymentParameters::clamped(0.7, 0.83, 0.28),
        ),
    ]
}

/// A simple model library for the running example: every strategy shares the
/// linear model `param = 1.0 · w + 0.0`, i.e. satisfying a quality threshold
/// `q` needs a workforce fraction of `q` while cost and latency budgets are
/// met even with no workers. This keeps the worked example self-contained;
/// real deployments fit per-strategy models from history (§3.1).
#[must_use]
pub fn running_example_models() -> ModelLibrary {
    ModelLibrary::uniform_for(
        &running_example_strategies(),
        StrategyModel::uniform(1.0, 0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_values_are_reproduced() {
        let strategies = running_example_strategies();
        let requests = running_example_requests();
        assert_eq!(strategies.len(), 4);
        assert_eq!(requests.len(), 3);
        assert_eq!(strategies[0].name(), "SIM-COL-CRO");
        assert_eq!(strategies[1].name(), "SEQ-IND-CRO");
        assert_eq!(strategies[2].name(), "SIM-IND-CRO");
        assert_eq!(strategies[3].name(), "SIM-IND-HYB");
        assert!((requests[1].params.quality - 0.8).abs() < 1e-12);
        assert!((strategies[3].params.cost - 0.58).abs() < 1e-12);
    }

    #[test]
    fn only_d3_is_satisfiable_directly() {
        let strategies = running_example_strategies();
        let requests = running_example_requests();
        assert!(requests[0].eligible_strategies(&strategies).len() < 3);
        assert!(requests[1].eligible_strategies(&strategies).len() < 3);
        assert_eq!(requests[2].eligible_strategies(&strategies).len(), 3);
    }

    #[test]
    fn model_library_covers_all_strategies() {
        let models = running_example_models();
        for s in running_example_strategies() {
            assert!(models.get(s.id).is_some());
        }
    }
}
