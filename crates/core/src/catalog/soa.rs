//! Catalog-resident SoA coordinate block + packed liveness bitmap.
//!
//! The workforce kernel ([`crate::workforce::kernel`]) streams every slot of
//! the catalog per request row. The row-of-structs layout the rest of the
//! catalog uses (`Vec<Strategy>`, `Vec<bool>`) is hostile to that access
//! pattern: each eligibility test touches three `f64`s buried inside a
//! `Strategy` (id, enums, padding come along for the cache line), and the
//! `Vec<bool>` liveness costs a byte-granular load per slot. This block keeps
//! the same data in the shape the memory system wants:
//!
//! * three contiguous per-axis `f64` columns (`quality`, `cost`, `latency`)
//!   holding the **raw** strategy parameters, so the kernel can evaluate the
//!   exact [`DeploymentParameters::satisfies`] predicate straight off the
//!   columns (the `1e-9` tolerance needs `f64` — an `f32` column could not
//!   carry it, see the kernel module docs);
//! * a packed liveness bitmap (bit `slot % 64` of word `slot / 64`), letting
//!   the kernel skip 64 retired/ineligible slots per zero word and 8 per
//!   zero mask byte.
//!
//! The block is maintained under the same overlay/compact discipline as the
//! R-tree and the axis orders: [`Self::push_live`] on every catalog insert,
//! [`Self::retire`] on every retirement, and a dense [`Self::build`] rebuild
//! at every compaction. It is *always* exact (no tail/tombstone laziness):
//! the columns and bitmap mirror `strategies`/`live` slot for slot at every
//! epoch, which the churn-replay test below pins against a fresh rebuild
//! after every single mutation.

use serde::{Deserialize, Serialize};

use crate::model::{DeploymentParameters, Strategy};

/// Bits per packed liveness word.
pub(crate) const WORD_BITS: usize = 64;

/// The columnar mirror of the catalog's slot-parallel state: per-axis
/// parameter columns plus the packed liveness bitmap.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub(crate) struct SoaBlock {
    /// Raw strategy quality per slot (retired slots keep their last value;
    /// the bitmap masks them out).
    quality: Vec<f64>,
    /// Raw strategy cost per slot.
    cost: Vec<f64>,
    /// Raw strategy latency per slot.
    latency: Vec<f64>,
    /// Packed liveness: bit `slot % 64` of word `slot / 64`. Bits at or
    /// beyond the slot count are always zero.
    live_words: Vec<u64>,
}

impl SoaBlock {
    /// Builds the block densely from slot-parallel strategies and liveness —
    /// construction, compaction, and the shadow rebuild the churn tests
    /// compare against.
    pub(crate) fn build(strategies: &[Strategy], live: &[bool]) -> Self {
        debug_assert_eq!(strategies.len(), live.len());
        let mut block = Self {
            quality: Vec::with_capacity(strategies.len()),
            cost: Vec::with_capacity(strategies.len()),
            latency: Vec::with_capacity(strategies.len()),
            live_words: vec![0; strategies.len().div_ceil(WORD_BITS)],
        };
        for (slot, strategy) in strategies.iter().enumerate() {
            block.quality.push(strategy.params.quality);
            block.cost.push(strategy.params.cost);
            block.latency.push(strategy.params.latency);
            if live[slot] {
                block.live_words[slot / WORD_BITS] |= 1_u64 << (slot % WORD_BITS);
            }
        }
        block
    }

    /// Appends one live slot (the [`StrategyCatalog::insert`] hook).
    ///
    /// [`StrategyCatalog::insert`]: super::StrategyCatalog::insert
    pub(crate) fn push_live(&mut self, params: &DeploymentParameters) {
        let slot = self.quality.len();
        self.quality.push(params.quality);
        self.cost.push(params.cost);
        self.latency.push(params.latency);
        if slot.is_multiple_of(WORD_BITS) {
            self.live_words.push(0);
        }
        self.live_words[slot / WORD_BITS] |= 1_u64 << (slot % WORD_BITS);
    }

    /// Clears a slot's liveness bit (the [`StrategyCatalog::retire`] hook);
    /// the coordinate columns keep the stale values, masked out forever.
    ///
    /// [`StrategyCatalog::retire`]: super::StrategyCatalog::retire
    pub(crate) fn retire(&mut self, slot: usize) {
        self.live_words[slot / WORD_BITS] &= !(1_u64 << (slot % WORD_BITS));
    }

    /// Number of slots the block covers (live + retired).
    pub(crate) fn len(&self) -> usize {
        self.quality.len()
    }

    /// The per-slot quality column.
    pub(crate) fn quality(&self) -> &[f64] {
        &self.quality
    }

    /// The per-slot cost column.
    pub(crate) fn cost(&self) -> &[f64] {
        &self.cost
    }

    /// The per-slot latency column.
    pub(crate) fn latency(&self) -> &[f64] {
        &self.latency
    }

    /// The packed liveness words.
    pub(crate) fn live_words(&self) -> &[u64] {
        &self.live_words
    }

    /// Whether `slot`'s liveness bit is set (`false` out of range).
    #[cfg(test)]
    pub(crate) fn is_live(&self, slot: usize) -> bool {
        self.live_words
            .get(slot / WORD_BITS)
            .is_some_and(|word| (word >> (slot % WORD_BITS)) & 1 == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{RebuildPolicy, StrategyCatalog};
    use super::*;

    fn strategy(id: u64, q: f64, c: f64, l: f64) -> Strategy {
        Strategy::from_params(id, DeploymentParameters::clamped(q, c, l))
    }

    fn varied_strategy(id: u64) -> Strategy {
        strategy(
            id,
            0.3 + ((id * 13) % 60) as f64 / 100.0,
            0.2 + ((id * 29) % 70) as f64 / 100.0,
            0.1 + ((id * 17) % 80) as f64 / 100.0,
        )
    }

    /// The block mirrors `strategies`/`live` exactly (a fresh dense rebuild
    /// is bit-identical to the incrementally maintained state).
    fn assert_soa_parity(catalog: &StrategyCatalog, context: &str) {
        let fresh = SoaBlock::build(&catalog.strategies, &catalog.live);
        assert_eq!(catalog.soa, fresh, "{context}");
        assert_eq!(catalog.soa.len(), catalog.slot_count(), "{context}");
        for slot in 0..catalog.slot_count() + 2 {
            assert_eq!(
                catalog.soa.is_live(slot),
                catalog.is_live(slot),
                "{context}, slot {slot}"
            );
        }
    }

    #[test]
    fn construction_mirrors_the_strategy_set() {
        for n in [0_u64, 1, 63, 64, 65, 130] {
            let strategies: Vec<Strategy> = (0..n).map(varied_strategy).collect();
            let catalog = StrategyCatalog::from_slice(&strategies);
            assert_soa_parity(&catalog, &format!("n = {n}"));
            assert_eq!(
                catalog.soa.live_words().len(),
                (n as usize).div_ceil(WORD_BITS)
            );
            for (slot, s) in strategies.iter().enumerate() {
                assert_eq!(catalog.soa.quality()[slot], s.params.quality);
                assert_eq!(catalog.soa.cost()[slot], s.params.cost);
                assert_eq!(catalog.soa.latency()[slot], s.params.latency);
            }
        }
    }

    #[test]
    fn bits_beyond_the_slot_count_stay_zero() {
        let strategies: Vec<Strategy> = (0..70).map(varied_strategy).collect();
        let mut catalog = StrategyCatalog::from_slice(&strategies);
        assert!(catalog.retire(69));
        catalog.insert(varied_strategy(70));
        for (w, word) in catalog.soa.live_words().iter().enumerate() {
            for bit in 0..WORD_BITS {
                let slot = w * WORD_BITS + bit;
                if slot >= catalog.slot_count() {
                    assert_eq!((word >> bit) & 1, 0, "stray bit at slot {slot}");
                }
            }
        }
    }

    /// The SoA block follows every insert / retire / compact of a churned
    /// catalog, pinned against a fresh rebuild after **every** mutation.
    #[test]
    fn churn_replay_matches_a_fresh_rebuild_at_every_step() {
        let initial: Vec<Strategy> = (0..70).map(varied_strategy).collect();
        let mut catalog = StrategyCatalog::with_policy(initial, RebuildPolicy::threshold(4));
        let mut next_id = 70_u64;
        for window in 0..6_usize {
            for _ in 0..3 {
                catalog.insert(varied_strategy(next_id));
                next_id += 1;
                assert_soa_parity(&catalog, &format!("window {window}, after insert"));
            }
            let live = catalog.live_indices();
            for pick in [window % live.len(), (window * 7 + 2) % live.len()] {
                // Double retirements are no-ops and must not flip bits.
                catalog.retire(live[pick]);
                assert_soa_parity(&catalog, &format!("window {window}, after retire {pick}"));
            }
            if window % 2 == 1 {
                catalog.compact();
                assert_soa_parity(&catalog, &format!("window {window}, after compact"));
                assert_eq!(catalog.soa.len(), catalog.len());
            }
        }
        // Merges and forced rebuilds leave slot-parallel data untouched.
        catalog.merge_overlay();
        assert_soa_parity(&catalog, "after merge_overlay");
        catalog.force_rebuild();
        assert_soa_parity(&catalog, "after force_rebuild");
    }
}
