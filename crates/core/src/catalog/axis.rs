//! Catalog-resident per-axis slot orders.
//!
//! The catalog owns three slot permutations, one per normalized axis, each
//! sorted ascending by `(coordinate, slot)`. They follow the same
//! log-structured discipline as the R-tree — a sorted *base* covering the
//! slots present at the last merge, a sorted *tail* maintained per insert,
//! tombstones filtered at query time — so
//! [`StrategyCatalog::axis_order_into`] is exact at every churn point
//! without sorting. Because the ADPaR relaxation `max(0, coord − threshold)`
//! is monotone in the coordinate, these orders **are** the ascending
//! per-axis relaxation orders of any request; catalog-backed
//! [`crate::adpar::AdparProblem`]s walk them instead of sorting.

use stratrec_geometry::{Axis, Point3};

use super::StrategyCatalog;

/// Tail size up to which the per-axis sorted tails are maintained
/// incrementally. Far above
/// [`DEFAULT_REBUILD_THRESHOLD`](super::DEFAULT_REBUILD_THRESHOLD); only
/// unbounded policies ever cross it.
pub(super) const SORTED_TAIL_LIMIT: usize = 1024;

impl StrategyCatalog {
    /// Writes the **live** slots into `out`, sorted ascending by
    /// `(normalized coordinate on axis, slot)` — exact at every churn point.
    ///
    /// The order is merged on the fly from the pre-sorted per-axis base
    /// permutation (rebuilt at every overlay merge) and the per-axis sorted
    /// tail (maintained on every insert), filtering tombstones — `O(live)`
    /// with **no allocation beyond `out`**, instead of a full
    /// `O(|S| log |S|)` sort. (If the tail has outgrown the incremental
    /// sorted-tail regime — possible only with rebuild thresholds above
    /// `SORTED_TAIL_LIMIT` — a tail copy is sorted per call instead.)
    /// Because the ADPaR relaxation `max(0, coord − threshold)` is monotone
    /// in the coordinate, this order **is** the ascending per-axis
    /// relaxation order of any request — catalog-backed
    /// [`crate::adpar::AdparProblem`]s derive their sweep orders from it
    /// without sorting.
    pub fn axis_order_into(&self, axis: Axis, out: &mut Vec<usize>) {
        let overflow_tail = if self.axis_tail_sorted {
            None
        } else {
            Some(sorted_axis_tail(&self.points, &self.tail, axis))
        };
        let tail_sorted = overflow_tail
            .as_deref()
            .unwrap_or(&self.axis_tail[axis.index()]);
        merge_axis_order_into(
            &self.axis_base[axis.index()],
            tail_sorted,
            &self.live,
            &self.points,
            axis,
            out,
        );
    }

    /// Allocating convenience for [`Self::axis_order_into`].
    #[must_use]
    pub fn axis_order(&self, axis: Axis) -> Vec<usize> {
        let mut out = Vec::new();
        self.axis_order_into(axis, &mut out);
        out
    }

    /// Registers a freshly inserted tail `slot` with the per-axis sorted
    /// tails, abandoning the incremental regime once the tail outgrows
    /// [`SORTED_TAIL_LIMIT`].
    pub(super) fn axis_tail_insert(&mut self, slot: usize) {
        if !self.axis_tail_sorted {
            return;
        }
        if self.tail.len() > SORTED_TAIL_LIMIT {
            self.axis_tail_sorted = false;
            for order in &mut self.axis_tail {
                order.clear();
            }
        } else {
            for axis in Axis::ALL {
                let order = &mut self.axis_tail[axis.index()];
                let pos = order.partition_point(|&s| axis_cmp(&self.points, axis, s, slot).is_lt());
                order.insert(pos, slot);
            }
        }
    }

    /// Drops a retired tail `slot` from the per-axis sorted tails (the
    /// caller has already removed it from `tail`); outside the incremental
    /// regime, an emptied tail restores it.
    pub(super) fn axis_tail_retire(&mut self, slot: usize) {
        if self.axis_tail_sorted {
            for order in &mut self.axis_tail {
                let pos = order
                    .iter()
                    .position(|&s| s == slot)
                    .expect("tail slots are present in every axis tail");
                order.remove(pos);
            }
        } else if self.tail.is_empty() {
            // An emptied tail trivially mirrors the (empty) axis tails.
            self.axis_tail_sorted = true;
        }
    }

    /// Clears the per-axis tails and restores the incremental regime — for
    /// use when the catalog tail has just been emptied (merge, rebuild or
    /// compaction).
    pub(super) fn axis_tail_reset(&mut self) {
        for order in &mut self.axis_tail {
            order.clear();
        }
        self.axis_tail_sorted = true;
    }

    /// Re-sorts the per-axis bases over exactly the live slots and resets
    /// the tails — the axis-order counterpart of a full index rebuild.
    pub(super) fn axis_rebuild_live(&mut self) {
        self.axis_base = sorted_axis_orders(&self.points, self.live_indices());
        self.axis_tail_reset();
    }
}

/// Total order of two slots on one axis: `(coordinate, slot)` under
/// `f64::total_cmp`, so ties break deterministically by slot number and
/// every comparison site agrees on edge values like `-0.0` vs `0.0` (a
/// `PartialOrd` tuple comparison would call those coordinates equal while
/// the sorts would not, desynchronizing the merged orders).
pub(super) fn axis_cmp(points: &[Point3], axis: Axis, a: usize, b: usize) -> std::cmp::Ordering {
    points[a]
        .coord(axis)
        .total_cmp(&points[b].coord(axis))
        .then(a.cmp(&b))
}

/// A copy of `slots` sorted ascending by `(coordinate on axis, slot)`.
pub(super) fn sorted_axis_tail(points: &[Point3], slots: &[usize], axis: Axis) -> Vec<usize> {
    let mut order = slots.to_vec();
    order.sort_unstable_by(|&a, &b| axis_cmp(points, axis, a, b));
    order
}

/// Builds the three per-axis permutations of `slots` sorted ascending by
/// `(coordinate, slot)`.
pub(super) fn sorted_axis_orders(points: &[Point3], slots: Vec<usize>) -> [Vec<usize>; 3] {
    Axis::ALL.map(|axis| sorted_axis_tail(points, &slots, axis))
}

/// Merges a sorted axis base with a sorted tail into `out` (cleared first),
/// dropping non-live base slots. Tail slots are always live — retiring a
/// tail slot removes it from the tail instead of tombstoning — so only the
/// base needs filtering. Serves both the query path
/// ([`StrategyCatalog::axis_order_into`]) and the overlay merge, keeping
/// the two orderings identical by construction.
pub(super) fn merge_axis_order_into(
    base: &[usize],
    tail_sorted: &[usize],
    live: &[bool],
    points: &[Point3],
    axis: Axis,
    out: &mut Vec<usize>,
) {
    out.clear();
    out.reserve(base.len() + tail_sorted.len());
    let mut tail_iter = tail_sorted.iter().copied().peekable();
    for slot in base.iter().copied().filter(|&slot| live[slot]) {
        while let Some(&t) = tail_iter.peek() {
            if axis_cmp(points, axis, t, slot).is_lt() {
                out.push(t);
                tail_iter.next();
            } else {
                break;
            }
        }
        out.push(slot);
    }
    out.extend(tail_iter);
}

#[cfg(test)]
mod tests {
    use super::super::{RebuildPolicy, StrategyCatalog};
    use super::SORTED_TAIL_LIMIT;
    use crate::model::{DeploymentParameters, Strategy};
    use stratrec_geometry::Axis;

    /// Reference: live slots sorted ascending by `(coordinate, slot)`.
    fn scan_axis_order(catalog: &StrategyCatalog, axis: Axis) -> Vec<usize> {
        let mut slots = catalog.live_indices();
        slots.sort_by(|&a, &b| {
            catalog.points()[a]
                .coord(axis)
                .total_cmp(&catalog.points()[b].coord(axis))
                .then(a.cmp(&b))
        });
        slots
    }

    #[test]
    fn axis_orders_match_a_sorted_scan() {
        let strategies = crate::examples_data::running_example_strategies();
        let catalog = StrategyCatalog::from_slice(&strategies);
        for axis in Axis::ALL {
            assert_eq!(catalog.axis_order(axis), scan_axis_order(&catalog, axis));
        }
        // Spot-check the quality axis: ascending 1 - quality means
        // descending quality, and the running example's qualities ascend
        // from s1 to s4.
        assert_eq!(catalog.axis_order(Axis::X), vec![3, 2, 1, 0]);
    }

    #[test]
    fn axis_orders_stay_exact_under_churn() {
        for policy in [
            RebuildPolicy::always(),
            RebuildPolicy::threshold(2),
            RebuildPolicy::never(),
        ] {
            let strategies = crate::examples_data::running_example_strategies();
            let mut catalog = StrategyCatalog::with_policy(strategies, policy);
            catalog.insert(Strategy::from_params(
                10,
                DeploymentParameters::clamped(0.8, 0.25, 0.31),
            ));
            catalog.retire(1);
            catalog.insert(Strategy::from_params(
                11,
                DeploymentParameters::clamped(0.65, 0.4, 0.1),
            ));
            for axis in Axis::ALL {
                assert_eq!(
                    catalog.axis_order(axis),
                    scan_axis_order(&catalog, axis),
                    "{policy:?}, {axis:?}, pre-merge"
                );
            }
            catalog.merge_overlay();
            catalog.retire(3);
            for axis in Axis::ALL {
                assert_eq!(
                    catalog.axis_order(axis),
                    scan_axis_order(&catalog, axis),
                    "{policy:?}, {axis:?}, post-merge"
                );
            }
            catalog.force_rebuild();
            for axis in Axis::ALL {
                assert_eq!(
                    catalog.axis_order(axis),
                    scan_axis_order(&catalog, axis),
                    "{policy:?}, {axis:?}, post-rebuild"
                );
            }
        }
    }

    #[test]
    fn axis_orders_survive_tail_overflow_under_never_policy() {
        // Past SORTED_TAIL_LIMIT the incremental sorted tails are abandoned
        // (keeping inserts O(1) amortized under unbounded policies) and the
        // query path sorts a tail copy instead; orders must stay exact
        // through the overflow, through retires inside it, and after the
        // merge that restores the incremental regime.
        let mut catalog = StrategyCatalog::with_policy(Vec::new(), RebuildPolicy::never());
        for i in 0..(SORTED_TAIL_LIMIT + 40) {
            let q = 0.3 + 0.4 * ((i % 97) as f64 / 97.0);
            catalog.insert(Strategy::from_params(
                i as u64,
                DeploymentParameters::clamped(q, 1.0 - q, (i % 13) as f64 / 13.0),
            ));
        }
        for axis in Axis::ALL {
            assert_eq!(
                catalog.axis_order(axis),
                scan_axis_order(&catalog, axis),
                "{axis:?}, overflowed tail"
            );
        }
        for slot in [0, 7, SORTED_TAIL_LIMIT + 5] {
            assert!(catalog.retire(slot));
        }
        for axis in Axis::ALL {
            assert_eq!(
                catalog.axis_order(axis),
                scan_axis_order(&catalog, axis),
                "{axis:?}, retires while overflowed"
            );
        }
        catalog.merge_overlay();
        assert!(catalog.overlay_is_empty());
        catalog.insert(Strategy::from_params(
            90_000,
            DeploymentParameters::clamped(0.5, 0.5, 0.5),
        ));
        for axis in Axis::ALL {
            assert_eq!(
                catalog.axis_order(axis),
                scan_axis_order(&catalog, axis),
                "{axis:?}, post-merge incremental regime"
            );
        }
    }

    #[test]
    fn axis_order_ties_break_by_slot() {
        let params = DeploymentParameters::clamped(0.7, 0.3, 0.4);
        let strategies = vec![
            Strategy::from_params(0, params),
            Strategy::from_params(1, params),
            Strategy::from_params(2, params),
        ];
        let catalog = StrategyCatalog::from_slice(&strategies);
        for axis in Axis::ALL {
            assert_eq!(catalog.axis_order(axis), vec![0, 1, 2]);
        }
    }

    #[test]
    fn negative_zero_coordinates_keep_the_total_order() {
        // clamped() preserves -0.0 (since -0.0 < 0.0 is false) and
        // total_cmp orders -0.0 before +0.0. Every comparison site — the
        // base sort, the insert-time partition point and the query-time
        // merge — must agree on that, or a -0.0 tail insert desynchronizes
        // the merged order from the documented (coordinate, slot) sort.
        let mut catalog = StrategyCatalog::with_policy(
            vec![Strategy::from_params(
                0,
                DeploymentParameters::clamped(0.7, 0.0, 0.4),
            )],
            RebuildPolicy::never(),
        );
        catalog.insert(Strategy::from_params(
            1,
            DeploymentParameters::clamped(0.7, -0.0, 0.4),
        ));
        assert_eq!(
            catalog.axis_order(Axis::Y),
            scan_axis_order(&catalog, Axis::Y)
        );
        assert_eq!(catalog.axis_order(Axis::Y), vec![1, 0]);
        catalog.merge_overlay();
        assert_eq!(catalog.axis_order(Axis::Y), vec![1, 0]);
    }
}
