//! Slot compaction: reclaiming tombstoned slots with an old→new remap.
//!
//! Stable slot indices (the overlay's contract) cost monotone growth:
//! retired slots are tombstoned, never reclaimed, so
//! [`StrategyCatalog::slot_count`] — and every slot-shaped allocation
//! downstream (workforce-matrix columns, per-slot relaxation vectors, axis
//! buffers, `BatchEngine` row widths) — grows without bound in an
//! indefinitely-churning service. [`StrategyCatalog::compact`] is the
//! generational rewrite of this log-structured scheme: it renumbers the live
//! slots densely (their relative order is preserved), drops retired
//! metadata, rebuilds the R-tree as a packed STR bulk load and re-sorts the
//! three axis orders over the compacted range, bumps the epoch and returns a
//! [`SlotRemap`] that every holder of old slot numbers applies.
//!
//! The remap contract: `forward[old]` is `Some(new)` for slots that were
//! live at compaction time and `None` for reclaimed (retired) slots. Dense
//! renumbering preserves ascending slot order, so remapped slot lists stay
//! sorted and tie-breaks by slot number (axis orders, sweep orders, STR
//! tie-breaking) are preserved — which is why every query, axis order and
//! ADPaR solve is *bit-identical* before and after compaction modulo the
//! remap (pinned by `tests/catalog_churn.rs` and `tests/catalog_parity.rs`).

use serde::{Deserialize, Serialize};
use stratrec_geometry::RTree;

use super::StrategyCatalog;

/// The old→new slot mapping returned by [`StrategyCatalog::compact`].
///
/// Slot references captured *before* the compaction — recommendation
/// `strategy_indices`, workforce-matrix columns, cached
/// [`crate::adpar::AdparSolution`]s — are renumbered through
/// [`Self::remap`]; a `None` answer means the slot had been retired and the
/// derived data referencing it is genuinely stale.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRemap {
    /// `forward[old] = Some(new)` for surviving (live) slots, `None` for
    /// reclaimed (retired) ones. Indexed by pre-compaction slot number.
    pub forward: Vec<Option<usize>>,
    /// Number of live slots after compaction — the new, dense slot range is
    /// `0..live_len`.
    pub live_len: usize,
    /// Catalog epoch the compaction was applied at (before the bump).
    source_epoch: u64,
    /// Catalog epoch after the compaction.
    target_epoch: u64,
}

impl SlotRemap {
    /// Builds a remap from raw parts — used by the delta trackers
    /// ([`super::delta`]) to compose consecutive compaction remaps into a
    /// single subscriber-scoped remap.
    pub(super) fn from_parts(
        forward: Vec<Option<usize>>,
        live_len: usize,
        source_epoch: u64,
        target_epoch: u64,
    ) -> Self {
        Self {
            forward,
            live_len,
            source_epoch,
            target_epoch,
        }
    }

    /// Number of pre-compaction slots the remap covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the pre-compaction catalog had no slots at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The new slot number of pre-compaction slot `old`, or `None` when the
    /// slot was reclaimed (retired before the compaction) or out of range.
    #[must_use]
    pub fn remap(&self, old: usize) -> Option<usize> {
        self.forward.get(old).copied().flatten()
    }

    /// Remaps a slice of pre-compaction slot numbers, or `None` when any of
    /// them was reclaimed — the caller's slot set predates a retirement and
    /// must be re-derived. Ascending inputs stay ascending (the renumbering
    /// is order-preserving).
    #[must_use]
    pub fn remap_slots(&self, slots: &[usize]) -> Option<Vec<usize>> {
        slots.iter().map(|&slot| self.remap(slot)).collect()
    }

    /// Iterates the surviving `(old, new)` slot pairs, ascending.
    pub fn mapped_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.forward
            .iter()
            .enumerate()
            .filter_map(|(old, new)| new.map(|new| (old, new)))
    }

    /// Whether the compaction renumbered nothing (no slot had ever been
    /// retired): every surviving slot keeps its number.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.live_len == self.forward.len()
    }

    /// The catalog epoch at which the compaction ran. The remap renumbers
    /// slot references expressed in the numbering in force at that epoch —
    /// i.e. captured anywhere between the *previous* compaction (exclusive)
    /// and this one (slot numbers are stable between compactions, so the
    /// whole window shares one numbering). References predating an earlier
    /// compaction live in an older numbering and must be taken through that
    /// compaction's remap first; feeding them here would silently alias
    /// other strategies.
    #[must_use]
    pub fn source_epoch(&self) -> u64 {
        self.source_epoch
    }

    /// The catalog epoch right after the compaction — the epoch remapped
    /// derived data should be re-keyed to.
    #[must_use]
    pub fn target_epoch(&self) -> u64 {
        self.target_epoch
    }
}

impl StrategyCatalog {
    /// Compacts the catalog: live slots are renumbered densely `0..len()`
    /// (relative order preserved), retired slot metadata is dropped, the
    /// R-tree is re-packed (STR bulk load over the compacted entries), the
    /// three axis orders are rebuilt over the new range and the overlay is
    /// cleared. The epoch is bumped — compaction is a mutation: every slot
    /// number handed out before it goes through the returned [`SlotRemap`].
    ///
    /// After `compact()`:
    ///
    /// * `slot_count() == len()` — no tombstones occupy the numbering;
    /// * [`Self::index_is_packed_live`] holds (Baseline3 shares the tree);
    /// * every query, axis order and catalog-backed ADPaR solve is
    ///   identical to its pre-compaction answer modulo the remap.
    ///
    /// Compacting a catalog that never retired anything still re-packs the
    /// index, clears the overlay and bumps the epoch; the returned remap is
    /// then the identity ([`SlotRemap::is_identity`]).
    pub fn compact(&mut self) -> SlotRemap {
        let source_epoch = self.epoch;
        let old_len = self.strategies.len();
        let mut forward = vec![None; old_len];
        let mut strategies = Vec::with_capacity(self.live_count);
        let mut points = Vec::with_capacity(self.live_count);
        for (old, strategy) in std::mem::take(&mut self.strategies).into_iter().enumerate() {
            if self.live[old] {
                forward[old] = Some(strategies.len());
                strategies.push(strategy);
                points.push(self.points[old]);
            }
        }
        let live_len = strategies.len();
        debug_assert_eq!(live_len, self.live_count);
        self.strategies = strategies;
        self.points = points;
        self.live.clear();
        self.live.resize(live_len, true);
        self.index = RTree::bulk_load_entries(
            self.points.iter().copied().enumerate().collect(),
            self.index.node_capacity(),
        );
        self.tail.clear();
        self.pending_tombstones.clear();
        self.axis_rebuild_live();
        self.soa = super::soa::SoaBlock::build(&self.strategies, &self.live);
        self.epoch += 1;
        self.merges += 1;
        self.packed = true;
        let remap = SlotRemap {
            forward,
            live_len,
            source_epoch,
            target_epoch: self.epoch,
        };
        self.delta_note_compact(&remap);
        if self.journal_enabled() {
            self.journal_note(super::CatalogMutation::Compact {
                remap: remap.clone(),
            });
        }
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::super::{RebuildPolicy, StrategyCatalog};
    use crate::model::{DeploymentParameters, Strategy};
    use stratrec_geometry::Axis;

    fn strategy(id: u64, q: f64, c: f64, l: f64) -> Strategy {
        Strategy::from_params(id, DeploymentParameters::clamped(q, c, l))
    }

    /// A churned running-example catalog: slots {0, 2} retired, slots
    /// {1, 3, 4, 5} live (4 and 5 inserted).
    fn churned(policy: RebuildPolicy) -> StrategyCatalog {
        let strategies = crate::examples_data::running_example_strategies();
        let mut catalog = StrategyCatalog::with_policy(strategies, policy);
        catalog.insert(strategy(10, 0.9, 0.45, 0.2));
        catalog.insert(strategy(11, 0.6, 0.15, 0.35));
        assert!(catalog.retire(0));
        assert!(catalog.retire(2));
        catalog
    }

    #[test]
    fn compaction_renumbers_live_slots_densely() {
        for policy in [
            RebuildPolicy::always(),
            RebuildPolicy::threshold(2),
            RebuildPolicy::never(),
        ] {
            let mut catalog = churned(policy);
            let epoch_before = catalog.epoch();
            let live_before: Vec<Strategy> = catalog
                .live_indices()
                .iter()
                .map(|&slot| catalog.strategy(slot).clone())
                .collect();
            let loosest = DeploymentParameters::default();
            let eligible_before = catalog.eligible_for(&loosest);

            let remap = catalog.compact();

            assert_eq!(catalog.slot_count(), catalog.len(), "{policy:?}");
            assert_eq!(catalog.len(), 4, "{policy:?}");
            assert_eq!(catalog.retired_count(), 0, "{policy:?}");
            assert!(catalog.overlay_is_empty(), "{policy:?}");
            assert!(catalog.index_is_packed_live(), "{policy:?}");
            assert_eq!(catalog.epoch(), epoch_before + 1, "{policy:?}");
            assert_eq!(catalog.strategies(), &live_before[..], "{policy:?}");

            // The remap covers the old numbering and preserves order.
            assert_eq!(remap.len(), 6, "{policy:?}");
            assert_eq!(remap.live_len, 4, "{policy:?}");
            assert!(!remap.is_identity(), "{policy:?}");
            assert_eq!(remap.remap(0), None, "{policy:?}");
            assert_eq!(remap.remap(1), Some(0), "{policy:?}");
            assert_eq!(remap.remap(2), None, "{policy:?}");
            assert_eq!(remap.remap(3), Some(1), "{policy:?}");
            assert_eq!(remap.remap(4), Some(2), "{policy:?}");
            assert_eq!(remap.remap(5), Some(3), "{policy:?}");
            assert_eq!(remap.remap(6), None, "out of range, {policy:?}");
            assert_eq!(remap.source_epoch(), epoch_before, "{policy:?}");
            assert_eq!(remap.target_epoch(), catalog.epoch(), "{policy:?}");
            assert_eq!(
                remap.mapped_pairs().collect::<Vec<_>>(),
                vec![(1, 0), (3, 1), (4, 2), (5, 3)],
                "{policy:?}"
            );

            // Queries answer the same live set under the new numbering.
            assert_eq!(
                catalog.eligible_for(&loosest),
                remap.remap_slots(&eligible_before).unwrap(),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn compaction_preserves_queries_and_axis_orders_modulo_remap() {
        for policy in [
            RebuildPolicy::always(),
            RebuildPolicy::threshold(2),
            RebuildPolicy::never(),
        ] {
            let mut catalog = churned(policy);
            let requests = crate::examples_data::running_example_requests();
            let eligible_before: Vec<Vec<usize>> = requests
                .iter()
                .map(|r| catalog.eligible_for_request(r))
                .collect();
            let axis_before: Vec<Vec<usize>> =
                Axis::ALL.iter().map(|&a| catalog.axis_order(a)).collect();

            let remap = catalog.compact();

            for (request, before) in requests.iter().zip(&eligible_before) {
                assert_eq!(
                    catalog.eligible_for_request(request),
                    remap.remap_slots(before).unwrap(),
                    "{policy:?}, request {:?}",
                    request.id
                );
            }
            for (&axis, before) in Axis::ALL.iter().zip(&axis_before) {
                assert_eq!(
                    catalog.axis_order(axis),
                    remap.remap_slots(before).unwrap(),
                    "{policy:?}, {axis:?}"
                );
            }
        }
    }

    #[test]
    fn compacting_without_retirements_is_the_identity() {
        let strategies = crate::examples_data::running_example_strategies();
        let mut catalog = StrategyCatalog::with_policy(strategies, RebuildPolicy::never());
        catalog.insert(strategy(9, 0.85, 0.2, 0.3));
        let epoch_before = catalog.epoch();
        let remap = catalog.compact();
        assert!(remap.is_identity());
        assert_eq!(remap.live_len, 5);
        assert_eq!(remap.remap_slots(&[0, 1, 4]).unwrap(), vec![0, 1, 4]);
        // Still a mutation: the tail was merged, the epoch bumped.
        assert!(catalog.overlay_is_empty());
        assert!(catalog.index_is_packed_live());
        assert_eq!(catalog.epoch(), epoch_before + 1);
    }

    #[test]
    fn compacting_an_empty_catalog_is_harmless() {
        let mut catalog = StrategyCatalog::new(Vec::new());
        let remap = catalog.compact();
        assert!(remap.is_empty());
        assert!(remap.is_identity());
        assert_eq!(remap.live_len, 0);
        assert_eq!(catalog.slot_count(), 0);
        assert_eq!(catalog.epoch(), 1);
    }

    #[test]
    fn remapping_a_reclaimed_slot_reports_staleness() {
        let mut catalog = churned(RebuildPolicy::default());
        let remap = catalog.compact();
        // Slot 0 was retired before compaction: any slot set containing it
        // is stale as a whole.
        assert_eq!(remap.remap_slots(&[1, 0, 3]), None);
        assert_eq!(remap.remap_slots(&[1, 3]), Some(vec![0, 1]));
    }

    #[test]
    fn repeated_compaction_is_stable() {
        let mut catalog = churned(RebuildPolicy::threshold(3));
        let first = catalog.compact();
        assert!(!first.is_identity());
        let strategies_after_first = catalog.strategies().to_vec();
        let second = catalog.compact();
        assert!(second.is_identity());
        assert_eq!(second.len(), first.live_len);
        assert_eq!(catalog.strategies(), &strategies_after_first[..]);
        // Churn keeps working on the compacted numbering.
        let slot = catalog.insert(strategy(77, 0.7, 0.3, 0.3));
        assert_eq!(slot, 4);
        assert!(catalog.retire(0));
        let third = catalog.compact();
        assert_eq!(third.remap(slot), Some(3));
        assert_eq!(catalog.slot_count(), 4);
    }
}
