//! Lock-free epoch snapshots: concurrent serving under churn.
//!
//! Everything upstream of this module is `&mut`-serialized: a churn epoch
//! and a serving batch cannot overlap, so throughput is capped at one
//! writer's pace no matter how many cores exist. This module splits the
//! catalog into the two halves a single-writer/many-reader service needs:
//!
//! * an [`EpochSnapshot`] — an **immutable** capture of the catalog's read
//!   state (strategies, normalized points, liveness bitmap, R-tree, axis
//!   orders, SoA mirror) at one epoch, shared as a cheaply-clonable
//!   `Arc<EpochSnapshot>`. Every read path that takes `&StrategyCatalog`
//!   serves from a pinned snapshot unchanged — the snapshot derefs to the
//!   catalog it captured;
//! * a [`ConcurrentCatalog`] — the publication cell. A single writer folds
//!   churn (insert / retire / compact) into its private working catalog
//!   under [`ConcurrentCatalog::update`] and publishes the result as the
//!   next snapshot with one pointer swap. Readers [`ConcurrentCatalog::pin`]
//!   the current snapshot and then serve **entirely lock-free**: the only
//!   synchronization a reader ever touches is the brief `Arc` clone at pin
//!   or migration time, never during a solve.
//!
//! # Migration
//!
//! A reader holding derived slot-shaped state (a workforce matrix, an
//! aggregation cache) does not recompute when the snapshot advances: a
//! [`SnapshotReader`] owns a [`DeltaSubscription`] on the writer's catalog,
//! and [`SnapshotReader::migrate`] drains the churn window as a
//! [`CatalogDelta`] while re-pinning the latest snapshot — the reader then
//! applies the delta exactly as the sequential incremental path does
//! ([`crate::workforce::WorkforceMatrix::apply_delta`]). The subscription
//! is released on drop (an RAII detach guard), so a reader that goes away
//! without ceremony cannot leak its tracker; a reader that *stalls* past
//! the catalog's [`StrategyCatalog::delta_lapse_limit`] is evicted and its
//! next migration fails with the typed
//! [`StratRecError::StaleSubscription`](crate::error::StratRecError::StaleSubscription),
//! after which [`SnapshotReader::re_pin`] recovers with a fresh
//! subscription and a full recompute.
//!
//! # Ordering contract
//!
//! The publish/acquire pair is a swap under a write lock against clones
//! under a read lock (`RwLock<Arc<EpochSnapshot>>`), with all writer-side
//! state behind one `Mutex` acquired *before* the cell in every path — the
//! lock pair is the `arc_swap`-style pointer swap this offline build can
//! express without `unsafe`. Two invariants follow, and the stress tests
//! below plus `tests/snapshot_isolation.rs` pin them:
//!
//! 1. **Committed-state reads**: every pinned snapshot is a state the
//!    writer published at an epoch boundary — readers can never observe a
//!    half-applied churn epoch, because mutation happens on the writer's
//!    private catalog and publication is a single pointer swap.
//! 2. **Monotonic epochs**: consecutive pins (and migrations) of one reader
//!    never move backwards.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use super::{CatalogDelta, CatalogMutation, DeltaSubscription, StrategyCatalog};
use crate::error::StratRecError;

/// An immutable capture of a catalog's read state at one epoch, shared as
/// `Arc<EpochSnapshot>`. Derefs to the captured [`StrategyCatalog`], so
/// every `&StrategyCatalog` read path (eligibility queries, axis orders,
/// catalog-backed ADPaR problems, workforce-matrix fills) serves from a
/// snapshot unchanged — and lock-free, since nothing can mutate it.
#[derive(Debug)]
pub struct EpochSnapshot {
    catalog: StrategyCatalog,
}

impl EpochSnapshot {
    /// Captures `catalog`'s read state (subscription lifecycle state is
    /// writer-side and deliberately left behind).
    fn capture(catalog: &StrategyCatalog) -> Self {
        Self {
            catalog: catalog.detached_clone(),
        }
    }

    /// The captured catalog.
    #[must_use]
    pub fn catalog(&self) -> &StrategyCatalog {
        &self.catalog
    }

    /// The catalog epoch this snapshot was published at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.catalog.epoch()
    }
}

impl Deref for EpochSnapshot {
    type Target = StrategyCatalog;

    fn deref(&self) -> &StrategyCatalog {
        &self.catalog
    }
}

/// Writer-side state: the single writer's working catalog, which also owns
/// every reader's [`DeltaSubscription`] tracker.
#[derive(Debug)]
struct Shared {
    /// The published snapshot cell. Readers clone the `Arc` under the read
    /// lock (nanoseconds, no allocation); the writer swaps a new snapshot
    /// in under the write lock. Lock order: `writer` before `current`,
    /// everywhere.
    current: RwLock<Arc<EpochSnapshot>>,
    /// The writer's private working catalog. Outside an
    /// [`ConcurrentCatalog::update`] critical section it is always
    /// byte-identical to the published snapshot's catalog (modulo the
    /// subscription table the snapshot strips).
    writer: Mutex<StrategyCatalog>,
    /// Snapshots published since construction (the initial snapshot is not
    /// counted — it was never *re*-published). Health counter surfaced by
    /// [`ConcurrentCatalog::stats`].
    published: AtomicU64,
}

impl Shared {
    /// Locks the writer catalog, shrugging off poison: the catalog is
    /// mutated only through `update`, whose closure runs *before* the
    /// publish step, so a panicking epoch simply never publishes — the
    /// writer state a panicked closure left behind is re-synchronized by
    /// the next successful `update`.
    fn lock_writer(&self) -> MutexGuard<'_, StrategyCatalog> {
        self.writer.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn load(&self) -> Arc<EpochSnapshot> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn store(&self, snapshot: Arc<EpochSnapshot>) {
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = snapshot;
    }
}

/// A point-in-time health sample of a [`ConcurrentCatalog`], read under the
/// writer lock so every field belongs to the same instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogStats {
    /// The writer catalog's current epoch (equals the published snapshot's
    /// epoch outside an `update` critical section).
    pub epoch: u64,
    /// Live reader [`DeltaSubscription`]s on the writer catalog.
    pub subscribers: usize,
    /// Delta trackers evicted so far for lapsing past the catalog's
    /// [`StrategyCatalog::delta_lapse_limit`].
    pub delta_evictions: u64,
    /// Snapshots published since construction (one per mutating `update`).
    pub published_epochs: u64,
}

/// The publication cell of the single-writer / many-reader catalog: one
/// writer folds churn into the next [`EpochSnapshot`] and publishes it
/// atomically, any number of readers pin snapshots and serve lock-free.
/// Cloning the handle clones the `Arc` — all clones share one cell (writers
/// racing on `update` serialize on the writer lock).
#[derive(Clone)]
pub struct ConcurrentCatalog {
    shared: Arc<Shared>,
}

impl ConcurrentCatalog {
    /// Wraps `catalog` and publishes it as the initial snapshot.
    #[must_use]
    pub fn new(catalog: StrategyCatalog) -> Self {
        let snapshot = Arc::new(EpochSnapshot::capture(&catalog));
        Self {
            shared: Arc::new(Shared {
                current: RwLock::new(snapshot),
                writer: Mutex::new(catalog),
                published: AtomicU64::new(0),
            }),
        }
    }

    /// Pins the currently published snapshot. The returned `Arc` keeps that
    /// epoch's state alive for as long as the caller holds it; serving from
    /// it takes no locks.
    #[must_use]
    pub fn pin(&self) -> Arc<EpochSnapshot> {
        self.shared.load()
    }

    /// The epoch of the currently published snapshot.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.pin().epoch()
    }

    /// Number of live reader subscriptions on the writer catalog.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.shared.lock_writer().delta_subscriber_count()
    }

    /// Runs one **churn epoch**: `f` mutates the writer's working catalog
    /// (insert / retire / compact, any number of them), and the result is
    /// published as the next snapshot in a single pointer swap before the
    /// writer lock is released. Returns `f`'s result and the snapshot now
    /// being served (unchanged if `f` performed no mutation — a read-only
    /// closure publishes nothing).
    ///
    /// Publication cost is one catalog clone per *epoch*, amortized over
    /// the epoch's mutations and paid on the writer's thread — never on a
    /// reader's. Batch an epoch's churn into one `update` call.
    pub fn update<R>(&self, f: impl FnOnce(&mut StrategyCatalog) -> R) -> (R, Arc<EpochSnapshot>) {
        let mut writer = self.shared.lock_writer();
        let before = writer.epoch();
        let result = f(&mut writer);
        if writer.epoch() == before {
            drop(writer);
            return (result, self.pin());
        }
        let snapshot = Arc::new(EpochSnapshot::capture(&writer));
        self.shared.store(Arc::clone(&snapshot));
        self.shared.published.fetch_add(1, Ordering::Relaxed);
        drop(writer);
        (result, snapshot)
    }

    /// [`Self::update`] with a durability hook between mutation and
    /// publication: `f` mutates the writer catalog as usual, then `log`
    /// receives the post-mutation catalog and the drained
    /// [`CatalogMutation`] journal **before** the new snapshot becomes
    /// visible to any reader — the write-ahead ordering a durable tier
    /// needs. If `log` fails, nothing is published: readers keep serving
    /// the previous (durable) snapshot and the error is returned.
    ///
    /// The mutation journal must be enabled on the writer catalog
    /// ([`StrategyCatalog::enable_journal`]); `update_logged` enables it on
    /// entry so the first logged epoch is never silently empty. A
    /// read-only `f` (epoch unchanged) skips `log` entirely.
    ///
    /// # Errors
    ///
    /// Propagates `log`'s error after discarding the unpublished mutation.
    /// The writer catalog **has** applied `f` at that point — callers that
    /// keep using the handle after a log failure must treat the writer
    /// state as ahead of the published state (the durable tier fail-stops
    /// instead).
    pub fn update_logged<R, E>(
        &self,
        f: impl FnOnce(&mut StrategyCatalog) -> R,
        log: impl FnOnce(&StrategyCatalog, &[CatalogMutation]) -> Result<(), E>,
    ) -> Result<(R, Arc<EpochSnapshot>), E> {
        let mut writer = self.shared.lock_writer();
        writer.enable_journal();
        let before = writer.epoch();
        let result = f(&mut writer);
        let mutations = writer.take_journal();
        if writer.epoch() == before {
            debug_assert!(
                mutations.is_empty(),
                "an unchanged epoch cannot have journaled mutations"
            );
            drop(writer);
            return Ok((result, self.pin()));
        }
        log(&writer, &mutations)?;
        let snapshot = Arc::new(EpochSnapshot::capture(&writer));
        self.shared.store(Arc::clone(&snapshot));
        self.shared.published.fetch_add(1, Ordering::Relaxed);
        drop(writer);
        Ok((result, snapshot))
    }

    /// A point-in-time health sample of the publication cell; see
    /// [`CatalogStats`]. Takes the writer lock briefly — a monitoring call,
    /// not a serving-path one.
    #[must_use]
    pub fn stats(&self) -> CatalogStats {
        let writer = self.shared.lock_writer();
        CatalogStats {
            epoch: writer.epoch(),
            subscribers: writer.delta_subscriber_count(),
            delta_evictions: writer.delta_evictions(),
            published_epochs: self.shared.published.load(Ordering::Relaxed),
        }
    }

    /// Registers a migrating reader: subscribes it to the writer catalog's
    /// delta feed and pins the snapshot of the same epoch, atomically with
    /// respect to concurrent `update`s — the reader's derived state and its
    /// subscription window start from the very same epoch.
    #[must_use]
    pub fn reader(&self) -> SnapshotReader {
        let mut writer = self.shared.lock_writer();
        let subscription = writer.subscribe_delta();
        let pinned = self.shared.load();
        debug_assert_eq!(pinned.epoch(), writer.epoch());
        drop(writer);
        SnapshotReader {
            shared: Arc::clone(&self.shared),
            pinned,
            subscription: Some(subscription),
        }
    }
}

impl std::fmt::Debug for ConcurrentCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentCatalog")
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

/// One migrating reader of a [`ConcurrentCatalog`]: a pinned
/// [`EpochSnapshot`] to serve from lock-free, plus the [`DeltaSubscription`]
/// that carries its derived state forward across epochs. Dropping the
/// reader releases the subscription (RAII detach — no leaked trackers).
#[derive(Debug)]
pub struct SnapshotReader {
    shared: Arc<Shared>,
    pinned: Arc<EpochSnapshot>,
    subscription: Option<DeltaSubscription>,
}

impl SnapshotReader {
    /// The snapshot this reader currently serves from.
    #[must_use]
    pub fn pinned(&self) -> &Arc<EpochSnapshot> {
        &self.pinned
    }

    /// The epoch this reader is pinned at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.pinned.epoch()
    }

    /// Advances the reader to the latest published snapshot, returning the
    /// [`CatalogDelta`] that brings slot-shaped derived state from the
    /// previously pinned epoch to the new one (empty when nothing was
    /// published since). Apply it before serving —
    /// [`Self::pinned`] already points at the new snapshot when this
    /// returns.
    ///
    /// # Errors
    ///
    /// Returns
    /// [`StratRecError::StaleSubscription`](crate::error::StratRecError::StaleSubscription)
    /// when this reader lapsed past the catalog's
    /// [`StrategyCatalog::delta_lapse_limit`] and was evicted; recover with
    /// [`Self::re_pin`] and a full recompute of the derived state.
    pub fn migrate(&mut self) -> Result<CatalogDelta, StratRecError> {
        let subscription = self
            .subscription
            .as_ref()
            .expect("subscription is only vacated transiently by re_pin/drop");
        let mut writer = self.shared.lock_writer();
        let delta = writer.take_delta(subscription)?;
        let pinned = self.shared.load();
        debug_assert_eq!(
            delta.to_epoch,
            pinned.epoch(),
            "writer state and published snapshot agree outside update sections"
        );
        drop(writer);
        self.pinned = pinned;
        Ok(delta)
    }

    /// Re-synchronizes from scratch: releases the old subscription (if any
    /// survives), subscribes afresh, and pins the snapshot of the same
    /// epoch. The recovery path after an eviction or a derived-state
    /// error — the caller recomputes against the returned snapshot.
    pub fn re_pin(&mut self) -> Arc<EpochSnapshot> {
        let mut writer = self.shared.lock_writer();
        if let Some(old) = self.subscription.take() {
            writer.unsubscribe_delta(old);
        }
        self.subscription = Some(writer.subscribe_delta());
        let pinned = self.shared.load();
        debug_assert_eq!(pinned.epoch(), writer.epoch());
        drop(writer);
        self.pinned = Arc::clone(&pinned);
        pinned
    }
}

impl Drop for SnapshotReader {
    fn drop(&mut self) {
        if let Some(subscription) = self.subscription.take() {
            self.shared.lock_writer().unsubscribe_delta(subscription);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::RebuildPolicy;
    use super::*;
    use crate::model::{DeploymentParameters, Strategy};

    fn strategy(id: u64, q: f64, c: f64, l: f64) -> Strategy {
        Strategy::from_params(id, DeploymentParameters::clamped(q, c, l))
    }

    fn running_concurrent() -> ConcurrentCatalog {
        ConcurrentCatalog::new(StrategyCatalog::with_policy(
            crate::examples_data::running_example_strategies(),
            RebuildPolicy::threshold(2),
        ))
    }

    #[test]
    fn pins_serve_the_published_epoch_and_survive_later_churn() {
        let concurrent = running_concurrent();
        let loosest = DeploymentParameters::default();
        let old = concurrent.pin();
        assert_eq!(old.epoch(), 0);
        assert_eq!(old.len(), 4);

        let ((slot, retired), fresh) = concurrent.update(|catalog| {
            let slot = catalog.insert(strategy(10, 0.9, 0.2, 0.2));
            (slot, catalog.retire(1))
        });
        assert!(retired);
        assert_eq!(fresh.epoch(), 2);
        assert_eq!(concurrent.epoch(), 2);

        // The old pin is frozen at its epoch: the churn is invisible to it.
        assert_eq!(old.epoch(), 0);
        assert_eq!(old.eligible_for(&loosest), vec![0, 1, 2, 3]);
        // The new snapshot serves the post-churn state.
        assert!(fresh.eligible_for(&loosest).contains(&slot));
        assert!(!fresh.is_live(1));
        // A fresh pin observes the newest snapshot.
        assert_eq!(concurrent.pin().epoch(), 2);
    }

    #[test]
    fn read_only_updates_publish_nothing() {
        let concurrent = running_concurrent();
        let before = concurrent.pin();
        let (len, after) = concurrent.update(|catalog| catalog.len());
        assert_eq!(len, 4);
        assert!(Arc::ptr_eq(&before, &after), "no mutation, no new snapshot");
    }

    #[test]
    fn snapshots_strip_writer_side_subscription_state() {
        let concurrent = running_concurrent();
        let _reader = concurrent.reader();
        assert_eq!(concurrent.subscriber_count(), 1);
        let (_, snapshot) = concurrent.update(|catalog| catalog.insert(strategy(9, 0.8, 0.3, 0.3)));
        assert_eq!(snapshot.catalog().delta_subscriber_count(), 0);
    }

    #[test]
    fn readers_migrate_forward_with_the_exact_delta() {
        let concurrent = running_concurrent();
        let mut reader = concurrent.reader();
        assert_eq!(reader.epoch(), 0);

        let (slot, _) = concurrent.update(|catalog| {
            let slot = catalog.insert(strategy(10, 0.9, 0.2, 0.2));
            assert!(catalog.retire(0));
            slot
        });
        let delta = reader.migrate().unwrap();
        assert_eq!(reader.epoch(), 2);
        assert_eq!(delta.from_epoch, 0);
        assert_eq!(delta.to_epoch, 2);
        assert_eq!(delta.inserted, vec![slot]);
        assert_eq!(delta.retired, vec![0]);

        // Nothing new: the next migration is an empty window.
        assert!(reader.migrate().unwrap().is_empty());

        // A compaction in the window arrives composed as a remap.
        concurrent.update(|catalog| {
            catalog.compact();
        });
        let delta = reader.migrate().unwrap();
        let remap = delta.remap.expect("window crossed a compaction");
        assert_eq!(remap.remap(0), None);
        assert_eq!(delta.target_cols, reader.pinned().slot_count());
    }

    #[test]
    fn dropping_a_reader_releases_its_subscription() {
        let concurrent = running_concurrent();
        let reader = concurrent.reader();
        let second = concurrent.reader();
        assert_eq!(concurrent.subscriber_count(), 2);
        drop(reader);
        assert_eq!(concurrent.subscriber_count(), 1);
        drop(second);
        assert_eq!(concurrent.subscriber_count(), 0);
    }

    #[test]
    fn evicted_readers_fail_typed_and_recover_by_re_pinning() {
        let concurrent = ConcurrentCatalog::new({
            let mut catalog = StrategyCatalog::with_policy(
                crate::examples_data::running_example_strategies(),
                RebuildPolicy::threshold(4),
            );
            catalog.set_delta_lapse_limit(8);
            catalog
        });
        let mut reader = concurrent.reader();
        for i in 0..20_u64 {
            concurrent.update(|catalog| catalog.insert(strategy(100 + i, 0.8, 0.3, 0.3)));
        }
        assert!(matches!(
            reader.migrate(),
            Err(StratRecError::StaleSubscription { .. })
        ));
        // Recovery: re-pin re-subscribes at the current epoch.
        let snapshot = reader.re_pin();
        assert_eq!(snapshot.epoch(), concurrent.epoch());
        assert_eq!(concurrent.subscriber_count(), 1);
        concurrent.update(|catalog| catalog.insert(strategy(999, 0.7, 0.4, 0.4)));
        assert_eq!(reader.migrate().unwrap().inserted.len(), 1);
    }

    #[test]
    fn stats_track_epoch_publishes_subscribers_and_evictions() {
        let concurrent = running_concurrent();
        let initial = concurrent.stats();
        assert_eq!(initial.epoch, 0);
        assert_eq!(initial.subscribers, 0);
        assert_eq!(initial.delta_evictions, 0);
        assert_eq!(initial.published_epochs, 0);

        let reader = concurrent.reader();
        concurrent.update(|catalog| {
            catalog.insert(strategy(10, 0.9, 0.2, 0.2));
            catalog.retire(0);
        });
        concurrent.update(|catalog| catalog.len()); // read-only: no publish
        let stats = concurrent.stats();
        assert_eq!(stats.epoch, 2, "two mutations in one epoch");
        assert_eq!(stats.subscribers, 1);
        assert_eq!(stats.published_epochs, 1, "one mutating update published");
        drop(reader);
        assert_eq!(concurrent.stats().subscribers, 0);
    }

    #[test]
    fn update_logged_hands_the_journal_to_the_log_before_publishing() {
        let concurrent = running_concurrent();
        let before = concurrent.pin();
        let logged = std::cell::RefCell::new(Vec::new());
        let (slot, snapshot) = concurrent
            .update_logged(
                |catalog| {
                    let slot = catalog.insert(strategy(10, 0.9, 0.2, 0.2));
                    assert!(catalog.retire(0));
                    slot
                },
                |catalog, mutations| -> Result<(), StratRecError> {
                    assert_eq!(catalog.epoch(), 2, "log sees the post-mutation state");
                    logged.borrow_mut().extend_from_slice(mutations);
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(snapshot.epoch(), 2);
        let mutations = logged.into_inner();
        assert_eq!(mutations.len(), 2);
        assert!(matches!(
            &mutations[0],
            crate::catalog::CatalogMutation::Insert { slot: s, epoch_after: 1, .. } if *s == slot
        ));
        assert!(matches!(
            &mutations[1],
            crate::catalog::CatalogMutation::Retire {
                slot: 0,
                epoch_after: 2
            }
        ));
        assert_eq!(before.epoch(), 0, "pre-update pin is untouched");
    }

    #[test]
    fn update_logged_failures_publish_nothing() {
        let concurrent = running_concurrent();
        let before = concurrent.pin();
        let result: Result<(usize, _), StratRecError> = concurrent.update_logged(
            |catalog| catalog.insert(strategy(10, 0.9, 0.2, 0.2)),
            |_, _| {
                Err(StratRecError::WalCorrupt {
                    offset: 0,
                    kind: "disk full".into(),
                })
            },
        );
        assert!(result.is_err());
        let after = concurrent.pin();
        assert!(
            Arc::ptr_eq(&before, &after),
            "a failed log call must not publish"
        );
        assert_eq!(concurrent.stats().published_epochs, 0);
    }

    #[test]
    fn update_logged_skips_the_log_for_read_only_epochs() {
        let concurrent = running_concurrent();
        let (len, _) = concurrent
            .update_logged(
                |catalog| catalog.len(),
                |_, _| -> Result<(), StratRecError> { panic!("read-only epochs never log") },
            )
            .unwrap();
        assert_eq!(len, 4);
    }

    /// The publish/acquire ordering stress: one writer publishes epochs
    /// while reader threads continuously pin. Every pinned snapshot must be
    /// an internally consistent committed state (no torn epochs) and each
    /// reader's observed epochs must be monotone.
    #[test]
    fn concurrent_pins_observe_committed_monotone_states() {
        const EPOCHS: u64 = 60;
        const READERS: usize = 4;
        let concurrent = ConcurrentCatalog::new(StrategyCatalog::with_policy(
            crate::examples_data::running_example_strategies(),
            RebuildPolicy::threshold(3),
        ));
        std::thread::scope(|scope| {
            for _ in 0..READERS {
                let handle = concurrent.clone();
                scope.spawn(move || {
                    let mut last_epoch = 0_u64;
                    loop {
                        let snapshot = handle.pin();
                        // Monotone: the cell never moves backwards.
                        assert!(snapshot.epoch() >= last_epoch);
                        last_epoch = snapshot.epoch();
                        // Committed: every published epoch inserted exactly
                        // one live strategy, so liveness, slot count and
                        // epoch always agree — a torn state could not.
                        assert_eq!(snapshot.slot_count(), 4 + snapshot.epoch() as usize);
                        assert_eq!(snapshot.len(), snapshot.slot_count());
                        assert_eq!(
                            snapshot.live_indices().len(),
                            snapshot.len(),
                            "liveness bitmap out of step with the epoch"
                        );
                        if snapshot.epoch() == EPOCHS {
                            break;
                        }
                        std::thread::yield_now();
                    }
                });
            }
            for i in 0..EPOCHS {
                concurrent.update(|catalog| {
                    catalog.insert(strategy(1000 + i, 0.8, 0.3, 0.3));
                });
            }
        });
        assert_eq!(concurrent.epoch(), EPOCHS);
    }
}
