//! The log-structured churn overlay: unindexed tail + tombstones.
//!
//! A crowdsourcing platform adds and retires strategies continuously, so the
//! catalog is **mutable**: [`StrategyCatalog::insert`] appends a strategy to
//! a small unindexed *tail* and [`StrategyCatalog::retire`] marks a slot
//! with a *tombstone*. Queries answer `index ∪ tail − tombstones`: the
//! R-tree reports candidates from the last merge (tombstoned hits are
//! filtered out), the tail is scanned linearly, and every candidate is
//! confirmed with the exact predicate — so results are **exact at every
//! point of the churn stream**. When the overlay (tail + pending
//! tombstones) outgrows the [`RebuildPolicy`](super::RebuildPolicy)
//! threshold it is merged into the R-tree incrementally (`RTree::remove` for
//! tombstones, `RTree::insert` with node splits for the tail), which is far
//! cheaper than the per-epoch full rebuild a long-running service would
//! otherwise pay; [`StrategyCatalog::force_rebuild`] re-packs the tree from
//! scratch when desired, and [`StrategyCatalog::compact`](super::compact)
//! additionally reclaims the tombstoned slot numbers.

use stratrec_geometry::{Axis, RTree};

use super::axis::{merge_axis_order_into, sorted_axis_tail};
use super::StrategyCatalog;
use crate::model::Strategy;

impl StrategyCatalog {
    /// Inserts a strategy, returning its stable slot index. The strategy
    /// lands in the unindexed tail and is merged into the R-tree when the
    /// overlay crosses the rebuild threshold; it is eligible for queries
    /// immediately either way. The returned slot stays valid until the next
    /// [`Self::compact`](StrategyCatalog::compact), whose
    /// [`SlotRemap`](super::SlotRemap) renumbers it.
    pub fn insert(&mut self, strategy: Strategy) -> usize {
        let slot = self.strategies.len();
        let point = strategy.to_normalized_point();
        self.soa.push_live(&strategy.params);
        self.strategies.push(strategy);
        self.points.push(point);
        self.live.push(true);
        self.live_count += 1;
        self.tail.push(slot);
        self.axis_tail_insert(slot);
        self.delta_note_insert();
        self.epoch += 1;
        if self.journal_enabled() {
            self.journal_note(super::CatalogMutation::Insert {
                slot,
                strategy: self.strategies[slot].clone(),
                epoch_after: self.epoch,
            });
        }
        self.maybe_merge();
        slot
    }

    /// Retires the strategy at `slot`, returning whether a live strategy was
    /// retired (`false` for out-of-range or already-retired slots). The slot
    /// index is never reused; queries stop reporting it immediately.
    pub fn retire(&mut self, slot: usize) -> bool {
        if slot >= self.strategies.len() || !self.live[slot] {
            return false;
        }
        self.live[slot] = false;
        self.live_count -= 1;
        self.soa.retire(slot);
        if let Ok(pos) = self.tail.binary_search(&slot) {
            // Never indexed: drop it from the tail and we are done.
            self.tail.remove(pos);
            self.axis_tail_retire(slot);
        } else {
            self.pending_tombstones.push(slot);
        }
        self.delta_note_retire(slot);
        self.epoch += 1;
        if self.journal_enabled() {
            self.journal_note(super::CatalogMutation::Retire {
                slot,
                epoch_after: self.epoch,
            });
        }
        self.maybe_merge();
        true
    }

    /// Merges the overlay when it outgrows the policy threshold.
    fn maybe_merge(&mut self) {
        if self.overlay_len() > self.policy.overlay_limit() {
            self.merge_overlay();
        }
    }

    /// Merges the overlay into the R-tree incrementally: pending tombstones
    /// are removed, tail entries inserted (with node splits). No-op when the
    /// overlay is empty.
    pub fn merge_overlay(&mut self) {
        if self.overlay_is_empty() {
            return;
        }
        for slot in std::mem::take(&mut self.pending_tombstones) {
            let removed = self.index.remove(slot, &self.points[slot]);
            debug_assert!(removed, "tombstoned slot {slot} was not in the index");
        }
        let tail = std::mem::take(&mut self.tail);
        for &slot in &tail {
            self.index.insert(slot, self.points[slot]);
        }
        // The sorted axis orders absorb the same overlay: tombstoned slots
        // are filtered out of each base, the sorted tail is merged in —
        // O(|S|) per axis (plus a tail sort if the incremental sorted tails
        // were abandoned past SORTED_TAIL_LIMIT) instead of a full re-sort.
        for axis in Axis::ALL {
            let tail_sorted = if self.axis_tail_sorted {
                std::mem::take(&mut self.axis_tail[axis.index()])
            } else {
                sorted_axis_tail(&self.points, &tail, axis)
            };
            let base = std::mem::take(&mut self.axis_base[axis.index()]);
            let mut merged = Vec::new();
            merge_axis_order_into(
                &base,
                &tail_sorted,
                &self.live,
                &self.points,
                axis,
                &mut merged,
            );
            self.axis_base[axis.index()] = merged;
        }
        self.axis_tail_reset();
        self.merges += 1;
        self.packed = false;
    }

    /// Re-packs the R-tree from scratch over the live slots (STR bulk load)
    /// and clears the overlay — slot numbers are **kept** (use
    /// [`Self::compact`](StrategyCatalog::compact) to also reclaim retired
    /// ones). Use after heavy churn to restore the packed structure
    /// incremental merges slowly degrade.
    pub fn force_rebuild(&mut self) {
        self.index = RTree::bulk_load_entries(self.live_entries(), self.index.node_capacity());
        self.tail.clear();
        self.pending_tombstones.clear();
        self.axis_rebuild_live();
        self.merges += 1;
        self.packed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::super::{RebuildPolicy, StrategyCatalog};
    use crate::model::{DeploymentParameters, Strategy};

    #[test]
    fn retiring_a_tail_slot_never_touches_the_index() {
        let mut catalog = StrategyCatalog::with_policy(Vec::new(), RebuildPolicy::never());
        let a = catalog.insert(Strategy::from_params(
            0,
            DeploymentParameters::clamped(0.8, 0.2, 0.2),
        ));
        let b = catalog.insert(Strategy::from_params(
            1,
            DeploymentParameters::clamped(0.9, 0.1, 0.1),
        ));
        assert_eq!(catalog.overlay_len(), 2);
        assert!(catalog.retire(a));
        // The retired slot was still in the tail: overlay shrinks instead of
        // gaining a tombstone.
        assert_eq!(catalog.overlay_len(), 1);
        assert_eq!(catalog.index().len(), 0);
        let loosest = DeploymentParameters::default();
        assert_eq!(catalog.eligible_for(&loosest), vec![b]);
    }

    #[test]
    fn rebuild_policies_control_merging() {
        let strategies = crate::examples_data::running_example_strategies();
        let strategy = |id| Strategy::from_params(id, DeploymentParameters::clamped(0.8, 0.3, 0.3));

        let mut always = StrategyCatalog::with_policy(strategies.clone(), RebuildPolicy::always());
        always.insert(strategy(10));
        assert!(
            always.overlay_is_empty(),
            "always-policy merges immediately"
        );
        assert_eq!(always.index().len(), 5);
        assert_eq!(always.merge_count(), 1);

        let mut never = StrategyCatalog::with_policy(strategies.clone(), RebuildPolicy::never());
        never.insert(strategy(10));
        never.retire(0);
        assert_eq!(never.overlay_len(), 2);
        assert_eq!(never.index().len(), 4, "never-policy leaves the tree alone");
        assert_eq!(never.merge_count(), 0);

        let mut thresholded = StrategyCatalog::with_policy(strategies, RebuildPolicy::threshold(2));
        thresholded.insert(strategy(10));
        thresholded.retire(0);
        assert_eq!(thresholded.overlay_len(), 2, "at the limit, no merge yet");
        thresholded.insert(strategy(11));
        assert!(thresholded.overlay_is_empty(), "crossing the limit merges");
        // Tombstone removed, two inserts applied: 4 - 1 + 2.
        assert_eq!(thresholded.index().len(), 5);
    }

    #[test]
    fn packed_live_tracking_follows_merges_and_rebuilds() {
        let strategies = crate::examples_data::running_example_strategies();
        let mut catalog = StrategyCatalog::with_policy(strategies, RebuildPolicy::threshold(1));
        assert!(
            catalog.index_is_packed_live(),
            "pristine catalogs are packed"
        );
        catalog.insert(Strategy::from_params(
            10,
            DeploymentParameters::clamped(0.8, 0.3, 0.3),
        ));
        assert!(
            !catalog.index_is_packed_live(),
            "an unmerged tail breaks the packed-live state"
        );
        catalog.insert(Strategy::from_params(
            11,
            DeploymentParameters::clamped(0.8, 0.3, 0.3),
        ));
        assert!(
            catalog.overlay_is_empty(),
            "threshold 1 merged at 2 entries"
        );
        assert!(
            !catalog.index_is_packed_live(),
            "incremental merges reshape the tree away from the STR packing"
        );
        catalog.force_rebuild();
        assert!(
            catalog.index_is_packed_live(),
            "force_rebuild restores a packed live index"
        );
    }

    #[test]
    fn merge_and_force_rebuild_preserve_eligibility() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let mut catalog = StrategyCatalog::with_policy(strategies.clone(), RebuildPolicy::never());
        catalog.retire(1);
        let slot = catalog.insert(Strategy::from_params(
            50,
            DeploymentParameters::clamped(0.72, 0.5, 0.2),
        ));
        let before: Vec<Vec<usize>> = requests
            .iter()
            .map(|r| catalog.eligible_for_request(r))
            .collect();
        catalog.merge_overlay();
        assert!(catalog.overlay_is_empty());
        assert_eq!(catalog.index().len(), 4); // 4 - 1 tombstone + 1 insert
        for (request, expected) in requests.iter().zip(&before) {
            assert_eq!(&catalog.eligible_for_request(request), expected);
        }
        catalog.force_rebuild();
        for (request, expected) in requests.iter().zip(&before) {
            assert_eq!(&catalog.eligible_for_request(request), expected);
        }
        assert!(catalog.is_live(slot));
        assert_eq!(catalog.live_entries().len(), 4);
    }
}
