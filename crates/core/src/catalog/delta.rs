//! Churn deltas: the catalog's change feed for delta-maintained derived
//! state.
//!
//! A consumer that derives slot-shaped state from the catalog — the
//! workforce matrix above all — used to have exactly one way to follow
//! churn: recompute from scratch every epoch, `O(n · |S|)` model inversions
//! for a 1 % change. A [`DeltaSubscription`] turns that into incremental
//! maintenance: the catalog accumulates, per subscriber, which slots were
//! **inserted** and **retired** since the subscriber last synchronized, and
//! [`StrategyCatalog::take_delta`] drains the accumulated window as a
//! [`CatalogDelta`]. The consumer then touches only the changed columns
//! ([`crate::workforce::WorkforceMatrix::apply_delta`]) and repairs only the
//! affected aggregation rows
//! ([`crate::workforce::AggregationCache::repair`]), with work proportional
//! to the churn instead of `|S|`.
//!
//! # Composition across `compact()`
//!
//! Slot numbers are stable between compactions, so within one window the
//! delta is just two slot lists. A [`StrategyCatalog::compact`] renumbers
//! everything; the tracker *composes* the compaction's
//! [`SlotRemap`](super::SlotRemap) into the pending window instead of
//! invalidating it:
//!
//! * the remap is restricted to the subscriber's numbering (its slot width
//!   at the last drain) and chained onto any previously pending remap —
//!   `forward[old]` walks every compaction of the window at once;
//! * pending retirements are dropped (a compaction reclaims every tombstone,
//!   so the remap already maps those slots to `None` and
//!   [`WorkforceMatrix::remap_columns`](crate::workforce::WorkforceMatrix::remap_columns)
//!   sheds their columns);
//! * slots inserted during the window keep riding along: dense renumbering
//!   preserves order, and every window insert was appended *after* the
//!   subscriber's slots, so the surviving subscriber columns always occupy a
//!   prefix `0..p` of the current numbering and the window inserts the tail
//!   `p..slot_count` — which is exactly how [`CatalogDelta::inserted`] is
//!   materialized at drain time.
//!
//! The net contract: applying one [`CatalogDelta`] — remap, then append the
//! inserted columns, then infinity-out the retired ones — lands a derived
//! matrix on **bit-identical** state to a fresh recompute over the updated
//! catalog, no matter how many inserts, retires and compactions the window
//! saw (pinned per step by the `tests/catalog_churn.rs` replay).

use serde::{Deserialize, Serialize};

use super::{SlotRemap, StrategyCatalog};
use crate::error::StratRecError;

/// Default [`StrategyCatalog::delta_lapse_limit`]: how many catalog
/// mutations a subscriber may sit through without draining before its
/// tracker is evicted. Large enough that a per-epoch drainer at paper-scale
/// churn (a few hundred mutations per epoch) never lapses; small enough
/// that a leaked tracker stops costing per-mutation bookkeeping after a
/// bounded number of epochs.
pub const DEFAULT_DELTA_LAPSE_LIMIT: u64 = 4096;

/// One subscriber's view of the churn since it last synchronized, drained by
/// [`StrategyCatalog::take_delta`].
///
/// The delta describes how to bring slot-shaped state captured at
/// [`Self::from_epoch`] (over [`Self::source_cols`] slots) up to the catalog
/// state at [`Self::to_epoch`] (over [`Self::target_cols`] slots):
///
/// 1. if [`Self::remap`] is present, renumber through it first (the
///    composed effect of every `compact()` in the window; reclaimed slots
///    map to `None` and their columns are shed);
/// 2. append one column per [`Self::inserted`] slot — these are exactly the
///    current-numbering slots `post_remap_cols..target_cols`, ascending;
///    slots inserted *and* retired within the window are present but not
///    live, so their columns stay infeasible;
/// 3. write `f64::INFINITY` into every [`Self::retired`] column in place —
///    these are always pre-existing columns (`< post_remap_cols`), retired
///    after the window's last compaction (earlier retirements were
///    reclaimed and live in the remap instead).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogDelta {
    /// Catalog epoch of the subscriber's last drain (where the window
    /// starts).
    pub from_epoch: u64,
    /// Catalog epoch this delta brings the subscriber to — always the
    /// catalog's current epoch at drain time.
    pub to_epoch: u64,
    /// The subscriber's slot width at `from_epoch` (what derived state must
    /// be shaped like before applying this delta).
    pub source_cols: usize,
    /// The catalog's slot count at `to_epoch` (what derived state is shaped
    /// like after applying this delta).
    pub target_cols: usize,
    /// Composed compaction remap covering `0..source_cols`, present iff the
    /// window crossed at least one [`StrategyCatalog::compact`].
    pub remap: Option<SlotRemap>,
    /// Current-numbering slots appended during the window (ascending; the
    /// contiguous range `post_remap_cols..target_cols`). Includes slots
    /// retired again within the window — they still occupy the numbering.
    pub inserted: Vec<usize>,
    /// Current-numbering slots retired during the window that the
    /// subscriber holds live columns for, ascending. Disjoint from
    /// `inserted` and always `< post_remap_cols`.
    pub retired: Vec<usize>,
}

impl CatalogDelta {
    /// Whether the window saw no mutation at all (applying the delta is a
    /// no-op).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.from_epoch == self.to_epoch
    }

    /// The subscriber's column count after step 1 (the remap) and before
    /// step 2 (the appends): [`SlotRemap::live_len`] of the composed remap,
    /// or [`Self::source_cols`] when the window crossed no compaction.
    #[must_use]
    pub fn post_remap_cols(&self) -> usize {
        self.remap
            .as_ref()
            .map_or(self.source_cols, |remap| remap.live_len)
    }
}

/// Handle identifying one delta tracker registered with a catalog via
/// [`StrategyCatalog::subscribe_delta`].
///
/// The handle is **generation-tagged**: ids are recycled by later
/// subscribers, but every issuance carries a fresh generation, so a stale
/// `Copy` of a released (or [evicted](StrategyCatalog::delta_lapse_limit))
/// handle can never silently drain — or release — a *different* subscriber
/// that happens to reuse the same id. [`StrategyCatalog::take_delta`] on a
/// stale or unknown handle fails with the typed
/// [`StratRecError::StaleSubscription`] instead.
///
/// The handle is `Copy` for ergonomic storage; it is only meaningful
/// against the catalog (or clones of the catalog) it was issued by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeltaSubscription {
    id: usize,
    generation: u64,
}

impl DeltaSubscription {
    /// The (recyclable) tracker-slot id this handle names; the generation
    /// tag decides whether the handle still owns that slot.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }
}

/// One tracker slot of the catalog's subscription table. The generation
/// counts issuances of this slot's id: it is bumped every time the slot is
/// (re-)subscribed, and a handle is honored only while its generation
/// matches — releasing, evicting, or re-issuing the slot strands every
/// previously issued handle with a typed error instead of silent aliasing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(super) struct SubscriptionSlot {
    /// Generation of the most recent issuance of this slot's id.
    generation: u64,
    /// The live tracker, or `None` once released/evicted.
    tracker: Option<DeltaTracker>,
}

/// Per-subscriber accumulation state (see the module docs for the
/// composition rules).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(super) struct DeltaTracker {
    /// Catalog epoch at the last drain.
    base_epoch: u64,
    /// Catalog slot count at the last drain — the subscriber's numbering
    /// width, which `remap` (when present) covers.
    base_width: usize,
    /// How many of the subscriber's slots are still present in the current
    /// numbering; they always occupy the prefix `0..present_base`, so any
    /// slot `>= present_base` was inserted during the window.
    present_base: usize,
    /// Composed remap of every `compact()` in the window, restricted to
    /// `0..base_width`.
    remap: Option<SlotRemap>,
    /// Subscriber columns retired since the later of the last drain and the
    /// window's last compaction (push order; sorted at drain time).
    retired: Vec<usize>,
    /// Catalog mutations observed since the last drain (or since
    /// subscribing). A tracker whose count exceeds the catalog's
    /// [`StrategyCatalog::delta_lapse_limit`] has lapsed — its subscriber
    /// leaked or starved — and is evicted so the catalog stops paying
    /// per-mutation bookkeeping for it forever.
    undrained: u64,
}

impl DeltaTracker {
    fn new(epoch: u64, width: usize) -> Self {
        Self {
            base_epoch: epoch,
            base_width: width,
            present_base: width,
            remap: None,
            retired: Vec::new(),
            undrained: 0,
        }
    }

    /// Records the retirement of `slot` (current numbering). Window inserts
    /// (`slot >= present_base`) are not recorded: the subscriber has no
    /// column for them yet, and the drain-time append consults liveness.
    /// Deduplicated against the pending window — a slot retires at most
    /// once between compactions, so a duplicate record could only come from
    /// replaying a mutation against a tracker that already saw it, and must
    /// not grow the window.
    fn note_retire(&mut self, slot: usize) {
        if slot < self.present_base && !self.retired.contains(&slot) {
            self.retired.push(slot);
        }
    }

    /// Composes a compaction's full remap into the pending window.
    fn note_compact(&mut self, full: &SlotRemap) {
        let forward: Vec<Option<usize>> = (0..self.base_width)
            .map(|old| {
                let current = match &self.remap {
                    Some(remap) => remap.forward[old],
                    None => Some(old),
                };
                current.and_then(|slot| full.remap(slot))
            })
            .collect();
        let live_len = forward.iter().flatten().count();
        self.present_base = live_len;
        self.remap = Some(SlotRemap::from_parts(
            forward,
            live_len,
            self.base_epoch,
            full.target_epoch(),
        ));
        // Every tombstone — recorded here or not — was just reclaimed; the
        // composed remap maps those slots to `None` instead.
        self.retired.clear();
    }

    /// Drains the window into a [`CatalogDelta`] and re-bases the tracker at
    /// the catalog's current `(epoch, slot_count)`.
    fn drain(&mut self, epoch: u64, slot_count: usize) -> CatalogDelta {
        let mut retired = std::mem::take(&mut self.retired);
        retired.sort_unstable();
        let delta = CatalogDelta {
            from_epoch: self.base_epoch,
            to_epoch: epoch,
            source_cols: self.base_width,
            target_cols: slot_count,
            remap: self.remap.take(),
            inserted: (self.present_base..slot_count).collect(),
            retired,
        };
        self.base_epoch = epoch;
        self.base_width = slot_count;
        self.present_base = slot_count;
        self.undrained = 0;
        delta
    }
}

impl StrategyCatalog {
    /// Registers a delta subscriber synchronized with the catalog's current
    /// state: the first [`Self::take_delta`] covers every mutation from this
    /// moment on. Subscribe at the instant the derived state is computed
    /// (both observe the same epoch). Released tracker slots are recycled,
    /// but every issuance carries a fresh generation tag, so handles from
    /// earlier issuances of the same id stay dead.
    pub fn subscribe_delta(&mut self) -> DeltaSubscription {
        let tracker = DeltaTracker::new(self.epoch, self.strategies.len());
        for (id, slot) in self.subscriptions.iter_mut().enumerate() {
            if slot.tracker.is_none() {
                slot.generation += 1;
                slot.tracker = Some(tracker);
                return DeltaSubscription {
                    id,
                    generation: slot.generation,
                };
            }
        }
        self.subscriptions.push(SubscriptionSlot {
            generation: 0,
            tracker: Some(tracker),
        });
        DeltaSubscription {
            id: self.subscriptions.len() - 1,
            generation: 0,
        }
    }

    /// Drains the churn accumulated for `subscription` since its last drain
    /// (or since [`Self::subscribe_delta`]) and re-bases the subscriber at
    /// the current epoch. Apply the returned delta immediately — it brings
    /// derived state exactly to the catalog's current state, and the next
    /// drain assumes it was applied.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::StaleSubscription`] when `subscription` is
    /// not registered with this catalog: never issued here, released by
    /// [`Self::unsubscribe_delta`], evicted after lapsing past
    /// [`Self::delta_lapse_limit`], or an earlier-generation handle of a
    /// recycled id. The caller must re-subscribe and recompute its derived
    /// state from scratch.
    pub fn take_delta(
        &mut self,
        subscription: &DeltaSubscription,
    ) -> Result<CatalogDelta, StratRecError> {
        let epoch = self.epoch;
        let slot_count = self.strategies.len();
        self.subscriptions
            .get_mut(subscription.id)
            .filter(|slot| slot.generation == subscription.generation)
            .and_then(|slot| slot.tracker.as_mut())
            .map(|tracker| tracker.drain(epoch, slot_count))
            .ok_or(StratRecError::StaleSubscription {
                id: subscription.id,
            })
    }

    /// Releases a delta subscription, returning whether a live tracker was
    /// released. Stale handles — released, evicted, or an earlier
    /// generation of a recycled id — are ignored (`false`), so a detached
    /// holder can never release a *different* subscriber's tracker.
    pub fn unsubscribe_delta(&mut self, subscription: DeltaSubscription) -> bool {
        match self.subscriptions.get_mut(subscription.id) {
            Some(slot) if slot.generation == subscription.generation => {
                slot.tracker.take().is_some()
            }
            _ => false,
        }
    }

    /// Number of live delta subscriptions.
    #[must_use]
    pub fn delta_subscriber_count(&self) -> usize {
        self.subscriptions
            .iter()
            .filter(|slot| slot.tracker.is_some())
            .count()
    }

    /// How many catalog mutations a subscriber may sit through without
    /// draining before its tracker is evicted (its handles then fail with
    /// [`StratRecError::StaleSubscription`]). Bounds the cost of leaked
    /// subscriptions: a `StratRecSession` dropped without detaching stops
    /// charging per-mutation bookkeeping once it lapses. `u64::MAX`
    /// disables eviction.
    #[must_use]
    pub fn delta_lapse_limit(&self) -> u64 {
        self.delta_lapse_limit
    }

    /// Sets [`Self::delta_lapse_limit`] (`u64::MAX` disables eviction).
    pub fn set_delta_lapse_limit(&mut self, limit: u64) {
        self.delta_lapse_limit = limit;
    }

    /// Number of trackers evicted so far for lapsing past
    /// [`Self::delta_lapse_limit`].
    #[must_use]
    pub fn delta_evictions(&self) -> u64 {
        self.delta_evictions
    }

    /// Mutation hook: records a retirement with every tracker (called by
    /// [`Self::retire`](StrategyCatalog::retire) after tombstoning).
    pub(super) fn delta_note_retire(&mut self, slot: usize) {
        for tracker in self.live_trackers() {
            tracker.note_retire(slot);
        }
        self.delta_evict_lapsed();
    }

    /// Mutation hook: inserts carry no per-tracker payload (the drain-time
    /// append derives them from the width), but they still age every
    /// pending window (called by
    /// [`Self::insert`](StrategyCatalog::insert)).
    pub(super) fn delta_note_insert(&mut self) {
        self.delta_evict_lapsed();
    }

    /// Mutation hook: composes a compaction's remap into every tracker
    /// (called by [`Self::compact`](StrategyCatalog::compact) before the
    /// remap is returned).
    pub(super) fn delta_note_compact(&mut self, remap: &SlotRemap) {
        for tracker in self.live_trackers() {
            tracker.note_compact(remap);
        }
        self.delta_evict_lapsed();
    }

    fn live_trackers(&mut self) -> impl Iterator<Item = &mut DeltaTracker> {
        self.subscriptions
            .iter_mut()
            .filter_map(|slot| slot.tracker.as_mut())
    }

    /// Ages every pending window by one mutation and evicts trackers that
    /// lapsed past [`Self::delta_lapse_limit`]. Eviction is safe precisely
    /// because handles are generation-tagged: the stranded subscriber's
    /// next drain fails typed instead of aliasing a recycled slot.
    fn delta_evict_lapsed(&mut self) {
        let limit = self.delta_lapse_limit;
        let mut evicted = 0;
        for slot in &mut self.subscriptions {
            if let Some(tracker) = slot.tracker.as_mut() {
                tracker.undrained += 1;
                if tracker.undrained > limit {
                    slot.tracker = None;
                    evicted += 1;
                }
            }
        }
        self.delta_evictions += evicted;
    }
}

#[cfg(test)]
mod tests {
    use super::super::{RebuildPolicy, StrategyCatalog};
    use crate::error::StratRecError;
    use crate::model::{DeploymentParameters, Strategy};

    fn strategy(id: u64, q: f64, c: f64, l: f64) -> Strategy {
        Strategy::from_params(id, DeploymentParameters::clamped(q, c, l))
    }

    fn running_catalog(policy: RebuildPolicy) -> StrategyCatalog {
        StrategyCatalog::with_policy(crate::examples_data::running_example_strategies(), policy)
    }

    #[test]
    fn an_untouched_window_drains_empty() {
        let mut catalog = running_catalog(RebuildPolicy::default());
        let sub = catalog.subscribe_delta();
        assert_eq!(catalog.delta_subscriber_count(), 1);
        let delta = catalog.take_delta(&sub).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.from_epoch, delta.to_epoch);
        assert_eq!(delta.source_cols, 4);
        assert_eq!(delta.target_cols, 4);
        assert_eq!(delta.post_remap_cols(), 4);
        assert!(delta.remap.is_none());
        assert!(delta.inserted.is_empty());
        assert!(delta.retired.is_empty());
    }

    #[test]
    fn inserts_and_retires_accumulate_per_window() {
        let mut catalog = running_catalog(RebuildPolicy::never());
        let sub = catalog.subscribe_delta();
        let a = catalog.insert(strategy(10, 0.9, 0.4, 0.2));
        let b = catalog.insert(strategy(11, 0.6, 0.2, 0.4));
        assert!(catalog.retire(1));
        assert!(catalog.retire(3));
        let delta = catalog.take_delta(&sub).unwrap();
        assert!(!delta.is_empty());
        assert_eq!(delta.from_epoch, 0);
        assert_eq!(delta.to_epoch, catalog.epoch());
        assert_eq!(delta.source_cols, 4);
        assert_eq!(delta.target_cols, 6);
        assert!(delta.remap.is_none());
        assert_eq!(delta.inserted, vec![a, b]);
        assert_eq!(delta.retired, vec![1, 3]);

        // The next window starts clean and rides on the new width.
        assert!(catalog.retire(a));
        let next = catalog.take_delta(&sub).unwrap();
        assert_eq!(next.from_epoch, delta.to_epoch);
        assert_eq!(next.source_cols, 6);
        assert_eq!(next.target_cols, 6);
        assert_eq!(next.retired, vec![a]);
        assert!(next.inserted.is_empty());
    }

    #[test]
    fn a_window_insert_retired_in_the_same_window_stays_in_inserted_only() {
        let mut catalog = running_catalog(RebuildPolicy::never());
        let sub = catalog.subscribe_delta();
        let slot = catalog.insert(strategy(10, 0.9, 0.4, 0.2));
        assert!(catalog.retire(slot));
        let delta = catalog.take_delta(&sub).unwrap();
        // The slot still occupies the numbering, so the subscriber must
        // append a (dead, infeasible) column for it — but it never had a
        // live column to blank.
        assert_eq!(delta.inserted, vec![slot]);
        assert!(delta.retired.is_empty());
        assert!(!catalog.is_live(slot));
    }

    #[test]
    fn compaction_composes_into_the_pending_window() {
        for policy in [
            RebuildPolicy::always(),
            RebuildPolicy::threshold(2),
            RebuildPolicy::never(),
        ] {
            let mut catalog = running_catalog(policy);
            let sub = catalog.subscribe_delta();
            let ins = catalog.insert(strategy(10, 0.9, 0.4, 0.2));
            assert!(catalog.retire(0));
            assert!(catalog.retire(2));
            let full = catalog.compact();
            // Post-compaction churn keeps accumulating in the same window.
            assert!(catalog.retire(full.remap(1).unwrap()));
            let late = catalog.insert(strategy(11, 0.6, 0.2, 0.4));

            let delta = catalog.take_delta(&sub).unwrap();
            assert_eq!(delta.source_cols, 4, "{policy:?}");
            assert_eq!(delta.target_cols, catalog.slot_count(), "{policy:?}");
            let remap = delta.remap.as_ref().expect("window crossed a compact");
            // Restricted to the subscriber's four original slots: 0 and 2
            // reclaimed, 1 and 3 renumbered densely.
            assert_eq!(remap.len(), 4, "{policy:?}");
            assert_eq!(remap.remap(0), None, "{policy:?}");
            assert_eq!(remap.remap(1), Some(0), "{policy:?}");
            assert_eq!(remap.remap(2), None, "{policy:?}");
            assert_eq!(remap.remap(3), Some(1), "{policy:?}");
            assert_eq!(remap.live_len, 2, "{policy:?}");
            assert_eq!(delta.post_remap_cols(), 2, "{policy:?}");
            // The surviving window insert follows the compaction (slot `ins`
            // became slot 2), the post-compaction insert appends after it.
            assert_eq!(delta.inserted, vec![full.remap(ins).unwrap(), late]);
            // The post-compaction retirement is the only recorded one — the
            // pre-compaction tombstones live in the remap.
            assert_eq!(delta.retired, vec![0], "{policy:?}");
            assert_eq!(delta.to_epoch, catalog.epoch(), "{policy:?}");
        }
    }

    #[test]
    fn repeated_compactions_chain_through_one_remap() {
        let mut catalog = running_catalog(RebuildPolicy::default());
        let sub = catalog.subscribe_delta();
        assert!(catalog.retire(0));
        catalog.compact(); // 1→0, 2→1, 3→2
        assert!(catalog.retire(1)); // originally slot 2
        catalog.compact(); // 0→0, 2→1
        let delta = catalog.take_delta(&sub).unwrap();
        let remap = delta.remap.as_ref().unwrap();
        assert_eq!(remap.len(), 4);
        assert_eq!(remap.remap(0), None);
        assert_eq!(remap.remap(1), Some(0));
        assert_eq!(remap.remap(2), None);
        assert_eq!(remap.remap(3), Some(1));
        assert!(delta.retired.is_empty());
        assert!(delta.inserted.is_empty());
        assert_eq!(delta.target_cols, 2);
    }

    #[test]
    fn subscribers_drain_independently_and_ids_recycle() {
        let mut catalog = running_catalog(RebuildPolicy::default());
        let early = catalog.subscribe_delta();
        catalog.insert(strategy(10, 0.9, 0.4, 0.2));
        let late = catalog.subscribe_delta();
        assert!(catalog.retire(1));
        assert_eq!(catalog.delta_subscriber_count(), 2);

        let early_delta = catalog.take_delta(&early).unwrap();
        assert_eq!(early_delta.inserted, vec![4]);
        assert_eq!(early_delta.retired, vec![1]);
        let late_delta = catalog.take_delta(&late).unwrap();
        assert!(late_delta.inserted.is_empty());
        assert_eq!(late_delta.retired, vec![1]);

        assert!(catalog.unsubscribe_delta(early));
        assert_eq!(catalog.delta_subscriber_count(), 1);
        let reissued = catalog.subscribe_delta();
        assert_eq!(catalog.delta_subscriber_count(), 2);
        // The freed id is recycled; the reissued tracker starts clean.
        assert_eq!(reissued.id(), early.id());
        assert!(catalog.take_delta(&reissued).unwrap().is_empty());
    }

    #[test]
    fn draining_a_released_subscription_fails_typed() {
        let mut catalog = running_catalog(RebuildPolicy::default());
        let sub = catalog.subscribe_delta();
        assert!(catalog.unsubscribe_delta(sub));
        assert!(!catalog.unsubscribe_delta(sub), "double release is inert");
        assert_eq!(
            catalog.take_delta(&sub),
            Err(StratRecError::StaleSubscription { id: sub.id() })
        );
    }

    #[test]
    fn a_stale_handle_never_drains_a_recycled_id() {
        // The regression the generation tag exists for: a detached session
        // keeps a `Copy` of its released handle while a new subscriber is
        // issued the same id. The stale copy must fail typed instead of
        // silently draining (and thereby corrupting) the new subscriber's
        // window.
        let mut catalog = running_catalog(RebuildPolicy::never());
        let stale = catalog.subscribe_delta();
        assert!(catalog.unsubscribe_delta(stale));
        let fresh = catalog.subscribe_delta();
        assert_eq!(fresh.id(), stale.id(), "the id is recycled");
        assert_ne!(fresh, stale, "but the issuance is distinguishable");

        catalog.insert(strategy(10, 0.9, 0.4, 0.2));
        assert!(catalog.retire(1));
        assert_eq!(
            catalog.take_delta(&stale),
            Err(StratRecError::StaleSubscription { id: stale.id() }),
            "the stale copy must not drain the recycled slot"
        );
        assert!(
            !catalog.unsubscribe_delta(stale),
            "nor release the new subscriber"
        );
        // The new subscriber's window is intact: both mutations drain.
        let delta = catalog.take_delta(&fresh).unwrap();
        assert_eq!(delta.inserted, vec![4]);
        assert_eq!(delta.retired, vec![1]);

        // A handle from a catalog that never issued this id also fails.
        let mut other = running_catalog(RebuildPolicy::default());
        assert_eq!(
            other.take_delta(&fresh),
            Err(StratRecError::StaleSubscription { id: fresh.id() })
        );
    }

    #[test]
    fn lapsed_trackers_are_evicted_and_memory_stays_pinned() {
        // A leaked subscriber (session dropped without `detach()`) must not
        // keep charging the catalog forever: after `delta_lapse_limit`
        // mutations without a drain the tracker is evicted, its handle
        // fails typed, and an active subscriber draining every epoch is
        // untouched.
        let mut catalog = running_catalog(RebuildPolicy::threshold(8));
        catalog.set_delta_lapse_limit(64);
        assert_eq!(catalog.delta_lapse_limit(), 64);
        let leaked = catalog.subscribe_delta();
        let active = catalog.subscribe_delta();
        for epoch in 0..1_000_u64 {
            let slot = catalog.insert(strategy(100 + epoch, 0.8, 0.3, 0.3));
            assert!(catalog.retire(slot));
            if epoch % 7 == 6 {
                catalog.compact();
            }
            // The active subscriber drains every epoch and never lapses.
            assert!(!catalog.take_delta(&active).unwrap().is_empty());
        }
        assert_eq!(catalog.delta_evictions(), 1, "exactly the leaked tracker");
        assert_eq!(catalog.delta_subscriber_count(), 1);
        assert_eq!(
            catalog.take_delta(&leaked),
            Err(StratRecError::StaleSubscription { id: leaked.id() })
        );
        // The leaked slot is recyclable again — under a new generation.
        let recycled = catalog.subscribe_delta();
        assert_eq!(recycled.id(), leaked.id());
        assert_eq!(catalog.delta_subscriber_count(), 2);
        assert!(catalog.take_delta(&recycled).unwrap().is_empty());
    }

    #[test]
    fn the_default_lapse_limit_spares_slow_but_live_subscribers() {
        let mut catalog = running_catalog(RebuildPolicy::threshold(8));
        let slow = catalog.subscribe_delta();
        // Well under DEFAULT_DELTA_LAPSE_LIMIT mutations: nothing evicts.
        for i in 0..200_u64 {
            catalog.insert(strategy(50 + i, 0.7, 0.4, 0.4));
        }
        assert_eq!(catalog.delta_evictions(), 0);
        let delta = catalog.take_delta(&slow).unwrap();
        assert_eq!(delta.inserted.len(), 200);
    }
}
