//! Shard plans: contiguous partitions of the catalog's slot range.
//!
//! The multi-tenant aggregation tier splits every workforce-matrix row into
//! per-shard column sub-ranges — each shard computes a shard-local top-k and
//! a k-way merge reassembles the global selection
//! (`topk::merge_k_smallest_into`), bit-identical to the flat path. A
//! [`ShardPlan`] is the partition itself: `shards + 1` ascending bounds over
//! `0..slot_count`, one contiguous `[bounds[i], bounds[i + 1])` sub-range
//! per shard. Contiguity is what makes the two-level aggregate exact:
//! ascending local index order within a sub-range *is* ascending global
//! index order, so shard-local tie-breaks agree with the flat path's global
//! tie-breaks by construction.
//!
//! Plans follow the catalog's slot lifecycle with upkeep proportional to
//! churn, not to `|S|` ([`ShardPlan::apply_delta`]):
//!
//! * **appends** extend the **last** shard's range — every other bound is
//!   untouched, so per-shard derived state (candidate lists, caches) stays
//!   valid without redistribution. A long append-heavy run therefore skews
//!   the last shard; callers that care rebuild the partition at their own
//!   cadence with a fresh [`ShardPlan::uniform`] (a re-prime, exactly like
//!   a standing-batch shape change).
//! * **retirements** move no bounds (the slot keeps its number, the cell
//!   goes `∞`); shards shrink logically, observable via
//!   [`ShardPlan::live_counts`] over the catalog's packed SoA liveness
//!   words.
//! * **compactions** renumber every bound to the count of surviving slots
//!   below it. Dense renumbering preserves slot order, so every surviving
//!   slot stays in the shard that owned it — per-shard state survives
//!   modulo the same [`SlotRemap`] the rest of the pipeline applies.

use serde::{Deserialize, Serialize};

use super::soa::WORD_BITS;
use super::{CatalogDelta, SlotRemap, StrategyCatalog};

/// A contiguous partition of the slot range `0..cols` into shards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// `shards + 1` ascending bounds; shard `i` owns `bounds[i]..bounds[i+1]`.
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// An even partition of `0..cols` into `shards` contiguous sub-ranges
    /// (sizes differ by at most one; `shards` is clamped to at least 1).
    /// Shards may be empty when `cols < shards`.
    #[must_use]
    pub fn uniform(shards: usize, cols: usize) -> Self {
        let shards = shards.max(1);
        let bounds = (0..=shards).map(|i| i * cols / shards).collect();
        Self { bounds }
    }

    /// A plan partitioning `catalog`'s current slot range evenly.
    #[must_use]
    pub fn for_catalog(shards: usize, catalog: &StrategyCatalog) -> Self {
        Self::uniform(shards, catalog.slot_count())
    }

    /// A plan from explicit bounds — the per-tenant form, where each tenant
    /// owns a slot range of its own size. `bounds` must start at 0 and be
    /// non-decreasing, with at least two entries.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` has fewer than two entries, does not start at
    /// 0, or decreases anywhere.
    #[must_use]
    pub fn from_bounds(bounds: Vec<usize>) -> Self {
        assert!(
            bounds.len() >= 2,
            "a shard plan needs at least one shard (two bounds), got {bounds:?}"
        );
        assert_eq!(bounds[0], 0, "shard bounds must start at slot 0");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "shard bounds must be non-decreasing, got {bounds:?}"
        );
        Self { bounds }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The slot width the plan partitions (the last bound).
    #[must_use]
    pub fn cols(&self) -> usize {
        *self.bounds.last().expect("bounds are never empty")
    }

    /// The ascending bounds, `shard_count() + 1` of them.
    #[must_use]
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Shard `i`'s column sub-range.
    #[must_use]
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        self.bounds[shard]..self.bounds[shard + 1]
    }

    /// Iterates every shard's column sub-range in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        self.bounds.windows(2).map(|w| w[0]..w[1])
    }

    /// The shard owning column `col` (`col < cols()`; empty shards never
    /// own anything). For a column on a bound between an empty shard and a
    /// non-empty one, the owner is the non-empty shard.
    #[must_use]
    pub fn shard_of(&self, col: usize) -> usize {
        debug_assert!(col < self.cols(), "column {col} outside 0..{}", self.cols());
        self.bounds[1..].partition_point(|&b| b <= col)
    }

    /// Follows one catalog churn window: renumbers the bounds through the
    /// window's compaction remap (if any) and extends the **last** shard to
    /// cover the appended slots. Cost is `O(shards + remap length)`,
    /// independent of how much state the shards carry.
    ///
    /// # Panics
    ///
    /// Panics when the plan's width does not match the delta's source
    /// width (the plan missed a window or belongs to another catalog).
    pub fn apply_delta(&mut self, delta: &CatalogDelta) {
        assert_eq!(
            self.cols(),
            delta.source_cols,
            "shard plan width must match the delta's source width"
        );
        if let Some(remap) = &delta.remap {
            self.apply_remap(remap);
        }
        *self.bounds.last_mut().expect("bounds are never empty") = delta.target_cols;
    }

    /// Renumbers every bound through a compaction remap: a bound becomes
    /// the number of surviving slots below it, so each surviving slot stays
    /// in its shard (dense renumbering preserves order).
    pub fn apply_remap(&mut self, remap: &SlotRemap) {
        debug_assert_eq!(
            self.cols(),
            remap.len(),
            "shard plan width must match the remap's source width"
        );
        let mut survivors_below = 0;
        let mut old = 0;
        for bound in &mut self.bounds {
            survivors_below += remap.forward[old..*bound]
                .iter()
                .filter(|new| new.is_some())
                .count();
            old = *bound;
            *bound = survivors_below;
        }
    }

    /// Live slots per shard, counted off the catalog's packed SoA liveness
    /// words (whole zero words skip 64 slots at a time) — the per-shard
    /// weight signal for fairness splits and scaling reports.
    ///
    /// # Panics
    ///
    /// Panics when the plan's width does not match the catalog's slot
    /// count.
    #[must_use]
    pub fn live_counts(&self, catalog: &StrategyCatalog) -> Vec<usize> {
        let soa = catalog.soa();
        assert_eq!(
            self.cols(),
            soa.len(),
            "shard plan width must match the catalog's slot count"
        );
        let words = soa.live_words();
        self.ranges()
            .map(|range| {
                let mut count = 0;
                let mut slot = range.start;
                while slot < range.end {
                    let word_idx = slot / WORD_BITS;
                    let word_end = ((word_idx + 1) * WORD_BITS).min(range.end);
                    let mut word = words[word_idx];
                    // Mask off bits below the range start and at or above
                    // its end within this word.
                    word &= !0_u64 << (slot % WORD_BITS);
                    if word_end == (word_idx + 1) * WORD_BITS {
                        // Whole rest of the word is in range.
                    } else {
                        word &= (1_u64 << (word_end % WORD_BITS)) - 1;
                    }
                    count += word.count_ones() as usize;
                    slot = word_end;
                }
                count
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::RebuildPolicy;
    use super::*;
    use crate::model::{DeploymentParameters, Strategy};

    fn varied_strategy(id: u64) -> Strategy {
        Strategy::from_params(
            id,
            DeploymentParameters::clamped(
                0.3 + ((id * 13) % 60) as f64 / 100.0,
                0.2 + ((id * 29) % 70) as f64 / 100.0,
                0.1 + ((id * 17) % 80) as f64 / 100.0,
            ),
        )
    }

    #[test]
    fn uniform_partitions_evenly_and_contiguously() {
        for (shards, cols) in [(1, 10), (3, 10), (8, 10_000), (4, 3), (2, 0), (5, 64)] {
            let plan = ShardPlan::uniform(shards, cols);
            assert_eq!(plan.shard_count(), shards);
            assert_eq!(plan.cols(), cols);
            assert_eq!(plan.bounds()[0], 0);
            let total: usize = plan.ranges().map(|r| r.len()).sum();
            assert_eq!(total, cols, "{shards} shards over {cols}");
            let sizes: Vec<usize> = plan.ranges().map(|r| r.len()).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "uneven split: {sizes:?}");
        }
        // Zero shards clamps to one.
        assert_eq!(ShardPlan::uniform(0, 7).shard_count(), 1);
    }

    #[test]
    fn shard_of_inverts_the_ranges() {
        let plan = ShardPlan::from_bounds(vec![0, 3, 3, 7, 10]);
        for (shard, range) in plan.ranges().enumerate() {
            for col in range {
                assert_eq!(plan.shard_of(col), shard, "col {col}");
            }
        }
        assert_eq!(plan.shard_of(0), 0);
        assert_eq!(plan.shard_of(3), 2, "empty shard 1 owns nothing");
        assert_eq!(plan.shard_of(9), 3);
    }

    #[test]
    #[should_panic(expected = "start at slot 0")]
    fn from_bounds_rejects_nonzero_start() {
        let _ = ShardPlan::from_bounds(vec![1, 5]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_bounds_rejects_decreasing_bounds() {
        let _ = ShardPlan::from_bounds(vec![0, 5, 3]);
    }

    #[test]
    fn deltas_extend_the_last_shard_and_remap_bounds() {
        let mut catalog = StrategyCatalog::with_policy(
            (0..10).map(varied_strategy).collect::<Vec<_>>(),
            RebuildPolicy::never(),
        );
        let mut plan = ShardPlan::for_catalog(2, &catalog);
        assert_eq!(plan.bounds(), &[0, 5, 10]);
        let subscription = catalog.subscribe_delta();

        // Appends land in the last shard; the interior bound is untouched.
        catalog.insert(varied_strategy(100));
        catalog.insert(varied_strategy(101));
        let delta = catalog.take_delta(&subscription).unwrap();
        plan.apply_delta(&delta);
        assert_eq!(plan.bounds(), &[0, 5, 12]);

        // Retire slots 1 and 6, then compact: bounds renumber to the count
        // of survivors below them, so shard membership is preserved.
        assert!(catalog.retire(1));
        assert!(catalog.retire(6));
        let shard_before: Vec<usize> = catalog
            .live_indices()
            .iter()
            .map(|&s| plan.shard_of(s))
            .collect();
        let remap = catalog.compact();
        let delta = catalog.take_delta(&subscription).unwrap();
        plan.apply_delta(&delta);
        assert_eq!(plan.cols(), catalog.slot_count());
        assert_eq!(plan.bounds(), &[0, 4, 10]);
        let shard_after: Vec<usize> = (0..catalog.slot_count())
            .map(|s| plan.shard_of(s))
            .collect();
        for (old, new) in remap.mapped_pairs() {
            assert_eq!(
                shard_before[catalog
                    .live_indices()
                    .iter()
                    .position(|&s| s == new)
                    .unwrap()],
                shard_after[new],
                "slot {old} -> {new} changed shards"
            );
        }
        catalog.unsubscribe_delta(subscription);
    }

    #[test]
    fn live_counts_match_a_linear_scan_across_churn() {
        let mut catalog = StrategyCatalog::with_policy(
            (0..130).map(varied_strategy).collect::<Vec<_>>(),
            RebuildPolicy::threshold(4),
        );
        for shards in [1, 2, 3, 8] {
            let plan = ShardPlan::for_catalog(shards, &catalog);
            let counts = plan.live_counts(&catalog);
            let expected: Vec<usize> = plan
                .ranges()
                .map(|range| range.filter(|&slot| catalog.is_live(slot)).count())
                .collect();
            assert_eq!(counts, expected, "{shards} shards");
            assert_eq!(counts.iter().sum::<usize>(), catalog.len());
        }
        // Churn (retire across word boundaries, insert, compact) and
        // re-check against the scan.
        for slot in [0, 63, 64, 65, 127] {
            assert!(catalog.retire(slot));
        }
        catalog.insert(varied_strategy(500));
        let plan = ShardPlan::for_catalog(3, &catalog);
        let expected: Vec<usize> = plan
            .ranges()
            .map(|range| range.filter(|&slot| catalog.is_live(slot)).count())
            .collect();
        assert_eq!(plan.live_counts(&catalog), expected);
        catalog.compact();
        let plan = ShardPlan::for_catalog(3, &catalog);
        let expected: Vec<usize> = plan
            .ranges()
            .map(|range| range.filter(|&slot| catalog.is_live(slot)).count())
            .collect();
        assert_eq!(plan.live_counts(&catalog), expected);
    }
}
