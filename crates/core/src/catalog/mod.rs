//! Shared, indexed view of the platform's strategy set.
//!
//! The seed implementation re-derived everything per request: `BatchStrat`
//! decided eligibility by scanning all `|S|` strategies for every deployment
//! request (`O(m · |S|)` parameter comparisons per batch), and every ADPaR
//! problem re-normalized the full strategy set from scratch — `Baseline3`
//! even bulk-loaded a fresh R-tree per call. A [`StrategyCatalog`] performs
//! that work **once**: strategies are normalized into the minimization space
//! (`quality` inverted so smaller is better on every axis, exactly as ADPaR's
//! §4.1 normalization does) and bulk-loaded into a
//! [`stratrec_geometry::RTree`]. The catalog is then shared by reference
//! across the whole pipeline:
//!
//! * per-request eligibility becomes an R-tree box query
//!   ([`Self::eligible_for`]) instead of a linear scan;
//! * ADPaR problems built with [`crate::adpar::AdparProblem::with_catalog`]
//!   reuse the pre-normalized points and the shared index (`Baseline3` skips
//!   its per-solve bulk load entirely);
//! * [`crate::stratrec::StratRec`] fans unsatisfied requests out to ADPaR in
//!   parallel over the same shared catalog.
//!
//! # The catalog lifecycle
//!
//! A long-lived catalog moves through three kinds of maintenance, each owned
//! by one submodule of this directory:
//!
//! 1. **Churn** ([`overlay`]) — [`Self::insert`] appends to a small
//!    unindexed *tail*, [`Self::retire`] marks a slot with a *tombstone*;
//!    queries answer `index ∪ tail − tombstones` with the exact predicate,
//!    so results are exact at every point of the churn stream. The overlay
//!    merges into the R-tree incrementally at the [`RebuildPolicy`]
//!    threshold. Slot indices are **stable**: retiring never renumbers, so
//!    `strategy_indices` in recommendations stay valid across churn.
//! 2. **Axis-order maintenance** ([`axis`]) — the three pre-sorted per-axis
//!    slot permutations follow the same log-structured discipline (sorted
//!    base + sorted tail, tombstones filtered at query time) so
//!    catalog-backed ADPaR problems never sort.
//! 3. **Compaction** ([`compact`]) — the price of stable slots is monotone
//!    growth: tombstoned slots are never reclaimed, so [`Self::slot_count`]
//!    — and every slot-shaped allocation downstream (workforce-matrix
//!    columns, per-slot relaxations, axis buffers) — grows without bound
//!    under indefinite churn. [`Self::compact`] closes the lifecycle: it
//!    renumbers the live slots densely (dropping retired metadata), rebuilds
//!    the R-tree and the axis orders over the compacted range, bumps the
//!    epoch and returns a [`SlotRemap`] every holder of old slot numbers
//!    applies ([`crate::workforce::WorkforceMatrix::remap_columns`],
//!    [`crate::adpar::AdparSolution::remap`]).
//! 4. **Delta feed** ([`delta`]) — derived state that would otherwise be
//!    recomputed per epoch (the workforce matrix and its aggregation)
//!    subscribes to the catalog's churn: [`Self::subscribe_delta`] /
//!    [`Self::take_delta`] hand each consumer exactly the slots inserted
//!    and retired since it last synchronized as a [`CatalogDelta`],
//!    composing the [`SlotRemap`] of any interleaved [`Self::compact`] into
//!    the window, so maintenance work is proportional to the churn rather
//!    than to `|S|`.
//!
//! [`Self::epoch`] increments on every mutation — compaction included — and
//! is captured by catalog-backed [`crate::adpar::AdparProblem`]s; a problem
//! whose epoch no longer matches the catalog's fails `validate` with the
//! typed [`crate::error::StratRecError::StaleCatalog`] instead of silently
//! reusing stale slot references.
//!
//! All catalog-backed paths return results **identical** to the linear-scan
//! paths over the live strategies (the R-tree query is a conservative
//! candidate filter followed by the exact
//! [`DeploymentParameters::satisfies`] predicate); the parity tests in
//! `tests/catalog_parity.rs` and the property-based churn suite in
//! `tests/catalog_churn.rs` pin this down — including interleaved
//! compactions, whose remaps are replayed against the shadow scan.

mod axis;
mod compact;
mod delta;
mod overlay;
mod shard;
mod snapshot;
pub(crate) mod soa;

pub use compact::SlotRemap;
pub use delta::{CatalogDelta, DeltaSubscription, DEFAULT_DELTA_LAPSE_LIMIT};
pub use shard::ShardPlan;
pub use snapshot::{CatalogStats, ConcurrentCatalog, EpochSnapshot, SnapshotReader};

use serde::{Deserialize, Serialize};
use stratrec_geometry::{Aabb3, Point3, RTree};

use crate::model::{DeploymentParameters, DeploymentRequest, Strategy};

use axis::sorted_axis_orders;

/// Default overlay size above which the catalog merges into its R-tree.
pub const DEFAULT_REBUILD_THRESHOLD: usize = 128;

/// When the catalog merges its log-structured overlay into the R-tree.
///
/// The overlay is the unindexed tail of recent inserts plus the tombstones
/// still present in the index; a merge is triggered as soon as the overlay
/// size *exceeds* the limit. [`RebuildPolicy::always`] (limit 0) keeps the
/// index exact after every mutation, [`RebuildPolicy::never`] leaves the
/// overlay to grow unboundedly (queries stay exact either way — the overlay
/// is scanned linearly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RebuildPolicy {
    overlay_limit: usize,
}

impl RebuildPolicy {
    /// Merge once the overlay holds more than `limit` entries.
    #[must_use]
    pub const fn threshold(limit: usize) -> Self {
        Self {
            overlay_limit: limit,
        }
    }

    /// Merge after every mutation (threshold 0): the index always reflects
    /// the full live set.
    #[must_use]
    pub const fn always() -> Self {
        Self::threshold(0)
    }

    /// Never merge: the tail and tombstone set absorb all churn.
    #[must_use]
    pub const fn never() -> Self {
        Self::threshold(usize::MAX)
    }

    /// The overlay size above which a merge is triggered.
    #[must_use]
    pub const fn overlay_limit(self) -> usize {
        self.overlay_limit
    }
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        Self::threshold(DEFAULT_REBUILD_THRESHOLD)
    }
}

/// One catalog mutation, as recorded by the mutation journal
/// ([`StrategyCatalog::enable_journal`]) in the order it was applied. This
/// is the unit a write-ahead logger persists: replaying the sequence through
/// [`StrategyCatalog::insert`] / [`StrategyCatalog::retire`] /
/// [`StrategyCatalog::compact`] against the same starting state rebuilds the
/// catalog exactly (slot numbering included — inserts record the slot they
/// landed on and compactions the [`SlotRemap`] they produced, so replay can
/// verify itself record by record).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CatalogMutation {
    /// A [`StrategyCatalog::insert`]: `strategy` landed on `slot`.
    Insert {
        /// The stable slot index the insert returned.
        slot: usize,
        /// The inserted strategy.
        strategy: Strategy,
        /// The catalog epoch right after the insert.
        epoch_after: u64,
    },
    /// A live-slot [`StrategyCatalog::retire`] (no-op retires are not
    /// journaled — they do not mutate the catalog).
    Retire {
        /// The retired slot.
        slot: usize,
        /// The catalog epoch right after the retirement.
        epoch_after: u64,
    },
    /// A [`StrategyCatalog::compact`], carrying the full remap (its
    /// [`SlotRemap::target_epoch`] is the epoch after the compaction).
    Compact {
        /// The old→new renumbering the compaction returned.
        remap: SlotRemap,
    },
}

impl CatalogMutation {
    /// The catalog epoch right after this mutation was applied.
    #[must_use]
    pub fn epoch_after(&self) -> u64 {
        match self {
            Self::Insert { epoch_after, .. } | Self::Retire { epoch_after, .. } => *epoch_after,
            Self::Compact { remap } => remap.target_epoch(),
        }
    }
}

/// A strategy set normalized once and indexed for box queries, absorbing
/// live insert/retire churn through a log-structured overlay and reclaiming
/// tombstoned slots through [`Self::compact`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyCatalog {
    /// Every slot inserted since the last compaction, retired ones included
    /// (stable indices between compactions).
    strategies: Vec<Strategy>,
    /// Normalized points, parallel to `strategies`.
    points: Vec<Point3>,
    /// Liveness per slot; `false` marks a retired (tombstoned) slot.
    live: Vec<bool>,
    /// Number of live slots.
    live_count: usize,
    /// R-tree over the slots present at the last merge.
    index: RTree,
    /// Live slots inserted since the last merge (ascending, not indexed).
    tail: Vec<usize>,
    /// Retired slots still present in `index`.
    pending_tombstones: Vec<usize>,
    /// Overlay merge policy.
    policy: RebuildPolicy,
    /// Bumped on every `insert` / `retire` / `compact`; cache-invalidation
    /// key.
    epoch: u64,
    /// Number of overlay merges / full rebuilds performed.
    merges: u64,
    /// Whether `index` is still a deterministic STR bulk load (set by
    /// construction, `force_rebuild` and `compact`, cleared by incremental
    /// merges).
    packed: bool,
    /// Per-axis slot permutations sorted ascending by `(coordinate, slot)`,
    /// covering exactly the slots present in `index` (the slots live at the
    /// last merge). Tail slots are merged in and tombstones filtered out at
    /// query time ([`Self::axis_order_into`]), same log-structured
    /// discipline as the R-tree.
    axis_base: [Vec<usize>; 3],
    /// The tail, kept sorted per axis by `(coordinate, slot)` while
    /// `axis_tail_sorted` holds, letting [`Self::axis_order_into`] merge
    /// without sorting or allocating.
    axis_tail: [Vec<usize>; 3],
    /// Whether `axis_tail` mirrors `tail`. The per-insert sorted
    /// maintenance shifts `O(tail)` elements, so it is abandoned (the three
    /// vectors are cleared, this flag drops) once the tail outgrows
    /// [`axis::SORTED_TAIL_LIMIT`] — only reachable with rebuild thresholds
    /// above the limit, e.g. [`RebuildPolicy::never`] — keeping inserts
    /// `O(1)` amortized there instead of quadratic;
    /// [`Self::axis_order_into`] then falls back to sorting a tail copy per
    /// call. Restored whenever the tail empties (merge, rebuild, compaction
    /// or retiring the last tail slot).
    axis_tail_sorted: bool,
    /// Per-subscriber churn accumulation for delta-maintained derived state
    /// ([`delta`]): generation-tagged tracker slots; empty trackers are
    /// released ids awaiting reuse under a bumped generation.
    subscriptions: Vec<delta::SubscriptionSlot>,
    /// Mutations a subscriber may sit through without draining before its
    /// tracker is evicted ([`Self::delta_lapse_limit`]).
    delta_lapse_limit: u64,
    /// Trackers evicted so far for lapsing ([`Self::delta_evictions`]).
    delta_evictions: u64,
    /// Columnar mirror of `strategies` + `live` for the workforce kernel
    /// ([`soa`]): per-axis parameter columns and a packed liveness bitmap,
    /// maintained exactly at every insert/retire/compact.
    soa: soa::SoaBlock,
    /// Mutation journal for the durable tier: when enabled
    /// ([`Self::enable_journal`]), every insert / live retire / compact
    /// appends a [`CatalogMutation`] for a write-ahead logger to drain
    /// ([`Self::take_journal`]). `None` (the default) costs nothing on the
    /// mutation paths.
    journal: Option<Vec<CatalogMutation>>,
}

/// Margin added to eligibility query boxes so the R-tree pass is a strict
/// superset of [`DeploymentParameters::satisfies`] (which tolerates `1e-9`
/// on every axis); candidates are then confirmed with the exact predicate,
/// so catalog eligibility is identical to the linear scan.
const QUERY_MARGIN: f64 = 2e-9;

impl StrategyCatalog {
    /// Builds a catalog owning `strategies`, normalizing every strategy into
    /// the minimization space and bulk-loading the R-tree index. Accepts
    /// anything convertible into a `Vec<Strategy>` (an owned vector moves in
    /// without a copy; a borrowed slice is cloned once).
    #[must_use]
    pub fn new(strategies: impl Into<Vec<Strategy>>) -> Self {
        Self::with_policy(strategies, RebuildPolicy::default())
    }

    /// Builds a catalog with an explicit overlay merge policy.
    #[must_use]
    pub fn with_policy(strategies: impl Into<Vec<Strategy>>, policy: RebuildPolicy) -> Self {
        let strategies: Vec<Strategy> = strategies.into();
        let points: Vec<Point3> = strategies
            .iter()
            .map(Strategy::to_normalized_point)
            .collect();
        let index = RTree::bulk_load(&points);
        let live_count = strategies.len();
        let axis_base = sorted_axis_orders(&points, (0..strategies.len()).collect());
        let live = vec![true; live_count];
        let soa = soa::SoaBlock::build(&strategies, &live);
        Self {
            live,
            live_count,
            strategies,
            points,
            index,
            tail: Vec::new(),
            pending_tombstones: Vec::new(),
            policy,
            epoch: 0,
            merges: 0,
            packed: true,
            axis_base,
            axis_tail: [Vec::new(), Vec::new(), Vec::new()],
            axis_tail_sorted: true,
            subscriptions: Vec::new(),
            delta_lapse_limit: delta::DEFAULT_DELTA_LAPSE_LIMIT,
            delta_evictions: 0,
            soa,
            journal: None,
        }
    }

    /// Restores a catalog from checkpointed slot state: the slot-parallel
    /// `(strategy, liveness)` pairs of the numbering in force at `epoch`,
    /// exactly as [`Self::strategies`] + [`Self::is_live`] would report
    /// them. The result is **observably identical** to the catalog the
    /// checkpoint captured — same eligibility answers, axis orders, SoA
    /// mirror, slot numbering and epoch — because all of those are functions
    /// of the slot contents alone; only the R-tree's internal shape (merge
    /// history) and the merge counter differ, and no query depends on
    /// either. The overlay starts empty and the index packed, as after
    /// [`Self::force_rebuild`].
    #[must_use]
    pub fn from_checkpoint_parts(
        slots: Vec<(Strategy, bool)>,
        epoch: u64,
        policy: RebuildPolicy,
    ) -> Self {
        let mut strategies = Vec::with_capacity(slots.len());
        let mut live = Vec::with_capacity(slots.len());
        for (strategy, is_live) in slots {
            strategies.push(strategy);
            live.push(is_live);
        }
        let points: Vec<Point3> = strategies
            .iter()
            .map(Strategy::to_normalized_point)
            .collect();
        let live_count = live.iter().filter(|&&l| l).count();
        let live_entries: Vec<(usize, Point3)> = points
            .iter()
            .copied()
            .enumerate()
            .filter(|&(i, _)| live[i])
            .collect();
        let live_slots: Vec<usize> = live_entries.iter().map(|&(i, _)| i).collect();
        let index =
            RTree::bulk_load_entries(live_entries, stratrec_geometry::DEFAULT_NODE_CAPACITY);
        let axis_base = sorted_axis_orders(&points, live_slots);
        let soa = soa::SoaBlock::build(&strategies, &live);
        Self {
            live,
            live_count,
            strategies,
            points,
            index,
            tail: Vec::new(),
            pending_tombstones: Vec::new(),
            policy,
            epoch,
            merges: 0,
            packed: true,
            axis_base,
            axis_tail: [Vec::new(), Vec::new(), Vec::new()],
            axis_tail_sorted: true,
            subscriptions: Vec::new(),
            delta_lapse_limit: delta::DEFAULT_DELTA_LAPSE_LIMIT,
            delta_evictions: 0,
            soa,
            journal: None,
        }
    }

    /// A clone of this catalog's **read state** — strategies, points,
    /// liveness, R-tree, axis orders, SoA mirror, epoch — with the
    /// subscription table and the mutation journal left behind. This is what
    /// an [`EpochSnapshot`] captures: subscriptions and the journal are
    /// writer-side lifecycle state (draining them requires `&mut`), so an
    /// immutable snapshot carrying them would only mislead.
    #[must_use]
    pub fn detached_clone(&self) -> Self {
        let mut clone = self.clone();
        clone.subscriptions = Vec::new();
        clone.delta_evictions = 0;
        clone.journal = None;
        clone
    }

    /// Turns the mutation journal on: from now on every [`Self::insert`],
    /// live [`Self::retire`] and [`Self::compact`] appends a
    /// [`CatalogMutation`] for [`Self::take_journal`] to drain. Idempotent;
    /// the durable tier enables this on its writer catalog so mutations can
    /// be write-ahead-logged before publication.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Whether the mutation journal is recording.
    #[must_use]
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Drains the journaled mutations accumulated since the last drain, in
    /// application order. Empty when the journal is disabled or nothing
    /// mutated.
    pub fn take_journal(&mut self) -> Vec<CatalogMutation> {
        match &mut self.journal {
            Some(journal) => std::mem::take(journal),
            None => Vec::new(),
        }
    }

    /// Journal hook shared by the mutation paths. Callers gate on
    /// [`Self::journal_enabled`] before cloning anything into the record, so
    /// a disabled journal never materializes a mutation.
    fn journal_note(&mut self, mutation: CatalogMutation) {
        if let Some(journal) = &mut self.journal {
            journal.push(mutation);
        }
    }

    /// Builds a catalog from a borrowed strategy slice (cloning it once).
    #[must_use]
    pub fn from_slice(strategies: &[Strategy]) -> Self {
        Self::new(strategies)
    }

    /// Every slot of the current numbering, in slot order — **including
    /// retired slots**; check [`Self::is_live`] or use
    /// [`Self::live_indices`] when liveness matters. Pristine and
    /// freshly-compacted catalogs contain live slots only.
    #[must_use]
    pub fn strategies(&self) -> &[Strategy] {
        &self.strategies
    }

    /// The strategy at `slot` (retired slots included — their metadata stays
    /// addressable for reporting until the next [`Self::compact`]).
    ///
    /// # Panics
    ///
    /// Panics when `slot >= self.slot_count()`.
    #[must_use]
    pub fn strategy(&self, slot: usize) -> &Strategy {
        &self.strategies[slot]
    }

    /// Whether `slot` refers to a live (non-retired) strategy; `false` for
    /// out-of-range slots.
    #[must_use]
    pub fn is_live(&self, slot: usize) -> bool {
        self.live.get(slot).copied().unwrap_or(false)
    }

    /// The live slot indices, ascending.
    #[must_use]
    pub fn live_indices(&self) -> Vec<usize> {
        (0..self.strategies.len())
            .filter(|&i| self.live[i])
            .collect()
    }

    /// The live `(slot, normalized point)` entries, ascending by slot.
    #[must_use]
    pub fn live_entries(&self) -> Vec<(usize, Point3)> {
        (0..self.strategies.len())
            .filter(|&i| self.live[i])
            .map(|i| (i, self.points[i]))
            .collect()
    }

    /// The pre-normalized points of **all** slots (parallel to
    /// [`Self::strategies`]): `(1 − quality, cost, latency)`.
    #[must_use]
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// The shared R-tree. Between merges it covers the slots live at the
    /// last merge — use [`Self::eligible_for`] for exact answers, or check
    /// [`Self::is_pristine`] before treating the tree as the full live set.
    #[must_use]
    pub fn index(&self) -> &RTree {
        &self.index
    }

    /// Number of **live** strategies in the catalog.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether the catalog has no live strategies.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Total number of slots in the current numbering (live + retired).
    /// Grows monotonically under churn and snaps back to [`Self::len`] at
    /// every [`Self::compact`].
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.strategies.len()
    }

    /// Number of retired slots still occupying the numbering (reclaimed by
    /// the next [`Self::compact`]).
    #[must_use]
    pub fn retired_count(&self) -> usize {
        self.strategies.len() - self.live_count
    }

    /// Size of the log-structured overlay: unindexed tail entries plus
    /// tombstones still present in the index.
    #[must_use]
    pub fn overlay_len(&self) -> usize {
        self.tail.len() + self.pending_tombstones.len()
    }

    /// Whether the overlay is empty (the R-tree covers exactly the live
    /// set).
    #[must_use]
    pub fn overlay_is_empty(&self) -> bool {
        self.tail.is_empty() && self.pending_tombstones.is_empty()
    }

    /// Whether the catalog has never been mutated — its R-tree is still the
    /// pristine STR bulk load over slots `0..n`.
    #[must_use]
    pub fn is_pristine(&self) -> bool {
        self.epoch == 0
    }

    /// Whether the R-tree is a deterministic STR bulk load covering exactly
    /// the live slots (true at construction and after
    /// [`Self::force_rebuild`] / [`Self::compact`] with no overlay since;
    /// false once an incremental merge reshaped the tree). `Baseline3`
    /// shares the index only in this state — its MBB heuristic is pinned to
    /// the packed structure.
    #[must_use]
    pub fn index_is_packed_live(&self) -> bool {
        self.packed && self.overlay_is_empty()
    }

    /// Mutation counter: bumped by every [`Self::insert`] / [`Self::retire`]
    /// / [`Self::compact`]. Derived data (cached ADPaR relaxations, memoized
    /// solutions) keyed by an epoch must be discarded — or, after a
    /// compaction, remapped through the returned [`SlotRemap`] — when the
    /// catalog's epoch moves past it.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of overlay merges / full rebuilds performed so far.
    #[must_use]
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// The overlay merge policy.
    #[must_use]
    pub fn rebuild_policy(&self) -> RebuildPolicy {
        self.policy
    }

    /// Indices of the live strategies satisfying the request thresholds
    /// `params`, ascending — exactly the set (and order) of
    /// [`DeploymentRequest::eligible_strategies`] over the live slots, found
    /// through the index plus the overlay.
    ///
    /// A strategy satisfies a request when, in the normalized minimization
    /// space, its point is covered by the request's point. That makes
    /// eligibility an origin-anchored box query whose top-right corner is the
    /// request point; the box is inflated by [`QUERY_MARGIN`], tombstoned
    /// hits are dropped, the unindexed tail is scanned, and candidates are
    /// confirmed with the exact epsilon-tolerant predicate.
    #[must_use]
    pub fn eligible_for(&self, params: &DeploymentParameters) -> Vec<usize> {
        let corner = params.to_normalized_point();
        let query = Aabb3::anchored_at_origin(Point3::new(
            corner.x + QUERY_MARGIN,
            corner.y + QUERY_MARGIN,
            corner.z + QUERY_MARGIN,
        ));
        let mut eligible = self.index.query_box(&query);
        eligible.retain(|&i| self.live[i] && self.strategies[i].params.satisfies(params));
        // Tail slots are always newer than every indexed slot, so appending
        // the (ascending) tail keeps the result sorted.
        eligible.extend(
            self.tail
                .iter()
                .copied()
                .filter(|&i| self.strategies[i].params.satisfies(params)),
        );
        eligible
    }

    /// [`Self::eligible_for`] over a deployment request.
    #[must_use]
    pub fn eligible_for_request(&self, request: &DeploymentRequest) -> Vec<usize> {
        self.eligible_for(&request.params)
    }

    /// The columnar SoA mirror the workforce kernel streams: per-axis
    /// parameter columns plus the packed liveness bitmap.
    pub(crate) fn soa(&self) -> &soa::SoaBlock {
        &self.soa
    }
}

impl From<Vec<Strategy>> for StrategyCatalog {
    fn from(strategies: Vec<Strategy>) -> Self {
        Self::new(strategies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_mirrors_the_strategy_set() {
        let strategies = crate::examples_data::running_example_strategies();
        let catalog = StrategyCatalog::from_slice(&strategies);
        assert_eq!(catalog.len(), 4);
        assert_eq!(catalog.slot_count(), 4);
        assert_eq!(catalog.retired_count(), 0);
        assert!(!catalog.is_empty());
        assert!(catalog.is_pristine());
        assert_eq!(catalog.epoch(), 0);
        assert_eq!(catalog.strategies(), &strategies[..]);
        assert_eq!(catalog.points().len(), 4);
        assert_eq!(catalog.index().len(), 4);
        for (i, (strategy, point)) in strategies.iter().zip(catalog.points()).enumerate() {
            assert_eq!(strategy.to_normalized_point(), *point);
            assert_eq!(catalog.strategy(i), strategy);
            assert!(catalog.is_live(i));
        }
        assert!(!catalog.is_live(4));
    }

    #[test]
    fn eligibility_matches_linear_scan_on_running_example() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let catalog = StrategyCatalog::from_slice(&strategies);
        for request in &requests {
            assert_eq!(
                catalog.eligible_for_request(request),
                request.eligible_strategies(&strategies),
                "request {:?}",
                request.id
            );
        }
    }

    #[test]
    fn empty_catalog_behaves() {
        let catalog = StrategyCatalog::new(Vec::new());
        assert!(catalog.is_empty());
        assert_eq!(catalog.len(), 0);
        let loosest = DeploymentParameters::default();
        assert!(catalog.eligible_for(&loosest).is_empty());
    }

    #[test]
    fn boundary_strategies_stay_eligible() {
        // A strategy exactly on the request's thresholds is eligible under
        // the epsilon-tolerant predicate; the inflated query box must not
        // lose it.
        let params = DeploymentParameters::clamped(0.7, 0.3, 0.4);
        let strategies = vec![Strategy::from_params(0, params)];
        let catalog = StrategyCatalog::from_slice(&strategies);
        assert_eq!(catalog.eligible_for(&params), vec![0]);
    }

    #[test]
    fn from_conversions_agree() {
        let strategies = crate::examples_data::running_example_strategies();
        let a = StrategyCatalog::from_slice(&strategies);
        let b: StrategyCatalog = strategies.into();
        assert_eq!(a, b);
    }

    #[test]
    fn insert_appends_a_live_slot_and_bumps_the_epoch() {
        let strategies = crate::examples_data::running_example_strategies();
        let mut catalog = StrategyCatalog::from_slice(&strategies);
        let loosest = DeploymentParameters::default();
        let slot = catalog.insert(Strategy::from_params(
            99,
            DeploymentParameters::clamped(0.9, 0.1, 0.1),
        ));
        assert_eq!(slot, 4);
        assert_eq!(catalog.len(), 5);
        assert_eq!(catalog.slot_count(), 5);
        assert_eq!(catalog.epoch(), 1);
        assert!(!catalog.is_pristine());
        assert!(catalog.is_live(slot));
        // Immediately visible to queries even while still in the tail.
        assert!(catalog.eligible_for(&loosest).contains(&slot));
    }

    #[test]
    fn retire_tombstones_without_renumbering() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let mut catalog = StrategyCatalog::from_slice(&strategies);
        // d3's eligible set is {1, 2, 3}; retiring slot 2 must drop exactly
        // that slot while 1 and 3 keep their numbers.
        assert!(catalog.retire(2));
        assert!(!catalog.retire(2), "double retirement is a no-op");
        assert!(!catalog.retire(42), "out-of-range retirement is a no-op");
        assert_eq!(catalog.len(), 3);
        assert_eq!(catalog.slot_count(), 4);
        assert_eq!(catalog.retired_count(), 1);
        assert!(!catalog.is_live(2));
        assert_eq!(catalog.eligible_for_request(&requests[2]), vec![1, 3]);
        assert_eq!(catalog.live_indices(), vec![0, 1, 3]);
        assert_eq!(catalog.epoch(), 1);
    }
}
