//! Fair division of a shared availability budget across tenants.
//!
//! The sharded serving tier aggregates each tenant's batch independently,
//! but the worker pool they draw on is one shared resource. Without an
//! allocation rule, a tenant issuing 10× the request volume simply claims
//! 10× the budget and starves everyone else — the exact failure mode the
//! multi-tenant direction in the paper's discussion warns about.
//!
//! A [`FairnessPolicy`] makes the division explicit and deterministic:
//!
//! 1. **Floors first.** Every tenant is guaranteed `floor · budget` (capped
//!    by what it actually asked for). Floors are fractions of the global
//!    budget and must sum to at most 1, so this phase can never overdraw.
//! 2. **Weighted residual.** Whatever the floors phase leaves over is
//!    water-filled across still-unsatisfied tenants in proportion to their
//!    `weight`, re-distributing any share a tenant cannot absorb (its
//!    demand caps its grant) in bounded rounds.
//!
//! The guarantee the regression suite pins: a tenant demanding at least its
//! floor **always receives at least `floor · budget`**, no matter how much
//! the other tenants ask for. Grants never exceed demands, never exceed the
//! budget in total, and depend only on `(policy, budget, demands)` — the
//! split is a pure function, so sharded serving stays replayable.

use serde::{Deserialize, Serialize};

use crate::error::StratRecError;

/// One tenant's entitlement under a [`FairnessPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantShare {
    /// Guaranteed fraction of the global budget, in `[0, 1]`. The tenant
    /// receives `min(demand, floor · budget)` before any residual is
    /// divided.
    pub floor: f64,
    /// Non-negative weight for the residual water-fill. A zero-weight
    /// tenant receives nothing beyond its floor.
    pub weight: f64,
}

impl TenantShare {
    /// A share with the given guaranteed floor fraction and residual
    /// weight (validated by [`FairnessPolicy::new`]).
    #[must_use]
    pub fn new(floor: f64, weight: f64) -> Self {
        Self { floor, weight }
    }
}

/// A validated per-tenant division rule for one shared availability budget:
/// per-tenant floors plus weighted residual water-fill. See the module docs
/// for the allocation semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessPolicy {
    shares: Vec<TenantShare>,
}

impl FairnessPolicy {
    /// A policy over the given shares.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::InvalidFairnessPolicy`] when `shares` is
    /// empty, any floor is outside `[0, 1]` or non-finite, any weight is
    /// negative or non-finite, or the floors sum past 1 (the guarantees
    /// would be impossible to honor simultaneously).
    pub fn new(shares: Vec<TenantShare>) -> Result<Self, StratRecError> {
        if shares.is_empty() {
            return Err(StratRecError::InvalidFairnessPolicy(
                "a policy must name at least one tenant".into(),
            ));
        }
        for (tenant, share) in shares.iter().enumerate() {
            if !share.floor.is_finite() || !(0.0..=1.0).contains(&share.floor) {
                return Err(StratRecError::InvalidFairnessPolicy(format!(
                    "tenant {tenant} floor {} is outside [0, 1]",
                    share.floor
                )));
            }
            if !share.weight.is_finite() || share.weight < 0.0 {
                return Err(StratRecError::InvalidFairnessPolicy(format!(
                    "tenant {tenant} weight {} is negative or non-finite",
                    share.weight
                )));
            }
        }
        let floor_sum: f64 = shares.iter().map(|s| s.floor).sum();
        if floor_sum > 1.0 {
            return Err(StratRecError::InvalidFairnessPolicy(format!(
                "floors sum to {floor_sum}, past the whole budget"
            )));
        }
        Ok(Self { shares })
    }

    /// An egalitarian policy: every tenant floored at `1 / tenants` of the
    /// budget with equal residual weight.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::InvalidFairnessPolicy`] when `tenants` is
    /// zero.
    pub fn uniform(tenants: usize) -> Result<Self, StratRecError> {
        #[allow(clippy::cast_precision_loss)]
        let floor = 1.0 / tenants.max(1) as f64;
        Self::new(vec![TenantShare::new(floor, 1.0); tenants])
    }

    /// Number of tenants the policy divides among.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.shares.len()
    }

    /// The validated per-tenant shares, in tenant order.
    #[must_use]
    pub fn shares(&self) -> &[TenantShare] {
        &self.shares
    }

    /// Divides `budget` across the tenants given their `demands` (each
    /// tenant's aggregate workforce requirement; non-finite demands are
    /// treated as unbounded appetite). Returns one grant per tenant, in
    /// tenant order. Grants never exceed (finite) demands, sum to at most
    /// `budget`, and every tenant demanding at least its floor receives at
    /// least `floor · budget`.
    ///
    /// # Panics
    ///
    /// Panics when `demands` does not have one entry per tenant or `budget`
    /// is negative or non-finite.
    #[must_use]
    pub fn split(&self, budget: f64, demands: &[f64]) -> Vec<f64> {
        assert_eq!(
            demands.len(),
            self.shares.len(),
            "one demand per tenant is required"
        );
        assert!(
            budget.is_finite() && budget >= 0.0,
            "the budget must be finite and non-negative"
        );
        let appetite = |demand: f64| -> f64 {
            if demand.is_finite() {
                demand.max(0.0)
            } else {
                budget
            }
        };

        // Phase 1: guaranteed floors, capped by actual demand. Floors sum
        // to ≤ 1, so granting them all never overdraws the budget.
        let mut grants: Vec<f64> = self
            .shares
            .iter()
            .zip(demands)
            .map(|(share, &demand)| (share.floor * budget).min(appetite(demand)))
            .collect();
        let mut residual = budget - grants.iter().sum::<f64>();

        // Phase 2: weighted water-fill of the residual. Each round divides
        // the remaining budget among still-hungry tenants by weight; a
        // tenant whose demand caps out returns its unused share to the next
        // round. Every round satisfies at least one tenant or consumes the
        // residual, so `tenant_count + 1` rounds always suffice.
        for _ in 0..=self.shares.len() {
            if residual <= f64::EPSILON * budget.max(1.0) {
                break;
            }
            let mut hungry_weight = 0.0;
            for (share, (&demand, grant)) in self.shares.iter().zip(demands.iter().zip(&grants)) {
                if appetite(demand) > *grant {
                    hungry_weight += share.weight;
                }
            }
            if hungry_weight <= 0.0 {
                break;
            }
            let mut consumed = 0.0;
            for (share, (&demand, grant)) in self
                .shares
                .iter()
                .zip(demands.iter().zip(grants.iter_mut()))
            {
                let headroom = appetite(demand) - *grant;
                if headroom <= 0.0 || share.weight <= 0.0 {
                    continue;
                }
                let offer = residual * share.weight / hungry_weight;
                let taken = offer.min(headroom);
                *grant += taken;
                consumed += taken;
            }
            residual -= consumed;
            if consumed <= 0.0 {
                break;
            }
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(shares: &[(f64, f64)]) -> FairnessPolicy {
        FairnessPolicy::new(
            shares
                .iter()
                .map(|&(floor, weight)| TenantShare::new(floor, weight))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_malformed_policies() {
        assert!(matches!(
            FairnessPolicy::new(vec![]),
            Err(StratRecError::InvalidFairnessPolicy(_))
        ));
        assert!(matches!(
            FairnessPolicy::new(vec![TenantShare::new(-0.1, 1.0)]),
            Err(StratRecError::InvalidFairnessPolicy(_))
        ));
        assert!(matches!(
            FairnessPolicy::new(vec![TenantShare::new(0.5, -1.0)]),
            Err(StratRecError::InvalidFairnessPolicy(_))
        ));
        assert!(matches!(
            FairnessPolicy::new(vec![TenantShare::new(0.6, 1.0), TenantShare::new(0.6, 1.0)]),
            Err(StratRecError::InvalidFairnessPolicy(_))
        ));
        assert!(matches!(
            FairnessPolicy::new(vec![TenantShare::new(f64::NAN, 1.0)]),
            Err(StratRecError::InvalidFairnessPolicy(_))
        ));
        assert!(FairnessPolicy::uniform(0).is_err());
        assert_eq!(FairnessPolicy::uniform(4).unwrap().tenant_count(), 4);
    }

    #[test]
    fn floors_are_honored_before_any_residual() {
        let policy = policy(&[(0.25, 1.0), (0.25, 1.0)]);
        // Both tenants demand far more than the budget: each still gets at
        // least its floor, and the whole budget is handed out.
        let grants = policy.split(1.0, &[100.0, 100.0]);
        assert!(grants[0] >= 0.25);
        assert!(grants[1] >= 0.25);
        let total: f64 = grants.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn a_heavy_tenant_cannot_push_a_light_one_below_its_floor() {
        let policy = policy(&[(0.2, 1.0), (0.2, 1.0), (0.2, 1.0)]);
        for heavy in [10.0, 100.0, 1e6] {
            let grants = policy.split(1.0, &[heavy, 0.5, 0.5]);
            assert!(grants[1] >= 0.2, "heavy={heavy}: {grants:?}");
            assert!(grants[2] >= 0.2, "heavy={heavy}: {grants:?}");
            assert!(grants.iter().sum::<f64>() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn grants_never_exceed_demands() {
        let policy = policy(&[(0.3, 2.0), (0.3, 1.0), (0.0, 1.0)]);
        let demands = [0.05, 0.1, 0.2];
        let grants = policy.split(1.0, &demands);
        for (grant, demand) in grants.iter().zip(&demands) {
            assert!(grant <= demand);
        }
        // The budget exceeds total demand: everyone is fully satisfied.
        assert!(grants
            .iter()
            .zip(&demands)
            .all(|(g, d)| (g - d).abs() < 1e-12));
    }

    #[test]
    fn residual_follows_the_weights() {
        // No floors: the split is a pure weighted division.
        let policy = policy(&[(0.0, 3.0), (0.0, 1.0)]);
        let grants = policy.split(1.0, &[10.0, 10.0]);
        assert!((grants[0] - 0.75).abs() < 1e-12);
        assert!((grants[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn capped_tenants_return_their_share_to_the_pool() {
        // Tenant 0 can only absorb 0.1; its unused weighted share must flow
        // to tenant 1 rather than evaporate.
        let policy = policy(&[(0.0, 1.0), (0.0, 1.0)]);
        let grants = policy.split(1.0, &[0.1, 10.0]);
        assert!((grants[0] - 0.1).abs() < 1e-12);
        assert!((grants[1] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_tenants_stop_at_their_floor() {
        let policy = policy(&[(0.1, 0.0), (0.0, 1.0)]);
        let grants = policy.split(1.0, &[10.0, 10.0]);
        assert!((grants[0] - 0.1).abs() < 1e-12);
        assert!((grants[1] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn infinite_demand_is_unbounded_appetite_not_poison() {
        let policy = policy(&[(0.2, 1.0), (0.2, 1.0)]);
        let grants = policy.split(1.0, &[f64::INFINITY, 0.5]);
        assert!(grants.iter().all(|g| g.is_finite()));
        assert!(grants[1] >= 0.2);
        assert!(grants.iter().sum::<f64>() <= 1.0 + 1e-12);
    }

    #[test]
    fn a_zero_budget_grants_nothing() {
        let policy = policy(&[(0.5, 1.0), (0.5, 1.0)]);
        assert_eq!(policy.split(0.0, &[1.0, 1.0]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "one demand per tenant")]
    fn split_validates_the_demand_arity() {
        let _ = policy(&[(0.5, 1.0)]).split(1.0, &[1.0, 2.0]);
    }

    #[test]
    fn the_split_is_deterministic() {
        let policy = policy(&[(0.1, 2.0), (0.3, 1.0), (0.0, 5.0)]);
        let demands = [0.7, 0.9, 0.4];
        let a = policy.split(0.8, &demands);
        let b = policy.split(0.8, &demands);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
