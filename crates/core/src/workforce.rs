//! Workforce-requirement computation (paper §3.2).
//!
//! Given `m` deployment requests and `|S|` strategies, the Aggregator builds
//! the matrix `W` whose cell `w_ij` is the minimum workforce needed to
//! deploy request `d_i` with strategy `s_j` (the maximum over the three
//! per-parameter requirements obtained by inverting the linear model of
//! Equation 4). The per-request requirement is then aggregated over the `k`
//! cheapest strategies, either as their sum (*sum-case*: the requester will
//! run all `k` recommended strategies) or as the `k`-th smallest value
//! (*max-case*: only one of the `k` will be run).

use serde::{Deserialize, Serialize};
use stratrec_optim::topk::{self, TopKScratch};

use crate::catalog::{SlotRemap, StrategyCatalog};
use crate::error::StratRecError;
use crate::model::{DeploymentRequest, Strategy};
use crate::modeling::{ModelLibrary, StrategyModel};

/// How the workforce requirement of the `k` recommended strategies is
/// aggregated into a single per-request requirement (paper §3.2, step 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AggregationMode {
    /// The requester intends to run **all** `k` strategies: the requirement
    /// is the sum of the `k` smallest cells of the request's row.
    #[default]
    Sum,
    /// The requester will run **one** of the `k` strategies: the requirement
    /// is the `k`-th smallest cell of the request's row.
    Max,
}

/// How a strategy's basic eligibility for a request is decided before any
/// workforce consideration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EligibilityRule {
    /// A strategy is eligible only when its estimated parameters satisfy the
    /// request's thresholds (`s.quality ≥ d.quality`, `s.cost ≤ d.cost`,
    /// `s.latency ≤ d.latency`) — the rule used throughout the paper's
    /// examples and synthetic experiments.
    #[default]
    StrategyParameters,
    /// Every strategy is eligible; feasibility is decided purely by whether
    /// the model inversion yields a finite workforce requirement. Useful when
    /// strategy parameter estimates are unavailable and only models exist.
    ModelOnly,
}

/// The workforce requirement of one deployment request: which `k` strategies
/// are recommended and how much of the worker pool they need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRequirement {
    /// Index of the request in the input batch.
    pub request_index: usize,
    /// Indices of the `k` recommended strategies, cheapest first.
    pub strategy_indices: Vec<usize>,
    /// Aggregated workforce requirement in `[0, 1]` (fraction of the suitable
    /// worker pool).
    pub workforce: f64,
}

impl RequestRequirement {
    /// Renumbers the recommended slots through a catalog compaction's
    /// [`SlotRemap`]. Returns `None` when any recommended slot was reclaimed
    /// — the requirement predates a retirement and must be re-aggregated.
    #[must_use]
    pub fn remap(&self, remap: &SlotRemap) -> Option<Self> {
        let strategy_indices = remap.remap_slots(&self.strategy_indices)?;
        Some(Self {
            request_index: self.request_index,
            strategy_indices,
            workforce: self.workforce,
        })
    }
}

/// The `m × |S|` workforce-requirement matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkforceMatrix {
    rows: usize,
    cols: usize,
    /// Row-major cells; `f64::INFINITY` marks an infeasible (request,
    /// strategy) pair.
    cells: Vec<f64>,
}

impl WorkforceMatrix {
    /// Computes the matrix for a batch of requests against a strategy set,
    /// consulting `models` for the per-strategy linear models and using the
    /// default [`EligibilityRule::StrategyParameters`].
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a strategy has no fitted
    /// model in `models`.
    pub fn compute(
        requests: &[DeploymentRequest],
        strategies: &[Strategy],
        models: &ModelLibrary,
    ) -> Result<Self, StratRecError> {
        Self::compute_with_rule(requests, strategies, models, EligibilityRule::default())
    }

    /// Computes the matrix with an explicit eligibility rule.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a strategy has no fitted
    /// model in `models`.
    pub fn compute_with_rule(
        requests: &[DeploymentRequest],
        strategies: &[Strategy],
        models: &ModelLibrary,
        rule: EligibilityRule,
    ) -> Result<Self, StratRecError> {
        let mut cells = Vec::with_capacity(requests.len() * strategies.len());
        for request in requests {
            for strategy in strategies {
                let model = models.require(strategy.id)?;
                let eligible = match rule {
                    EligibilityRule::StrategyParameters => strategy.satisfies(request),
                    EligibilityRule::ModelOnly => true,
                };
                let cell = if eligible {
                    model.required_workforce(&request.params)
                } else {
                    f64::INFINITY
                };
                cells.push(cell);
            }
        }
        Ok(Self {
            rows: requests.len(),
            cols: strategies.len(),
            cells,
        })
    }

    /// Computes the matrix through a [`StrategyCatalog`], answering
    /// per-request eligibility with an R-tree box query instead of scanning
    /// all `|S|` strategies. The resulting matrix is **identical** to
    /// [`Self::compute_with_rule`] on the catalog's strategies: the index
    /// only prunes which cells need the model inversion; ineligible cells
    /// stay at `f64::INFINITY` exactly as in the scan path.
    ///
    /// Columns are catalog **slots** (live and retired), so column numbers
    /// stay stable across churn; retired slots are infeasible
    /// (`f64::INFINITY`) in every row and never consult the model library.
    ///
    /// With [`EligibilityRule::ModelOnly`] every **live** cell is feasible
    /// by definition, so the index offers nothing and all live cells are
    /// computed.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when any **live** catalog
    /// strategy has no fitted model in `models` (the scan path's contract,
    /// preserved even for strategies that are never eligible). As in the
    /// scan path, an empty batch never consults the model library and always
    /// succeeds.
    pub fn compute_with_catalog(
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        rule: EligibilityRule,
    ) -> Result<Self, StratRecError> {
        let strategies = catalog.strategies();
        if requests.is_empty() {
            return Ok(Self {
                rows: 0,
                cols: strategies.len(),
                cells: Vec::new(),
            });
        }
        let strategy_models = collect_live_models(catalog, models)?;
        let cols = strategies.len();
        let mut cells = vec![f64::INFINITY; requests.len() * cols];
        for (request, row) in requests.iter().zip(cells.chunks_mut(cols.max(1))) {
            fill_catalog_row(request, catalog, &strategy_models, rule, row);
        }
        Ok(Self {
            rows: requests.len(),
            cols,
            cells,
        })
    }

    /// Builds a matrix directly from row-major cells (used in tests and by
    /// callers that estimate requirements through other means).
    ///
    /// # Panics
    ///
    /// Panics when `cells.len() != rows * cols`.
    #[must_use]
    pub fn from_cells(rows: usize, cols: usize, cells: Vec<f64>) -> Self {
        assert_eq!(cells.len(), rows * cols, "cell count must equal rows*cols");
        Self { rows, cols, cells }
    }

    /// Number of requests (rows).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of strategies (columns).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The workforce requirement of deploying request `i` with strategy `j`.
    #[must_use]
    pub fn get(&self, request: usize, strategy: usize) -> f64 {
        self.cells[request * self.cols + strategy]
    }

    /// The full row of request `i`.
    #[must_use]
    pub fn row(&self, request: usize) -> &[f64] {
        &self.cells[request * self.cols..(request + 1) * self.cols]
    }

    /// Renumbers the matrix columns through a catalog compaction's
    /// [`SlotRemap`]: column `old` moves to `remap.forward[old]` and the
    /// columns of reclaimed slots — retired, therefore `f64::INFINITY` in
    /// every row — are shed. A long-lived matrix thus follows its catalog
    /// through [`StrategyCatalog::compact`] instead of being recomputed:
    /// the result is **identical** to [`Self::compute_with_catalog`] over
    /// the compacted catalog (same requests, models and rule), which the
    /// engine regression tests pin.
    ///
    /// # Panics
    ///
    /// Panics when the matrix width does not match the remap's
    /// pre-compaction slot count.
    #[must_use]
    pub fn remap_columns(&self, remap: &SlotRemap) -> Self {
        assert_eq!(
            self.cols,
            remap.len(),
            "matrix width must equal the remap's pre-compaction slot count"
        );
        let cols = remap.live_len;
        let mut cells = vec![f64::INFINITY; self.rows * cols];
        for row in 0..self.rows {
            let src = &self.cells[row * self.cols..(row + 1) * self.cols];
            let dst = &mut cells[row * cols..(row + 1) * cols];
            for (old, new) in remap.mapped_pairs() {
                dst[new] = src[old];
            }
        }
        Self {
            rows: self.rows,
            cols,
            cells,
        }
    }

    /// Aggregates each row into a per-request requirement over the `k`
    /// cheapest strategies (paper §3.2 step 2, the vector `~W`).
    ///
    /// Requests with fewer than `k` feasible strategies yield `None`: no
    /// amount of workforce lets the platform recommend `k` strategies, so the
    /// request must go to ADPaR.
    ///
    /// The selection heap and index buffer are reused across all `m` rows
    /// (`topk::k_smallest_indices_into`); the only per-row allocation left
    /// is the `strategy_indices` vector handed to the caller, and rows with
    /// fewer than `k` feasible strategies allocate nothing at all.
    #[must_use]
    pub fn aggregate(&self, k: usize, mode: AggregationMode) -> Vec<Option<RequestRequirement>> {
        let mut scratch = TopKScratch::new();
        let mut selected: Vec<usize> = Vec::new();
        (0..self.rows)
            .map(|i| {
                let row = self.row(i);
                topk::k_smallest_indices_into(row, k, &mut scratch, &mut selected);
                if selected.len() < k || k == 0 {
                    return None;
                }
                let workforce = match mode {
                    AggregationMode::Sum => selected.iter().map(|&j| row[j]).sum(),
                    AggregationMode::Max => {
                        row[*selected
                            .last()
                            .expect("k >= 1 so the selection is non-empty")]
                    }
                };
                Some(RequestRequirement {
                    request_index: i,
                    strategy_indices: selected.clone(),
                    workforce,
                })
            })
            .collect()
    }
}

/// Hoists the per-cell model lookups of the scan path into one id-indexed
/// pass; this also enforces the missing-model contract for every **live**
/// slot. Retired slots keep a `None` placeholder: their model may have been
/// dropped from the library along with the strategy.
pub(crate) fn collect_live_models<'m>(
    catalog: &StrategyCatalog,
    models: &'m ModelLibrary,
) -> Result<Vec<Option<&'m StrategyModel>>, StratRecError> {
    catalog
        .strategies()
        .iter()
        .enumerate()
        .map(|(slot, s)| {
            if catalog.is_live(slot) {
                models.require(s.id).map(Some)
            } else {
                Ok(None)
            }
        })
        .collect()
}

/// Fills one workforce-matrix row (pre-initialized to `f64::INFINITY`) for
/// `request`: the unit of work sharded across threads by
/// [`crate::engine::BatchEngine`] and run in a plain loop by
/// [`WorkforceMatrix::compute_with_catalog`]. `strategy_models` comes from
/// [`collect_live_models`] and is parallel to the catalog slots.
pub(crate) fn fill_catalog_row(
    request: &DeploymentRequest,
    catalog: &StrategyCatalog,
    strategy_models: &[Option<&StrategyModel>],
    rule: EligibilityRule,
    row: &mut [f64],
) {
    match rule {
        EligibilityRule::StrategyParameters => {
            for j in catalog.eligible_for(&request.params) {
                let model = strategy_models[j].expect("eligible slots are live");
                row[j] = model.required_workforce(&request.params);
            }
        }
        EligibilityRule::ModelOnly => {
            for (cell, model) in row.iter_mut().zip(strategy_models) {
                if let Some(model) = model {
                    *cell = model.required_workforce(&request.params);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::availability::WorkerAvailability;
    use crate::model::{DeploymentParameters, TaskType};
    use crate::modeling::StrategyModel;

    fn request(id: u64, q: f64, c: f64, l: f64) -> DeploymentRequest {
        DeploymentRequest::new(
            id,
            TaskType::SentenceTranslation,
            DeploymentParameters::new(q, c, l).unwrap(),
        )
    }

    fn example_setup() -> (Vec<DeploymentRequest>, Vec<Strategy>, ModelLibrary) {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let models = crate::examples_data::running_example_models();
        (requests, strategies, models)
    }

    #[test]
    fn matrix_shape_and_cells() {
        let (requests, strategies, models) = example_setup();
        let matrix = WorkforceMatrix::compute(&requests, &strategies, &models).unwrap();
        assert_eq!(matrix.rows(), 3);
        assert_eq!(matrix.cols(), 4);
        assert_eq!(matrix.row(0).len(), 4);
        // d1 and d2 have no eligible strategies: whole rows are infinite.
        assert!(matrix.row(0).iter().all(|w| w.is_infinite()));
        assert!(matrix.row(1).iter().all(|w| w.is_infinite()));
        // d3 can use s2, s3, s4 with finite workforce; s1 is ineligible.
        assert!(matrix.get(2, 0).is_infinite());
        for j in 1..4 {
            assert!(matrix.get(2, j).is_finite());
            assert!(matrix.get(2, j) <= 1.0);
        }
    }

    #[test]
    fn catalog_path_matches_scan_path_on_running_example() {
        let (requests, strategies, models) = example_setup();
        let catalog = crate::catalog::StrategyCatalog::from_slice(&strategies);
        for rule in [
            EligibilityRule::StrategyParameters,
            EligibilityRule::ModelOnly,
        ] {
            let scan =
                WorkforceMatrix::compute_with_rule(&requests, &strategies, &models, rule).unwrap();
            let indexed =
                WorkforceMatrix::compute_with_catalog(&requests, &catalog, &models, rule).unwrap();
            assert_eq!(scan, indexed, "{rule:?}");
        }
    }

    #[test]
    fn catalog_path_empty_batch_matches_scan_even_without_models() {
        // The scan path never consults the model library when the batch is
        // empty; the catalog path must not either.
        let strategies = crate::examples_data::running_example_strategies();
        let catalog = crate::catalog::StrategyCatalog::from_slice(&strategies);
        let empty_models = ModelLibrary::new();
        let scan = WorkforceMatrix::compute(&[], &strategies, &empty_models).unwrap();
        let indexed = WorkforceMatrix::compute_with_catalog(
            &[],
            &catalog,
            &empty_models,
            EligibilityRule::default(),
        )
        .unwrap();
        assert_eq!(scan, indexed);
        assert_eq!(indexed.rows(), 0);
        assert_eq!(indexed.cols(), strategies.len());
        // With a non-empty batch the missing-model contract still applies.
        let requests = crate::examples_data::running_example_requests();
        assert!(matches!(
            WorkforceMatrix::compute_with_catalog(
                &requests,
                &catalog,
                &empty_models,
                EligibilityRule::default(),
            ),
            Err(StratRecError::MissingModel { .. })
        ));
    }

    #[test]
    fn remapped_columns_match_a_fresh_compute_over_the_compacted_catalog() {
        let (requests, strategies, _) = example_setup();
        for rule in [
            EligibilityRule::StrategyParameters,
            EligibilityRule::ModelOnly,
        ] {
            let mut catalog = crate::catalog::StrategyCatalog::from_slice(&strategies);
            catalog.insert(Strategy::from_params(
                9,
                DeploymentParameters::clamped(0.8, 0.3, 0.3),
            ));
            assert!(catalog.retire(0));
            assert!(catalog.retire(2));
            // The pre-compaction matrix carries the dead columns...
            let models =
                ModelLibrary::uniform_for(catalog.strategies(), StrategyModel::uniform(1.0, 0.0));
            let wide =
                WorkforceMatrix::compute_with_catalog(&requests, &catalog, &models, rule).unwrap();
            assert_eq!(wide.cols(), 5);

            // ...and sheds exactly them through the remap, landing on the
            // same cells a recompute over the compacted catalog produces.
            let remap = catalog.compact();
            let narrow = wide.remap_columns(&remap);
            assert_eq!(narrow.cols(), catalog.len());
            assert_eq!(narrow.rows(), wide.rows());
            let recomputed =
                WorkforceMatrix::compute_with_catalog(&requests, &catalog, &models, rule).unwrap();
            assert_eq!(narrow, recomputed, "{rule:?}");
        }
    }

    #[test]
    #[should_panic(expected = "pre-compaction slot count")]
    fn remap_columns_validates_the_width() {
        let mut catalog = crate::catalog::StrategyCatalog::new(vec![Strategy::from_params(
            0,
            DeploymentParameters::clamped(0.8, 0.2, 0.2),
        )]);
        let remap = catalog.compact();
        let _ = WorkforceMatrix::from_cells(1, 3, vec![0.0; 3]).remap_columns(&remap);
    }

    #[test]
    fn request_requirements_remap_through_a_compaction() {
        let mut catalog = crate::catalog::StrategyCatalog::new(vec![
            Strategy::from_params(0, DeploymentParameters::clamped(0.8, 0.2, 0.2)),
            Strategy::from_params(1, DeploymentParameters::clamped(0.7, 0.3, 0.3)),
            Strategy::from_params(2, DeploymentParameters::clamped(0.6, 0.4, 0.4)),
        ]);
        assert!(catalog.retire(1));
        let remap = catalog.compact();
        let requirement = RequestRequirement {
            request_index: 3,
            strategy_indices: vec![0, 2],
            workforce: 0.4,
        };
        let remapped = requirement.remap(&remap).unwrap();
        assert_eq!(remapped.strategy_indices, vec![0, 1]);
        assert_eq!(remapped.request_index, 3);
        assert!((remapped.workforce - 0.4).abs() < 1e-12);
        // A requirement recommending the reclaimed slot is stale.
        let stale = RequestRequirement {
            strategy_indices: vec![0, 1],
            ..requirement
        };
        assert!(stale.remap(&remap).is_none());
    }

    #[test]
    fn model_only_rule_ignores_strategy_parameters() {
        let (requests, strategies, models) = example_setup();
        let matrix = WorkforceMatrix::compute_with_rule(
            &requests,
            &strategies,
            &models,
            EligibilityRule::ModelOnly,
        )
        .unwrap();
        // With the uniform synthetic model every cell is finite.
        for i in 0..matrix.rows() {
            for j in 0..matrix.cols() {
                assert!(matrix.get(i, j).is_finite());
            }
        }
    }

    #[test]
    fn missing_model_is_an_error() {
        let (requests, strategies, _) = example_setup();
        let empty = ModelLibrary::new();
        assert!(matches!(
            WorkforceMatrix::compute(&requests, &strategies, &empty),
            Err(StratRecError::MissingModel { .. })
        ));
    }

    #[test]
    fn sum_and_max_aggregation_differ_as_expected() {
        // One request, four strategies with known requirements.
        let matrix = WorkforceMatrix::from_cells(1, 4, vec![0.4, 0.1, 0.3, 0.2]);
        let sum = matrix.aggregate(3, AggregationMode::Sum);
        let max = matrix.aggregate(3, AggregationMode::Max);
        let sum = sum[0].as_ref().unwrap();
        let max = max[0].as_ref().unwrap();
        assert_eq!(sum.strategy_indices, vec![1, 3, 2]);
        assert!((sum.workforce - 0.6).abs() < 1e-12);
        assert_eq!(max.strategy_indices, vec![1, 3, 2]);
        assert!((max.workforce - 0.3).abs() < 1e-12);
        assert!(max.workforce <= sum.workforce);
    }

    #[test]
    fn infeasible_rows_aggregate_to_none() {
        let matrix = WorkforceMatrix::from_cells(
            2,
            3,
            vec![
                0.2,
                f64::INFINITY,
                f64::INFINITY, // only one feasible strategy
                0.1,
                0.2,
                0.3, // fully feasible
            ],
        );
        let agg = matrix.aggregate(2, AggregationMode::Sum);
        assert!(agg[0].is_none());
        let r1 = agg[1].as_ref().unwrap();
        assert_eq!(r1.request_index, 1);
        assert_eq!(r1.strategy_indices, vec![0, 1]);
        assert!((r1.workforce - 0.3).abs() < 1e-12);
    }

    #[test]
    fn k_zero_aggregates_to_none() {
        let matrix = WorkforceMatrix::from_cells(1, 2, vec![0.1, 0.2]);
        assert!(matrix.aggregate(0, AggregationMode::Sum)[0].is_none());
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn from_cells_validates_dimensions() {
        let _ = WorkforceMatrix::from_cells(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn running_example_d3_is_deployable_within_availability() {
        let (requests, strategies, models) = example_setup();
        let matrix = WorkforceMatrix::compute(&requests, &strategies, &models).unwrap();
        let agg = matrix.aggregate(3, AggregationMode::Max);
        // d3 gets exactly {s2, s3, s4} (indices 1, 2, 3) and fits in W = 0.8.
        let d3 = agg[2].as_ref().unwrap();
        let mut sorted = d3.strategy_indices.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
        assert!(d3.workforce <= WorkerAvailability::new(0.8).unwrap().value());
        assert!(agg[0].is_none());
        assert!(agg[1].is_none());
    }

    #[test]
    fn eligibility_uses_request_thresholds() {
        // A request satisfied by exactly one strategy.
        let strategies = vec![
            Strategy::from_params(0, DeploymentParameters::new(0.9, 0.1, 0.1).unwrap()),
            Strategy::from_params(1, DeploymentParameters::new(0.3, 0.1, 0.1).unwrap()),
        ];
        let models = ModelLibrary::uniform_for(&strategies, StrategyModel::uniform(1.0, 0.0));
        let requests = vec![request(0, 0.8, 0.5, 0.5)];
        let matrix = WorkforceMatrix::compute(&requests, &strategies, &models).unwrap();
        assert!(matrix.get(0, 0).is_finite());
        assert!(matrix.get(0, 1).is_infinite());
    }
}
