//! Data model: deployment strategies, deployment requests and their
//! normalized quality / cost / latency parameters (paper §2.1).

use serde::{Deserialize, Serialize};
use stratrec_geometry::Point3;

use crate::error::StratRecError;

/// *Structure* dimension of a deployment strategy: how the workforce is
/// solicited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Structure {
    /// Workers complete the task one after another (`SEQ`).
    Sequential,
    /// Workers are solicited in parallel (`SIM`).
    Simultaneous,
}

/// *Organization* dimension: how workers are organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Organization {
    /// Each worker contributes independently (`IND`).
    Independent,
    /// Workers collaborate on a shared artefact (`COL`).
    Collaborative,
}

/// *Style* dimension: whether machines assist the crowd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Style {
    /// Crowd only (`CRO`).
    CrowdOnly,
    /// Crowd combined with machine algorithms, e.g. machine translation
    /// (`HYB`).
    Hybrid,
}

impl Structure {
    /// Short code used in strategy names (`SEQ` / `SIM`).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Self::Sequential => "SEQ",
            Self::Simultaneous => "SIM",
        }
    }
}

impl Organization {
    /// Short code used in strategy names (`IND` / `COL`).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Self::Independent => "IND",
            Self::Collaborative => "COL",
        }
    }
}

impl Style {
    /// Short code used in strategy names (`CRO` / `HYB`).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Self::CrowdOnly => "CRO",
            Self::Hybrid => "HYB",
        }
    }
}

/// Collaborative task types considered by the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskType {
    /// Translating sentences between languages (English → Hindi in §5.1).
    SentenceTranslation,
    /// Writing a few sentences about a given topic.
    TextCreation,
    /// Summarizing a longer text.
    TextSummarization,
    /// Collaborative puzzle solving (mentioned in §2.1).
    PuzzleSolving,
}

impl TaskType {
    /// All task types, in a stable order.
    pub const ALL: [TaskType; 4] = [
        TaskType::SentenceTranslation,
        TaskType::TextCreation,
        TaskType::TextSummarization,
        TaskType::PuzzleSolving,
    ];

    /// A human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::SentenceTranslation => "sentence translation",
            Self::TextCreation => "text creation",
            Self::TextSummarization => "text summarization",
            Self::PuzzleSolving => "puzzle solving",
        }
    }
}

/// Identifier of a deployment strategy.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct StrategyId(pub u64);

/// Identifier of a deployment request.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

/// Normalized deployment parameters.
///
/// All three values live in `[0, 1]` after the normalization described in
/// §2.1 / §4.1 of the paper:
///
/// * `quality` — for a *request* this is a **lower bound** on the crowd
///   contribution quality (fraction of domain-expert quality); for a
///   *strategy* it is the estimated achieved quality.
/// * `cost` — for a request an **upper bound** on spending (fraction of the
///   maximum budget); for a strategy the estimated spending.
/// * `latency` — for a request an **upper bound** on completion time
///   (fraction of the maximum horizon); for a strategy the estimated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentParameters {
    /// Quality in `[0, 1]` (higher is better).
    pub quality: f64,
    /// Cost in `[0, 1]` (lower is better).
    pub cost: f64,
    /// Latency in `[0, 1]` (lower is better).
    pub latency: f64,
}

impl DeploymentParameters {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::ParameterOutOfRange`] if any value is not
    /// finite or falls outside `[0, 1]`.
    pub fn new(quality: f64, cost: f64, latency: f64) -> Result<Self, StratRecError> {
        for (name, value) in [("quality", quality), ("cost", cost), ("latency", latency)] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(StratRecError::ParameterOutOfRange {
                    parameter: name.to_owned(),
                    value,
                });
            }
        }
        Ok(Self {
            quality,
            cost,
            latency,
        })
    }

    /// Creates parameters clamping each value into `[0, 1]` (useful when the
    /// values come from noisy simulation output).
    #[must_use]
    pub fn clamped(quality: f64, cost: f64, latency: f64) -> Self {
        Self {
            quality: quality.clamp(0.0, 1.0),
            cost: cost.clamp(0.0, 1.0),
            latency: latency.clamp(0.0, 1.0),
        }
    }

    /// The point in the *normalized minimization space* used by ADPaR:
    /// quality is inverted (`1 − quality`) so that **smaller is better on
    /// every axis** and a request's parameters become component-wise upper
    /// bounds (paper §4.1).
    #[must_use]
    pub fn to_normalized_point(&self) -> Point3 {
        Point3::new(1.0 - self.quality, self.cost, self.latency)
    }

    /// Inverse of [`Self::to_normalized_point`].
    #[must_use]
    pub fn from_normalized_point(p: Point3) -> Self {
        Self::clamped(1.0 - p.x, p.y, p.z)
    }

    /// Euclidean (ℓ2) distance to another parameter triple — the ADPaR
    /// objective (Equation 3). The distance is identical whether computed in
    /// the original or the normalized space because the quality inversion is
    /// an isometry.
    #[must_use]
    pub fn distance(&self, other: &Self) -> f64 {
        self.to_normalized_point()
            .distance(&other.to_normalized_point())
    }

    /// Whether a strategy with these (estimated) parameters satisfies a
    /// request with parameters `request`:
    /// `quality ≥ request.quality ∧ cost ≤ request.cost ∧ latency ≤ request.latency`.
    #[must_use]
    pub fn satisfies(&self, request: &Self) -> bool {
        self.quality + SATISFIES_EPS >= request.quality
            && self.cost <= request.cost + SATISFIES_EPS
            && self.latency <= request.latency + SATISFIES_EPS
    }
}

/// Tolerance of [`DeploymentParameters::satisfies`] on every axis. Shared
/// with the workforce kernel's bitmask eligibility pass
/// ([`crate::workforce::kernel`]), which must reproduce the predicate bit
/// for bit off the catalog's SoA columns.
pub(crate) const SATISFIES_EPS: f64 = 1e-9;

impl Default for DeploymentParameters {
    fn default() -> Self {
        Self {
            quality: 0.0,
            cost: 1.0,
            latency: 1.0,
        }
    }
}

/// A deployment strategy: a choice of Structure, Organization and Style
/// together with its estimated parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Strategy {
    /// Unique identifier.
    pub id: StrategyId,
    /// Structure dimension.
    pub structure: Structure,
    /// Organization dimension.
    pub organization: Organization,
    /// Style dimension.
    pub style: Style,
    /// Estimated quality / cost / latency of deployments using this strategy.
    pub params: DeploymentParameters,
}

impl Strategy {
    /// Creates a strategy with explicit dimensions.
    #[must_use]
    pub fn new(
        id: u64,
        structure: Structure,
        organization: Organization,
        style: Style,
        params: DeploymentParameters,
    ) -> Self {
        Self {
            id: StrategyId(id),
            structure,
            organization,
            style,
            params,
        }
    }

    /// Creates a strategy identified only by its parameters, using the
    /// default `SIM-IND-CRO` dimensions. Synthetic experiments (paper §5.2)
    /// generate strategies this way, as anonymous points in parameter space.
    #[must_use]
    pub fn from_params(id: u64, params: DeploymentParameters) -> Self {
        Self::new(
            id,
            Structure::Simultaneous,
            Organization::Independent,
            Style::CrowdOnly,
            params,
        )
    }

    /// The canonical `STRUCTURE-ORG-STYLE` name, e.g. `SEQ-IND-CRO`.
    #[must_use]
    pub fn name(&self) -> String {
        format!(
            "{}-{}-{}",
            self.structure.code(),
            self.organization.code(),
            self.style.code()
        )
    }

    /// Whether this strategy satisfies the thresholds of `request`.
    #[must_use]
    pub fn satisfies(&self, request: &DeploymentRequest) -> bool {
        self.params.satisfies(&request.params)
    }

    /// The strategy as a point in the normalized minimization space.
    #[must_use]
    pub fn to_normalized_point(&self) -> Point3 {
        self.params.to_normalized_point()
    }
}

/// All eight Structure × Organization × Style combinations, in a stable
/// order. The paper notes the full strategy space is much larger (workflows
/// compose these combinations); these eight are the atomic building blocks.
#[must_use]
pub fn all_dimension_combinations() -> Vec<(Structure, Organization, Style)> {
    let mut combos = Vec::with_capacity(8);
    for structure in [Structure::Sequential, Structure::Simultaneous] {
        for organization in [Organization::Independent, Organization::Collaborative] {
            for style in [Style::CrowdOnly, Style::Hybrid] {
                combos.push((structure, organization, style));
            }
        }
    }
    combos
}

/// A deployment request submitted by a requester: the task type, the desired
/// parameters and the pay-off the platform earns by satisfying it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentRequest {
    /// Unique identifier.
    pub id: RequestId,
    /// Type of collaborative task being deployed.
    pub task_type: TaskType,
    /// Desired quality lower bound and cost / latency upper bounds.
    pub params: DeploymentParameters,
}

impl DeploymentRequest {
    /// Creates a request.
    #[must_use]
    pub fn new(id: u64, task_type: TaskType, params: DeploymentParameters) -> Self {
        Self {
            id: RequestId(id),
            task_type,
            params,
        }
    }

    /// The pay-off the platform collects when this request is satisfied. The
    /// paper uses the requester's cost budget (`d.cost`) as the pay-off
    /// (§2.3, pay-off maximization).
    #[must_use]
    pub fn payoff(&self) -> f64 {
        self.params.cost
    }

    /// The request as a point in the normalized minimization space (its
    /// parameters act as component-wise upper bounds there).
    #[must_use]
    pub fn to_normalized_point(&self) -> Point3 {
        self.params.to_normalized_point()
    }

    /// Indices of the strategies in `strategies` that satisfy this request,
    /// in input order.
    #[must_use]
    pub fn eligible_strategies(&self, strategies: &[Strategy]) -> Vec<usize> {
        strategies
            .iter()
            .enumerate()
            .filter(|(_, s)| s.satisfies(self))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(q: f64, c: f64, l: f64) -> DeploymentParameters {
        DeploymentParameters::new(q, c, l).unwrap()
    }

    #[test]
    fn parameters_validate_range() {
        assert!(DeploymentParameters::new(0.5, 0.5, 0.5).is_ok());
        for (input, expected) in [
            (DeploymentParameters::new(1.5, 0.5, 0.5), "quality"),
            (DeploymentParameters::new(0.5, -0.1, 0.5), "cost"),
            (DeploymentParameters::new(0.5, 0.5, f64::NAN), "latency"),
        ] {
            match input {
                Err(StratRecError::ParameterOutOfRange { parameter, .. }) => {
                    assert_eq!(parameter, expected);
                }
                other => panic!("expected out-of-range error, got {other:?}"),
            }
        }
    }

    #[test]
    fn clamped_constructor_clamps() {
        let p = DeploymentParameters::clamped(1.4, -0.3, 0.5);
        assert_eq!(p.quality, 1.0);
        assert_eq!(p.cost, 0.0);
        assert_eq!(p.latency, 0.5);
    }

    #[test]
    fn normalization_inverts_quality_and_round_trips() {
        let p = params(0.8, 0.2, 0.28);
        let point = p.to_normalized_point();
        assert!((point.x - 0.2).abs() < 1e-12);
        assert!((point.y - 0.2).abs() < 1e-12);
        assert!((point.z - 0.28).abs() < 1e-12);
        let back = DeploymentParameters::from_normalized_point(point);
        assert!((back.quality - p.quality).abs() < 1e-12);
        assert!((back.cost - p.cost).abs() < 1e-12);
        assert!((back.latency - p.latency).abs() < 1e-12);
    }

    #[test]
    fn satisfies_matches_paper_running_example() {
        // d3 = (0.7, 0.83, 0.28) is satisfied by s2, s3, s4 but not s1.
        let d3 = params(0.7, 0.83, 0.28);
        let s1 = params(0.5, 0.25, 0.28);
        let s2 = params(0.75, 0.33, 0.28);
        let s3 = params(0.8, 0.5, 0.14);
        let s4 = params(0.88, 0.58, 0.14);
        assert!(!s1.satisfies(&d3));
        assert!(s2.satisfies(&d3));
        assert!(s3.satisfies(&d3));
        assert!(s4.satisfies(&d3));
    }

    #[test]
    fn distance_is_invariant_under_quality_inversion() {
        let a = params(0.4, 0.17, 0.28);
        let b = params(0.4, 0.5, 0.28);
        assert!((a.distance(&b) - 0.33).abs() < 1e-9);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn strategy_names_follow_paper_notation() {
        let s = Strategy::new(
            1,
            Structure::Sequential,
            Organization::Independent,
            Style::CrowdOnly,
            params(0.5, 0.25, 0.28),
        );
        assert_eq!(s.name(), "SEQ-IND-CRO");
        let s = Strategy::new(
            2,
            Structure::Simultaneous,
            Organization::Collaborative,
            Style::Hybrid,
            params(0.5, 0.25, 0.28),
        );
        assert_eq!(s.name(), "SIM-COL-HYB");
    }

    #[test]
    fn eight_dimension_combinations_exist_and_are_distinct() {
        let combos = all_dimension_combinations();
        assert_eq!(combos.len(), 8);
        let names: std::collections::HashSet<String> = combos
            .iter()
            .map(|&(st, o, sy)| format!("{}-{}-{}", st.code(), o.code(), sy.code()))
            .collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn request_eligibility_and_payoff() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        // d1 and d2 have no eligible strategies; d3 has three.
        assert!(requests[0].eligible_strategies(&strategies).is_empty());
        assert!(requests[1].eligible_strategies(&strategies).is_empty());
        assert_eq!(requests[2].eligible_strategies(&strategies), vec![1, 2, 3]);
        assert!((requests[2].payoff() - 0.83).abs() < 1e-12);
    }

    #[test]
    fn task_type_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            TaskType::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), TaskType::ALL.len());
    }

    #[test]
    fn default_parameters_are_the_loosest_request() {
        let loosest = DeploymentParameters::default();
        let any = params(0.9, 0.1, 0.1);
        assert!(any.satisfies(&loosest));
    }
}
